//! Scoring one audited group-aggregate result against replayed truth.
//!
//! Each audit scores three things (§3–§4 of the paper, turned into
//! operational checks):
//!
//! * **CI coverage** — did the claimed confidence interval contain the
//!   full-data answer? Over many audits the hit rate should track the
//!   claimed confidence level (≈95%); a shortfall means the error
//!   estimates are silently failing.
//! * **Error ratio** — `|estimate − truth| / half_width`: the actual
//!   error in units of the claimed bound. ≤ 1 iff the CI covered;
//!   values ≫ 1 quantify *how badly* the bars understated the error.
//! * **Diagnostic confusion cell** — the Kleiner verdict (accept or
//!   reject) against what the replay proved, giving the Fig. 4
//!   TP/FP/TN/FN cells on live traffic instead of synthetic studies.

use aqp_diagnostics::DiagnosticOutcome;
use aqp_stats::ci::Ci;

/// One group-aggregate result handed to the auditor, paired with the
/// full-data truth obtained by replay.
#[derive(Debug, Clone)]
pub struct AuditedAggregate {
    /// Aggregate function name, e.g. `AVG`, `MAX`, `trimmed_mean`.
    pub agg: String,
    /// Input column (`*` for `COUNT(*)`).
    pub column: String,
    /// Distribution-family label of the input column (see
    /// `AuditConfig::column_families`).
    pub family: String,
    /// The approximate point estimate served to the user.
    pub estimate: f64,
    /// The claimed confidence interval, if error estimation produced
    /// one.
    pub ci: Option<Ci>,
    /// The Kleiner diagnostic's verdict, if the diagnostic ran.
    pub diagnostic_accepted: Option<bool>,
    /// The exact full-data answer from the replay.
    pub truth: f64,
}

/// The per-result audit scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditScore {
    /// Did the claimed CI contain the truth? `None` without a CI or
    /// with a non-finite truth.
    pub covered: Option<bool>,
    /// `|estimate − truth| / |truth|`; `None` when truth is zero or
    /// either value is non-finite.
    pub rel_error: Option<f64>,
    /// `|estimate − truth| / half_width`; `None` without a CI or with a
    /// degenerate (zero/non-finite) half-width.
    pub error_ratio: Option<f64>,
    /// Confusion cell of the diagnostic verdict vs the replay, when
    /// both a coverage verdict and a diagnostic verdict exist.
    pub outcome: Option<DiagnosticOutcome>,
}

/// Score one audited result. Total: never panics, NaN-safe (non-finite
/// inputs yield `None` scores rather than poisoned aggregates).
pub fn score(a: &AuditedAggregate) -> AuditScore {
    let finite = a.estimate.is_finite() && a.truth.is_finite();
    let covered = match (&a.ci, finite) {
        (Some(ci), true) => Some(ci.contains(a.truth)),
        _ => None,
    };
    let rel_error = if finite && a.truth != 0.0 {
        Some((a.estimate - a.truth).abs() / a.truth.abs())
    } else {
        None
    };
    let error_ratio = match (&a.ci, finite) {
        (Some(ci), true) if ci.half_width.is_finite() && ci.half_width > 0.0 => {
            Some((a.estimate - a.truth).abs() / ci.half_width)
        }
        _ => None,
    };
    // "Estimation works" for the confusion matrix is the replay's
    // coverage verdict: the bars were right iff they contained truth.
    let outcome = match (covered, a.diagnostic_accepted) {
        (Some(c), Some(d)) => Some(DiagnosticOutcome::from_verdicts(c, d)),
        _ => None,
    };
    AuditScore { covered, rel_error, error_ratio, outcome }
}

/// The window/report key: aggregate function × distribution family.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AuditKey {
    /// Aggregate function name.
    pub agg: String,
    /// Distribution-family label.
    pub family: String,
}

impl std::fmt::Display for AuditKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.agg, self.family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audited(estimate: f64, hw: f64, accepted: Option<bool>, truth: f64) -> AuditedAggregate {
        AuditedAggregate {
            agg: "AVG".into(),
            column: "x".into(),
            family: "normal".into(),
            estimate,
            ci: Some(Ci::new(estimate, hw, 0.95)),
            diagnostic_accepted: accepted,
            truth,
        }
    }

    #[test]
    fn coverage_and_ratio_agree() {
        let hit = score(&audited(10.0, 1.0, Some(true), 10.5));
        assert_eq!(hit.covered, Some(true));
        assert!(hit.error_ratio.unwrap() <= 1.0);
        assert_eq!(hit.outcome, Some(DiagnosticOutcome::TrueAccept));

        let miss = score(&audited(10.0, 1.0, Some(true), 12.0));
        assert_eq!(miss.covered, Some(false));
        assert!(miss.error_ratio.unwrap() > 1.0);
        assert_eq!(miss.outcome, Some(DiagnosticOutcome::FalsePositive));
    }

    #[test]
    fn rejection_cells() {
        let tr = score(&audited(10.0, 1.0, Some(false), 12.0));
        assert_eq!(tr.outcome, Some(DiagnosticOutcome::TrueReject));
        let fn_ = score(&audited(10.0, 1.0, Some(false), 10.2));
        assert_eq!(fn_.outcome, Some(DiagnosticOutcome::FalseNegative));
    }

    #[test]
    fn missing_ci_or_diagnostic_yields_none() {
        let mut a = audited(10.0, 1.0, None, 10.2);
        assert_eq!(score(&a).outcome, None);
        a.ci = None;
        let s = score(&a);
        assert_eq!(s.covered, None);
        assert_eq!(s.error_ratio, None);
        assert!(s.rel_error.is_some());
    }

    #[test]
    fn nonfinite_inputs_do_not_poison() {
        let mut a = audited(f64::NAN, 1.0, Some(true), 10.0);
        let s = score(&a);
        assert_eq!(s.covered, None);
        assert_eq!(s.rel_error, None);
        assert_eq!(s.error_ratio, None);
        assert_eq!(s.outcome, None);
        a = audited(10.0, 1.0, Some(true), f64::INFINITY);
        assert_eq!(score(&a).covered, None);
        // Zero truth: relative error undefined, coverage still checked.
        a = audited(0.1, 1.0, Some(true), 0.0);
        let s = score(&a);
        assert_eq!(s.rel_error, None);
        assert_eq!(s.covered, Some(true));
    }

    #[test]
    fn key_renders_agg_and_family() {
        let k = AuditKey { agg: "MAX".into(), family: "pareto".into() };
        assert_eq!(k.to_string(), "MAX:pareto");
    }
}

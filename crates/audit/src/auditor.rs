//! The auditor: sampling decisions, score ingestion, sliding windows,
//! alerting, metrics, and the JSONL audit log.

use std::collections::BTreeMap;
use std::sync::Mutex;

use aqp_obs::{name, Counter, Gauge, Histogram, JsonlSink, ObsHandle};

use crate::config::{AuditConfig, AuditLogConfig};
use crate::sampler::AuditSampler;
use crate::score::{score, AuditKey, AuditScore, AuditedAggregate};
use crate::window::{ConfusionCounts, SlidingWindow};

/// One audited query: the approximate results it served, paired with
/// replayed truth, plus identifying context.
#[derive(Debug, Clone)]
pub struct QueryAudit {
    /// The query's ordinal among considered queries (from
    /// [`Auditor::should_audit`]).
    pub ordinal: u64,
    /// The SQL text (or a rendered description) of the query.
    pub sql: String,
    /// Wall-clock cost of the full-data replay, in milliseconds.
    pub replay_ms: f64,
    /// Every group-aggregate result with its truth.
    pub aggregates: Vec<AuditedAggregate>,
}

/// A fired threshold alert: a window's CI coverage dropped below the
/// configured floor.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// `"ALL"` or an `agg:family` key.
    pub key: String,
    /// The window's coverage when the alert fired.
    pub coverage: f64,
    /// The configured floor it crossed.
    pub threshold: f64,
    /// Coverage verdicts in the window at firing time.
    pub window_len: u64,
    /// Cumulative scored-result ordinal at firing time.
    pub at_result: u64,
}

impl std::fmt::Display for Alert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coverage alert [{}]: {:.3} < {:.2} over last {} audited results (at result {})",
            self.key, self.coverage, self.threshold, self.window_len, self.at_result
        )
    }
}

/// Cumulative (since-start) statistics for one key.
#[derive(Debug, Clone, Copy, Default)]
struct CumStats {
    scored: u64,
    hits: u64,
    misses: u64,
    ratio_sum: f64,
    ratio_n: u64,
    confusion: ConfusionCounts,
}

impl CumStats {
    fn push(&mut self, s: &AuditScore) {
        self.scored += 1;
        match s.covered {
            Some(true) => self.hits += 1,
            Some(false) => self.misses += 1,
            None => {}
        }
        if let Some(r) = s.error_ratio {
            self.ratio_sum += r;
            self.ratio_n += 1;
        }
        if let Some(o) = s.outcome {
            self.confusion.add(o);
        }
    }

    fn coverage(&self) -> Option<f64> {
        let n = self.hits + self.misses;
        (n > 0).then(|| self.hits as f64 / n as f64)
    }

    fn mean_error_ratio(&self) -> Option<f64> {
        (self.ratio_n > 0).then(|| self.ratio_sum / self.ratio_n as f64)
    }
}

#[derive(Debug)]
struct KeyState {
    window: SlidingWindow,
    cum: CumStats,
    /// Alert re-arm latch: fire once per downward crossing.
    armed: bool,
}

impl KeyState {
    fn new(window: usize) -> Self {
        KeyState { window: SlidingWindow::new(window), cum: CumStats::default(), armed: true }
    }
}

#[derive(Debug)]
enum SinkState {
    Disabled,
    Unopened(AuditLogConfig),
    Open(JsonlSink),
    Failed,
}

#[derive(Debug)]
struct State {
    considered: u64,
    audited: u64,
    overall: KeyState,
    per_key: BTreeMap<AuditKey, KeyState>,
    alerts: Vec<Alert>,
    sink: SinkState,
}

/// Cached metric handles (registered once; updates are lock-free).
#[derive(Debug)]
struct Meters {
    considered: Counter,
    audited: Counter,
    scored: Counter,
    hits: Counter,
    misses: Counter,
    true_accepts: Counter,
    true_rejects: Counter,
    false_positives: Counter,
    false_negatives: Counter,
    alerts: Counter,
    log_errors: Counter,
    /// Registered only when a JSONL log is configured, so log-less
    /// sessions keep their metric surface unchanged.
    sink_dropped: Option<Counter>,
    window_coverage: Gauge,
    replay_ms: Histogram,
}

impl Meters {
    fn new(obs: &ObsHandle, has_log: bool) -> Self {
        let m = &obs.metrics;
        Meters {
            considered: m.counter(name::AUDIT_CONSIDERED),
            audited: m.counter(name::AUDIT_AUDITED),
            scored: m.counter(name::AUDIT_RESULTS_SCORED),
            hits: m.counter(name::AUDIT_COVERAGE_HITS),
            misses: m.counter(name::AUDIT_COVERAGE_MISSES),
            true_accepts: m.counter(name::AUDIT_TRUE_ACCEPTS),
            true_rejects: m.counter(name::AUDIT_TRUE_REJECTS),
            false_positives: m.counter(name::AUDIT_FALSE_POSITIVES),
            false_negatives: m.counter(name::AUDIT_FALSE_NEGATIVES),
            alerts: m.counter(name::AUDIT_ALERTS_FIRED),
            log_errors: m.counter(name::AUDIT_LOG_ERRORS),
            sink_dropped: has_log.then(|| m.counter(name::OBS_SINK_DROPPED_LINES)),
            window_coverage: m.gauge(name::AUDIT_WINDOW_COVERAGE),
            replay_ms: m.histogram(name::AUDIT_REPLAY_MS),
        }
    }
}

/// The continuous accuracy auditor.
///
/// Thread-safe: `should_audit` and `ingest` take an internal lock, so a
/// session shared across threads audits a consistent, deterministic
/// subset of its queries.
#[derive(Debug)]
pub struct Auditor {
    cfg: AuditConfig,
    sampler: AuditSampler,
    meters: Meters,
    state: Mutex<State>,
}

impl Auditor {
    /// Build an auditor. The JSONL log (if configured) opens lazily on
    /// the first audit; open/write failures disable the log and count
    /// on `aqp.audit.log_write_errors` instead of failing queries.
    pub fn new(cfg: AuditConfig, obs: &ObsHandle) -> Self {
        let sampler = AuditSampler::new(cfg.seed, cfg.sample_rate);
        let sink = match cfg.log.clone() {
            Some(log) => SinkState::Unopened(log),
            None => SinkState::Disabled,
        };
        let state = State {
            considered: 0,
            audited: 0,
            overall: KeyState::new(cfg.window),
            per_key: BTreeMap::new(),
            alerts: Vec::new(),
            sink,
        };
        let meters = Meters::new(obs, cfg.log.is_some());
        Auditor { cfg, sampler, meters, state: Mutex::new(state) }
    }

    /// The configuration this auditor runs under.
    pub fn config(&self) -> &AuditConfig {
        &self.cfg
    }

    /// Register one completed approximate query and decide whether to
    /// audit it. Returns the query's audit ordinal when selected; the
    /// caller then replays the query and calls [`Auditor::ingest`].
    pub fn should_audit(&self) -> Option<u64> {
        let mut st = self.lock();
        let ordinal = st.considered;
        st.considered += 1;
        self.meters.considered.inc();
        if self.sampler.selects(ordinal) {
            st.audited += 1;
            self.meters.audited.inc();
            Some(ordinal)
        } else {
            None
        }
    }

    /// Score one audited query's results, update windows and metrics,
    /// append to the audit log, and return any alerts that fired.
    pub fn ingest(&self, audit: QueryAudit) -> Vec<Alert> {
        let mut st = self.lock();
        self.meters.replay_ms.record_ms(audit.replay_ms);
        let mut fired = Vec::new();
        for a in &audit.aggregates {
            let s = score(a);
            self.meters.scored.inc();
            match s.covered {
                Some(true) => self.meters.hits.inc(),
                Some(false) => self.meters.misses.inc(),
                None => {}
            }
            if let Some(o) = s.outcome {
                match o {
                    aqp_diagnostics::DiagnosticOutcome::TrueAccept => {
                        self.meters.true_accepts.inc()
                    }
                    aqp_diagnostics::DiagnosticOutcome::TrueReject => {
                        self.meters.true_rejects.inc()
                    }
                    aqp_diagnostics::DiagnosticOutcome::FalsePositive => {
                        self.meters.false_positives.inc()
                    }
                    aqp_diagnostics::DiagnosticOutcome::FalseNegative => {
                        self.meters.false_negatives.inc()
                    }
                }
            }
            let key = AuditKey { agg: a.agg.clone(), family: a.family.clone() };
            st.overall.cum.push(&s);
            st.overall.window.push(s);
            let window = self.cfg.window;
            let ks = st.per_key.entry(key.clone()).or_insert_with(|| KeyState::new(window));
            ks.cum.push(&s);
            ks.window.push(s);

            let line = audit_line(&audit, a, &s);
            write_line(
                &mut st.sink,
                &line,
                &self.meters.log_errors,
                self.meters.sink_dropped.as_ref(),
            );

            let at_result = st.overall.cum.scored;
            let mut new_alerts = Vec::new();
            if let Some(alert) = self.check_alert("ALL", &mut st.overall, at_result) {
                new_alerts.push(alert);
            }
            let key_name = key.to_string();
            if let Some(ks) = st.per_key.get_mut(&key) {
                if let Some(alert) = self.check_alert(&key_name, ks, at_result) {
                    new_alerts.push(alert);
                }
            }
            for alert in new_alerts {
                self.meters.alerts.inc();
                let line = alert_line(&alert);
                write_line(
                &mut st.sink,
                &line,
                &self.meters.log_errors,
                self.meters.sink_dropped.as_ref(),
            );
                st.alerts.push(alert.clone());
                fired.push(alert);
            }
        }
        if let Some(c) = st.overall.window.coverage() {
            self.meters.window_coverage.set(c);
        }
        if let SinkState::Open(sink) = &mut st.sink {
            if sink.flush().is_err() {
                self.meters.log_errors.inc();
            }
        }
        fired
    }

    /// Evaluate the coverage alert for one key, honoring the re-arm
    /// latch (one alert per downward crossing).
    fn check_alert(&self, key_name: &str, ks: &mut KeyState, at_result: u64) -> Option<Alert> {
        let verdicts = ks.window.coverage_verdicts();
        let coverage = ks.window.coverage()?;
        if verdicts < self.cfg.min_window_for_alert as u64 {
            return None;
        }
        if coverage < self.cfg.coverage_alert_below {
            if ks.armed {
                ks.armed = false;
                return Some(Alert {
                    key: key_name.to_string(),
                    coverage,
                    threshold: self.cfg.coverage_alert_below,
                    window_len: verdicts,
                    at_result,
                });
            }
        } else {
            ks.armed = true;
        }
        None
    }

    /// A deterministic snapshot of everything the auditor knows:
    /// per-key and overall coverage, error ratios, confusion cells, and
    /// the alert history. Contains no timing data, so a seeded run
    /// renders bit-identically on repeat.
    pub fn report(&self) -> AuditReport {
        let st = self.lock();
        let summarize = |name: &str, ks: &KeyState| KeySummary {
            key: name.to_string(),
            scored: ks.cum.scored,
            coverage: ks.cum.coverage(),
            window_coverage: ks.window.coverage(),
            mean_error_ratio: ks.cum.mean_error_ratio(),
            confusion: ks.cum.confusion,
        };
        AuditReport {
            considered: st.considered,
            audited: st.audited,
            overall: summarize("ALL", &st.overall),
            keys: st
                .per_key
                .iter()
                .map(|(k, ks)| summarize(&k.to_string(), ks))
                .collect(),
            alerts: st.alerts.clone(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // Poisoning only means a panic elsewhere mid-update; the maps
        // remain structurally sound.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Per-key summary inside an [`AuditReport`].
#[derive(Debug, Clone)]
pub struct KeySummary {
    /// `"ALL"` or `agg:family`.
    pub key: String,
    /// Cumulative scored results.
    pub scored: u64,
    /// Cumulative CI coverage rate.
    pub coverage: Option<f64>,
    /// Coverage over the current sliding window.
    pub window_coverage: Option<f64>,
    /// Cumulative mean `|error| / half_width` ratio.
    pub mean_error_ratio: Option<f64>,
    /// Cumulative confusion cells.
    pub confusion: ConfusionCounts,
}

/// Snapshot of the auditor's scorekeeping (see [`Auditor::report`]).
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Approximate queries considered for sampling.
    pub considered: u64,
    /// Queries actually audited.
    pub audited: u64,
    /// Overall summary across every key.
    pub overall: KeySummary,
    /// Per `agg:family` summaries, key-sorted.
    pub keys: Vec<KeySummary>,
    /// Every alert fired, in firing order.
    pub alerts: Vec<Alert>,
}

impl AuditReport {
    /// Render the coverage/confusion table plus alert history.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit: considered={} audited={} scored={}\n",
            self.considered, self.audited, self.overall.scored
        ));
        let width = self
            .keys
            .iter()
            .map(|k| k.key.len())
            .chain(std::iter::once(3))
            .max()
            .unwrap_or(3)
            .max(3);
        out.push_str(&format!(
            "{:<width$}  {:>6}  {:>8}  {:>8}  {:>9}  {:>5} {:>5} {:>5} {:>5}\n",
            "key", "n", "coverage", "window", "err-ratio", "TA", "TR", "FP", "FN"
        ));
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "-".to_string(),
        };
        for k in std::iter::once(&self.overall).chain(self.keys.iter()) {
            out.push_str(&format!(
                "{:<width$}  {:>6}  {:>8}  {:>8}  {:>9}  {:>5} {:>5} {:>5} {:>5}\n",
                k.key,
                k.scored,
                fmt_opt(k.coverage),
                fmt_opt(k.window_coverage),
                fmt_opt(k.mean_error_ratio),
                k.confusion.true_accepts,
                k.confusion.true_rejects,
                k.confusion.false_positives,
                k.confusion.false_negatives,
            ));
        }
        if self.alerts.is_empty() {
            out.push_str("alerts: none\n");
        } else {
            out.push_str(&format!("alerts ({}):\n", self.alerts.len()));
            for a in &self.alerts {
                out.push_str(&format!("  {a}\n"));
            }
        }
        out
    }
}

fn write_line(sink: &mut SinkState, line: &str, errors: &Counter, dropped: Option<&Counter>) {
    loop {
        match sink {
            SinkState::Disabled | SinkState::Failed => return,
            SinkState::Unopened(cfg) => {
                match JsonlSink::open(&cfg.path, cfg.max_bytes, cfg.max_rotations) {
                    Ok(s) => {
                        *sink = SinkState::Open(match dropped {
                            Some(c) => s.with_dropped_lines_counter(c.clone()),
                            None => s,
                        })
                    }
                    Err(_) => {
                        errors.inc();
                        *sink = SinkState::Failed;
                        return;
                    }
                }
            }
            SinkState::Open(s) => {
                if s.append(line).is_err() {
                    errors.inc();
                    *sink = SinkState::Failed;
                }
                return;
            }
        }
    }
}

fn outcome_str(o: aqp_diagnostics::DiagnosticOutcome) -> &'static str {
    match o {
        aqp_diagnostics::DiagnosticOutcome::TrueAccept => "true_accept",
        aqp_diagnostics::DiagnosticOutcome::TrueReject => "true_reject",
        aqp_diagnostics::DiagnosticOutcome::FalsePositive => "false_positive",
        aqp_diagnostics::DiagnosticOutcome::FalseNegative => "false_negative",
    }
}

/// One JSONL line per scored result.
fn audit_line(audit: &QueryAudit, a: &AuditedAggregate, s: &AuditScore) -> String {
    use aqp_obs::json::{push_f64, push_str_lit};
    let mut out = String::new();
    out.push_str("{\"type\":\"audit\",\"query\":");
    out.push_str(&audit.ordinal.to_string());
    out.push_str(",\"sql\":");
    push_str_lit(&mut out, &audit.sql);
    out.push_str(",\"agg\":");
    push_str_lit(&mut out, &a.agg);
    out.push_str(",\"column\":");
    push_str_lit(&mut out, &a.column);
    out.push_str(",\"family\":");
    push_str_lit(&mut out, &a.family);
    out.push_str(",\"estimate\":");
    push_f64(&mut out, a.estimate);
    if let Some(ci) = &a.ci {
        out.push_str(",\"ci_lo\":");
        push_f64(&mut out, ci.lo());
        out.push_str(",\"ci_hi\":");
        push_f64(&mut out, ci.hi());
        out.push_str(",\"confidence\":");
        push_f64(&mut out, ci.confidence);
    }
    out.push_str(",\"truth\":");
    push_f64(&mut out, a.truth);
    out.push_str(",\"covered\":");
    match s.covered {
        Some(c) => out.push_str(if c { "true" } else { "false" }),
        None => out.push_str("null"),
    }
    out.push_str(",\"rel_error\":");
    match s.rel_error {
        Some(v) => push_f64(&mut out, v),
        None => out.push_str("null"),
    }
    out.push_str(",\"error_ratio\":");
    match s.error_ratio {
        Some(v) => push_f64(&mut out, v),
        None => out.push_str("null"),
    }
    out.push_str(",\"diag_accepted\":");
    match a.diagnostic_accepted {
        Some(d) => out.push_str(if d { "true" } else { "false" }),
        None => out.push_str("null"),
    }
    out.push_str(",\"outcome\":");
    match s.outcome {
        Some(o) => push_str_lit(&mut out, outcome_str(o)),
        None => out.push_str("null"),
    }
    out.push_str(",\"replay_ms\":");
    push_f64(&mut out, audit.replay_ms);
    out.push('}');
    out
}

/// One JSONL line per fired alert.
fn alert_line(a: &Alert) -> String {
    use aqp_obs::json::{push_f64, push_str_lit};
    let mut out = String::new();
    out.push_str("{\"type\":\"audit_alert\",\"key\":");
    push_str_lit(&mut out, &a.key);
    out.push_str(",\"coverage\":");
    push_f64(&mut out, a.coverage);
    out.push_str(",\"threshold\":");
    push_f64(&mut out, a.threshold);
    out.push_str(&format!(
        ",\"window\":{},\"at_result\":{}}}",
        a.window_len, a.at_result
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_obs::Clock;
    use aqp_stats::ci::Ci;

    fn obs() -> ObsHandle {
        ObsHandle::isolated(Clock::mock())
    }

    fn agg(name: &str, family: &str, estimate: f64, hw: f64, accepted: bool, truth: f64) -> AuditedAggregate {
        AuditedAggregate {
            agg: name.into(),
            column: "x".into(),
            family: family.into(),
            estimate,
            ci: Some(Ci::new(estimate, hw, 0.95)),
            diagnostic_accepted: Some(accepted),
            truth,
        }
    }

    fn cfg() -> AuditConfig {
        AuditConfig {
            sample_rate: 1.0,
            window: 10,
            min_window_for_alert: 4,
            coverage_alert_below: 0.9,
            ..Default::default()
        }
    }

    #[test]
    fn sampling_counts_and_metrics() {
        let o = obs();
        let a = Auditor::new(AuditConfig { sample_rate: 1.0, ..Default::default() }, &o);
        assert_eq!(a.should_audit(), Some(0));
        assert_eq!(a.should_audit(), Some(1));
        let snap = o.metrics.snapshot();
        assert_eq!(snap.counter(name::AUDIT_CONSIDERED), Some(2));
        assert_eq!(snap.counter(name::AUDIT_AUDITED), Some(2));
    }

    #[test]
    fn ingest_scores_and_alerts_on_sustained_misses() {
        let o = obs();
        let a = Auditor::new(cfg(), &o);
        // 5 misses in a row: alert must fire once min_window (4) is met,
        // and only once while it stays below threshold.
        let mut fired = Vec::new();
        for i in 0..5 {
            let ord = a.should_audit().unwrap();
            fired.extend(a.ingest(QueryAudit {
                ordinal: ord,
                sql: format!("q{i}"),
                replay_ms: 1.0,
                aggregates: vec![agg("MAX", "pareto", 10.0, 0.5, true, 20.0)],
            }));
        }
        assert_eq!(fired.len(), 2, "{fired:?}"); // ALL + MAX:pareto, once each
        assert!(fired.iter().any(|al| al.key == "ALL"));
        assert!(fired.iter().any(|al| al.key == "MAX:pareto"));
        let snap = o.metrics.snapshot();
        assert_eq!(snap.counter(name::AUDIT_COVERAGE_MISSES), Some(5));
        assert_eq!(snap.counter(name::AUDIT_ALERTS_FIRED), Some(2));
        assert_eq!(snap.counter(name::AUDIT_FALSE_POSITIVES), Some(5));
        let rep = a.report();
        assert_eq!(rep.overall.coverage, Some(0.0));
        assert_eq!(rep.alerts.len(), 2);
        assert!(rep.render_table().contains("MAX:pareto"));
    }

    #[test]
    fn alert_rearms_after_recovery() {
        let o = obs();
        let mut c = cfg();
        c.window = 4; // small window so coverage can recover
        let a = Auditor::new(c, &o);
        let push = |covered: bool| {
            let ord = a.should_audit().unwrap();
            a.ingest(QueryAudit {
                ordinal: ord,
                sql: "q".into(),
                replay_ms: 0.1,
                aggregates: vec![agg("AVG", "normal", 10.0, 1.0, true, if covered { 10.2 } else { 30.0 })],
            })
        };
        let mut total = 0;
        for _ in 0..4 {
            total += push(false).len();
        }
        assert!(total >= 1);
        let before = total;
        // Recover: window fills with hits, latch re-arms.
        for _ in 0..4 {
            total += push(true).len();
        }
        assert_eq!(total, before, "no alerts while healthy");
        // Degrade again: a second crossing fires again.
        for _ in 0..4 {
            total += push(false).len();
        }
        assert!(total > before);
    }

    #[test]
    fn report_is_deterministic_and_timing_free() {
        let build = || {
            let o = obs();
            let a = Auditor::new(cfg(), &o);
            for i in 0..6 {
                let ord = a.should_audit().unwrap();
                a.ingest(QueryAudit {
                    ordinal: ord,
                    // replay_ms varies run to run in production; the
                    // report must not depend on it.
                    replay_ms: i as f64 * 17.3,
                    sql: format!("q{i}"),
                    aggregates: vec![agg("AVG", "lognormal", 5.0, 1.0, true, 5.1 + i as f64 * 0.01)],
                });
            }
            a.report().render_table()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn audit_log_lines_escape_and_rotate() {
        let dir = std::env::temp_dir().join(format!("aqp-audit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.jsonl");
        let _ = std::fs::remove_file(&path);
        let o = obs();
        let mut c = cfg();
        c.log = Some(AuditLogConfig { path: path.clone(), max_bytes: 1 << 20, max_rotations: 1 });
        let a = Auditor::new(c, &o);
        let ord = a.should_audit().unwrap();
        a.ingest(QueryAudit {
            ordinal: ord,
            sql: "SELECT \"weird\\name\"\n\tFROM t".into(),
            replay_ms: 0.5,
            aggregates: vec![agg("AVG", "normal", 1.0, 0.5, true, 1.1)],
        });
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\\\"weird\\\\name\\\"\\n\\tFROM"), "{body}");
        assert!(body.contains("\"outcome\":\"true_accept\""));
        assert_eq!(o.metrics.snapshot().counter(name::AUDIT_LOG_ERRORS), Some(0));
    }

    #[test]
    fn unwritable_log_disables_itself_without_failing_queries() {
        let o = obs();
        let mut c = cfg();
        c.log = Some(AuditLogConfig::at("/nonexistent-dir/audit.jsonl"));
        let a = Auditor::new(c, &o);
        let ord = a.should_audit().unwrap();
        let alerts = a.ingest(QueryAudit {
            ordinal: ord,
            sql: "q".into(),
            replay_ms: 0.1,
            aggregates: vec![agg("AVG", "normal", 1.0, 0.5, true, 1.1)],
        });
        assert!(alerts.is_empty());
        assert_eq!(o.metrics.snapshot().counter(name::AUDIT_LOG_ERRORS), Some(1));
        // Subsequent ingests do not retry (one error counted).
        let ord = a.should_audit().unwrap();
        a.ingest(QueryAudit { ordinal: ord, sql: "q".into(), replay_ms: 0.1, aggregates: vec![] });
        assert_eq!(o.metrics.snapshot().counter(name::AUDIT_LOG_ERRORS), Some(1));
    }
}

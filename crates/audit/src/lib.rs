//! `aqp-audit`: continuous error-bar coverage auditing and diagnostic
//! scorekeeping.
//!
//! The paper's thesis is that an AQP system must *know when it's
//! wrong*; this crate closes the loop in production by checking that
//! claim against ground truth on live traffic. A deterministic,
//! seedable sampler picks a fraction of completed approximate queries;
//! the session replays each at full data; and every group-aggregate
//! result is scored three ways:
//!
//! * **CI coverage** — did the claimed confidence interval contain the
//!   exact answer? The long-run hit rate should track the claimed
//!   confidence level (≈95% for the default intervals).
//! * **Error ratio** — `|estimate − truth| / half_width`, the realized
//!   error in units of the claimed bound (≤ 1 iff covered).
//! * **Diagnostic confusion cell** — the Kleiner diagnostic's
//!   accept/reject verdict against what the replay proved, yielding
//!   live TP/FP/TN/FN rates (the paper's Fig. 4, continuously).
//!
//! Scores aggregate into sliding windows per aggregate function ×
//! distribution family with threshold alerting ("coverage below 90%
//! over the last 200 audited results"), feed `aqp.audit.*` metrics, and
//! append to a rotating JSONL audit log ([`aqp_obs::JsonlSink`]).
//!
//! This crate is std-only and deliberately does **not** depend on the
//! planner or executor: the session owns the replay and hands the
//! auditor `(served result, truth)` pairs, keeping the dependency
//! arrow core → audit.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod auditor;
pub mod config;
pub mod sampler;
pub mod score;
pub mod window;

pub use auditor::{Alert, AuditReport, Auditor, KeySummary, QueryAudit};
pub use config::{AuditConfig, AuditLogConfig};
pub use sampler::AuditSampler;
pub use score::{score, AuditKey, AuditScore, AuditedAggregate};
pub use window::{ConfusionCounts, SlidingWindow};

//! Sliding-window and cumulative aggregation of audit scores.

use std::collections::VecDeque;

use aqp_diagnostics::DiagnosticOutcome;

use crate::score::AuditScore;

/// Counts of the four diagnostic confusion-matrix cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Diagnostic accepted, CI covered.
    pub true_accepts: u64,
    /// Diagnostic rejected, CI missed.
    pub true_rejects: u64,
    /// Diagnostic accepted, CI missed (dangerous).
    pub false_positives: u64,
    /// Diagnostic rejected, CI covered (wasteful).
    pub false_negatives: u64,
}

impl ConfusionCounts {
    /// Record one confusion cell.
    pub fn add(&mut self, o: DiagnosticOutcome) {
        match o {
            DiagnosticOutcome::TrueAccept => self.true_accepts += 1,
            DiagnosticOutcome::TrueReject => self.true_rejects += 1,
            DiagnosticOutcome::FalsePositive => self.false_positives += 1,
            DiagnosticOutcome::FalseNegative => self.false_negatives += 1,
        }
    }

    /// Remove one previously recorded cell (window eviction).
    pub fn remove(&mut self, o: DiagnosticOutcome) {
        match o {
            DiagnosticOutcome::TrueAccept => {
                self.true_accepts = self.true_accepts.saturating_sub(1)
            }
            DiagnosticOutcome::TrueReject => {
                self.true_rejects = self.true_rejects.saturating_sub(1)
            }
            DiagnosticOutcome::FalsePositive => {
                self.false_positives = self.false_positives.saturating_sub(1)
            }
            DiagnosticOutcome::FalseNegative => {
                self.false_negatives = self.false_negatives.saturating_sub(1)
            }
        }
    }

    /// Total scored cells.
    pub fn total(&self) -> u64 {
        self.true_accepts + self.true_rejects + self.false_positives + self.false_negatives
    }

    /// False-positive rate among diagnostic *accepts* (the paper's
    /// dangerous direction), `None` with no accepts.
    pub fn false_positive_rate(&self) -> Option<f64> {
        let accepts = self.true_accepts + self.false_positives;
        (accepts > 0).then(|| self.false_positives as f64 / accepts as f64)
    }

    /// False-negative rate among diagnostic *rejects* (needless
    /// fallbacks), `None` with no rejects.
    pub fn false_negative_rate(&self) -> Option<f64> {
        let rejects = self.true_rejects + self.false_negatives;
        (rejects > 0).then(|| self.false_negatives as f64 / rejects as f64)
    }
}

/// A fixed-capacity sliding window over [`AuditScore`]s with O(1)
/// aggregate queries (running sums maintained on push/evict).
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    cap: usize,
    entries: VecDeque<AuditScore>,
    hits: u64,
    misses: u64,
    ratio_sum: f64,
    ratio_n: u64,
    confusion: ConfusionCounts,
}

impl SlidingWindow {
    /// A window keeping the last `cap` scores (capacity at least 1).
    pub fn new(cap: usize) -> Self {
        SlidingWindow {
            cap: cap.max(1),
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
            ratio_sum: 0.0,
            ratio_n: 0,
            confusion: ConfusionCounts::default(),
        }
    }

    /// Push one score, evicting the oldest at capacity.
    pub fn push(&mut self, s: AuditScore) {
        if self.entries.len() == self.cap {
            if let Some(old) = self.entries.pop_front() {
                match old.covered {
                    Some(true) => self.hits = self.hits.saturating_sub(1),
                    Some(false) => self.misses = self.misses.saturating_sub(1),
                    None => {}
                }
                if let Some(r) = old.error_ratio {
                    self.ratio_sum -= r;
                    self.ratio_n = self.ratio_n.saturating_sub(1);
                }
                if let Some(o) = old.outcome {
                    self.confusion.remove(o);
                }
            }
        }
        match s.covered {
            Some(true) => self.hits += 1,
            Some(false) => self.misses += 1,
            None => {}
        }
        if let Some(r) = s.error_ratio {
            self.ratio_sum += r;
            self.ratio_n += 1;
        }
        if let Some(o) = s.outcome {
            self.confusion.add(o);
        }
        self.entries.push_back(s);
    }

    /// Scores currently in the window.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the window empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Scores in the window that carry a coverage verdict (had a CI).
    pub fn coverage_verdicts(&self) -> u64 {
        self.hits + self.misses
    }

    /// CI coverage rate over the window (`None` with no CI verdicts).
    pub fn coverage(&self) -> Option<f64> {
        let n = self.hits + self.misses;
        (n > 0).then(|| self.hits as f64 / n as f64)
    }

    /// Mean error ratio over the window (`None` with no ratios).
    pub fn mean_error_ratio(&self) -> Option<f64> {
        (self.ratio_n > 0).then(|| self.ratio_sum / self.ratio_n as f64)
    }

    /// Confusion-cell counts over the window.
    pub fn confusion(&self) -> ConfusionCounts {
        self.confusion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(covered: bool, ratio: f64, outcome: DiagnosticOutcome) -> AuditScore {
        AuditScore {
            covered: Some(covered),
            rel_error: Some(ratio * 0.1),
            error_ratio: Some(ratio),
            outcome: Some(outcome),
        }
    }

    #[test]
    fn coverage_over_window() {
        let mut w = SlidingWindow::new(4);
        assert_eq!(w.coverage(), None);
        for covered in [true, true, true, false] {
            w.push(s(covered, 0.5, DiagnosticOutcome::TrueAccept));
        }
        assert_eq!(w.coverage(), Some(0.75));
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn eviction_slides_the_stats() {
        let mut w = SlidingWindow::new(2);
        w.push(s(false, 4.0, DiagnosticOutcome::FalsePositive));
        w.push(s(true, 0.5, DiagnosticOutcome::TrueAccept));
        w.push(s(true, 0.5, DiagnosticOutcome::TrueAccept));
        // The miss (and its FP cell, and its 4.0 ratio) fell out.
        assert_eq!(w.coverage(), Some(1.0));
        assert_eq!(w.confusion().false_positives, 0);
        assert!((w.mean_error_ratio().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn scores_without_verdicts_occupy_slots_but_not_rates() {
        let mut w = SlidingWindow::new(3);
        w.push(AuditScore { covered: None, rel_error: None, error_ratio: None, outcome: None });
        w.push(s(true, 1.0, DiagnosticOutcome::TrueAccept));
        assert_eq!(w.len(), 2);
        assert_eq!(w.coverage(), Some(1.0));
        assert_eq!(w.mean_error_ratio(), Some(1.0));
        assert_eq!(w.confusion().total(), 1);
    }

    #[test]
    fn confusion_rates() {
        let mut c = ConfusionCounts::default();
        c.add(DiagnosticOutcome::TrueAccept);
        c.add(DiagnosticOutcome::TrueAccept);
        c.add(DiagnosticOutcome::FalsePositive);
        c.add(DiagnosticOutcome::TrueReject);
        assert_eq!(c.total(), 4);
        assert!((c.false_positive_rate().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.false_negative_rate(), Some(0.0));
        assert_eq!(ConfusionCounts::default().false_positive_rate(), None);
    }
}

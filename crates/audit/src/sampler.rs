//! Deterministic, seedable audit sampling.
//!
//! Each completed query gets an ordinal; whether it is audited is a
//! pure function of `(seed, ordinal)`, so replaying a trace with the
//! same seed audits exactly the same queries regardless of timing or
//! thread interleaving, and the audited subset is an unbiased `rate`
//! fraction in expectation.

/// Decides which query ordinals are audited.
#[derive(Debug, Clone, Copy)]
pub struct AuditSampler {
    seed: u64,
    rate: f64,
}

impl AuditSampler {
    /// A sampler auditing a `rate` fraction (clamped to `[0, 1]`).
    pub fn new(seed: u64, rate: f64) -> Self {
        AuditSampler {
            seed,
            rate: if rate.is_finite() { rate.clamp(0.0, 1.0) } else { 0.0 },
        }
    }

    /// Should the query with this ordinal be audited?
    pub fn selects(&self, ordinal: u64) -> bool {
        // splitmix64 of (seed ⊕ stride·ordinal): top 53 bits → U[0,1).
        let h = splitmix64(self.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.rate
    }
}

/// The splitmix64 finalizer: a well-mixed 64-bit hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_ordinal() {
        let a = AuditSampler::new(7, 0.25);
        let b = AuditSampler::new(7, 0.25);
        for i in 0..1000 {
            assert_eq!(a.selects(i), b.selects(i));
        }
    }

    #[test]
    fn rate_zero_and_one_are_exact() {
        let none = AuditSampler::new(1, 0.0);
        let all = AuditSampler::new(1, 1.0);
        assert!((0..500).all(|i| !none.selects(i)));
        assert!((0..500).all(|i| all.selects(i)));
    }

    #[test]
    fn hit_rate_tracks_the_configured_fraction() {
        let s = AuditSampler::new(42, 0.1);
        let hits = (0..20_000).filter(|&i| s.selects(i)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn different_seeds_pick_different_subsets() {
        let a = AuditSampler::new(1, 0.5);
        let b = AuditSampler::new(2, 0.5);
        let differ = (0..1000).filter(|&i| a.selects(i) != b.selects(i)).count();
        assert!(differ > 100, "only {differ} ordinals differ");
    }

    #[test]
    fn nonfinite_rate_disables_sampling() {
        let s = AuditSampler::new(3, f64::NAN);
        assert!((0..100).all(|i| !s.selects(i)));
    }
}

//! Auditor configuration: sampling policy, window semantics, alert
//! thresholds, and the rotating JSONL audit log.

use std::path::PathBuf;

/// Where (and how large) the rotating JSONL audit log is.
#[derive(Debug, Clone)]
pub struct AuditLogConfig {
    /// Live log file path (rotations get `.1`, `.2`, … suffixes).
    pub path: PathBuf,
    /// Byte budget of the live file before rotation.
    pub max_bytes: u64,
    /// Rotated files to keep (0 truncates in place).
    pub max_rotations: usize,
}

impl AuditLogConfig {
    /// A log at `path` with the default 4 MiB budget and 3 rotations.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        AuditLogConfig {
            path: path.into(),
            max_bytes: 4 << 20,
            max_rotations: 3,
        }
    }
}

/// Configuration of the continuous accuracy auditor.
///
/// The auditor is *off by default* at the session level (the session's
/// `audit` field is `None`); this struct's `Default` gives the
/// recommended knobs once auditing is switched on: audit 10% of
/// approximate answers, slide a 200-result window, and alert when CI
/// coverage drops below 90%.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Fraction of approximate answers replayed at full data, in
    /// `[0, 1]`. The decision per query is a deterministic hash of
    /// `seed` and the query's ordinal, so a trace replayed with the
    /// same seed audits exactly the same queries.
    pub sample_rate: f64,
    /// Seed for the audit-sampling hash (independent of the session's
    /// estimation seed).
    pub seed: u64,
    /// Sliding-window length, in scored group-aggregate results.
    pub window: usize,
    /// Fire an alert when a window's CI coverage drops below this.
    pub coverage_alert_below: f64,
    /// Minimum scored results in a window before it may alert (avoids
    /// alerting on the first unlucky miss).
    pub min_window_for_alert: usize,
    /// Rotating JSONL audit log; `None` keeps audits in memory only.
    pub log: Option<AuditLogConfig>,
    /// `(column, distribution family)` labels used to bucket scores per
    /// aggregate function × family (e.g. `("payload_kb", "pareto")`).
    /// Unmapped columns land in the `"unlabeled"` family.
    pub column_families: Vec<(String, String)>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            sample_rate: 0.1,
            seed: 0,
            window: 200,
            coverage_alert_below: 0.90,
            min_window_for_alert: 50,
            log: None,
            column_families: Vec::new(),
        }
    }
}

impl AuditConfig {
    /// The distribution-family label for `column`.
    pub fn family_of(&self, column: &str) -> &str {
        self.column_families
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, f)| f.as_str())
            .unwrap_or("unlabeled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_documented_policy() {
        let c = AuditConfig::default();
        assert_eq!(c.sample_rate, 0.1);
        assert_eq!(c.window, 200);
        assert_eq!(c.coverage_alert_below, 0.90);
        assert!(c.log.is_none());
    }

    #[test]
    fn family_lookup_falls_back_to_unlabeled() {
        let c = AuditConfig {
            column_families: vec![("payload_kb".into(), "pareto".into())],
            ..Default::default()
        };
        assert_eq!(c.family_of("payload_kb"), "pareto");
        assert_eq!(c.family_of("time"), "unlabeled");
    }
}

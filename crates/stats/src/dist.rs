//! Distribution samplers and the normal quantile function.
//!
//! `rand_distr` is outside this workspace's dependency budget, so the
//! samplers the paper's workloads and resamplers need are implemented
//! here: Poisson (with the λ = 1 fast path used by Poissonized
//! resampling, §5.1), normal, lognormal, Pareto, Zipf, and exponential.
//! All take an explicit RNG.

use rand::{Rng, RngExt};

/// Standard-normal quantile function Φ⁻¹(p) (Acklam's rational
/// approximation, |relative error| < 1.15e-9 on (0,1)).
///
/// # Panics
/// Panics if `p` is outside (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1), got {p}");

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard-normal CDF Φ(x) via the complementary error function
/// (Abramowitz & Stegun 7.1.26-style approximation, abs error < 7.5e-8).
pub fn normal_cdf(x: f64) -> f64 {
    // erfc-based; Φ(x) = erfc(-x/√2)/2.
    let z = -x / std::f64::consts::SQRT_2;
    0.5 * erfc(z)
}

/// Complementary error function approximation (abs error < 1.2e-7).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// A standard normal draw (polar Box–Muller without caching, branch-light).
pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// A normal draw with the given mean and standard deviation.
pub fn sample_normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * sample_standard_normal(rng)
}

/// Lognormal draw: `exp(N(mu, sigma))`. Heavy right tail — the shape of
/// session times / byte counts in the paper's workloads.
pub fn sample_lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    sample_normal(rng, mu, sigma).exp()
}

/// Pareto(scale=x_m, shape=alpha) draw via inversion. For alpha ≤ 1 the
/// mean is infinite; alpha ≤ 2 has infinite variance — the regime where
/// bootstrap/CLT error estimation breaks (§2.3.1).
pub fn sample_pareto<R: Rng>(rng: &mut R, x_m: f64, alpha: f64) -> f64 {
    debug_assert!(x_m > 0.0 && alpha > 0.0);
    let u: f64 = rng.random::<f64>();
    // Guard against u == 0 (would be +inf).
    let u = u.max(f64::MIN_POSITIVE);
    x_m / u.powf(1.0 / alpha)
}

/// Exponential(rate) draw via inversion.
pub fn sample_exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.random::<f64>();
    -(1.0 - u).ln() / rate
}

/// Poisson(λ) draw.
///
/// Uses Knuth's product method for λ ≤ 30 and the normal approximation
/// with continuity correction above (adequate for data generation; the
/// resampling hot path only ever uses λ = 1 via [`Poisson1`]).
pub fn sample_poisson<R: Rng>(rng: &mut R, lambda: f64) -> u32 {
    debug_assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    if lambda <= 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = sample_normal(rng, lambda, lambda.sqrt());
        x.round().max(0.0) as u32
    }
}

/// Specialized Poisson(1) sampler: table inversion over the CDF of
/// Poisson(1) up to k = 17 (cumulative mass beyond is < 1e-15), falling
/// back to 17 in the astronomically-unlikely tail.
///
/// This is the §5.1 hot path: one draw per (row, resample), i.e. hundreds
/// of draws per row under scan consolidation. Table inversion costs one
/// uniform plus on average ~2.3 comparisons.
#[derive(Debug, Clone)]
pub struct Poisson1 {
    cdf: [f64; 18],
}

impl Default for Poisson1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Poisson1 {
    /// Build the CDF table.
    pub fn new() -> Self {
        let mut cdf = [0.0f64; 18];
        let e_inv = (-1.0f64).exp();
        let mut pk = e_inv; // P(K = 0) = e^{-1}
        let mut acc = 0.0;
        for (k, slot) in cdf.iter_mut().enumerate() {
            acc += pk;
            *slot = acc;
            pk /= (k + 1) as f64; // P(K=k+1) = P(K=k) / (k+1) for λ=1
        }
        Poisson1 { cdf }
    }

    /// One Poisson(1) draw.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.random::<f64>();
        // Linear scan is fastest here: P(K ≤ 2) ≈ 0.92.
        for (k, &c) in self.cdf.iter().enumerate() {
            if u <= c {
                return k as u32;
            }
        }
        17
    }

    /// Fill `out` with independent Poisson(1) draws.
    pub fn fill<R: Rng>(&self, rng: &mut R, out: &mut [u32]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }
}

/// Zipf(n, s) sampler over ranks 1..=n via rejection-inversion
/// (Hörmann & Derflinger). Used for categorical skew (city/site
/// popularity) in the synthetic workloads.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_n: f64,
}

impl Zipf {
    /// A Zipf distribution over `{1..n}` with exponent `s > 0` (s = 1 is
    /// handled through the logarithmic limit branch).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs n >= 1");
        assert!(s > 0.0, "Zipf needs s > 0");
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                (1.0 + x).ln()
            } else {
                ((1.0 + x).powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_n = h(n as f64 + 0.5);
        Zipf { n, s, h_n }
    }

    /// One Zipf draw in `1..=n`.
    ///
    /// Uses rejection-inversion; falls back to clamping at the bounds.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        // Rejection-inversion after Hörmann & Derflinger (1996).
        let s = self.s;
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                (1.0 + x).ln()
            } else {
                ((1.0 + x).powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_inv = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                x.exp() - 1.0
            } else {
                ((1.0 - s) * x + 1.0).powf(1.0 / (1.0 - s)) - 1.0
            }
        };
        let h_half = h(0.5);
        let d = 1.0 - h_inv(h(1.5) - (-s * 1.5f64.ln()).exp());
        loop {
            let u = h_half + rng.random::<f64>() * (self.h_n - h_half);
            let x = h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= d || u >= h(k + 0.5) - (-s * k.ln()).exp() {
                return k as u64;
            }
        }
    }

    /// Number of categories.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.995) - 2.575_829_304).abs() < 1e-6);
        // Tails.
        assert!(normal_quantile(1e-10) < -6.0);
        assert!(normal_quantile(1.0 - 1e-10) > 6.0);
    }

    #[test]
    #[should_panic]
    fn normal_quantile_rejects_bounds() {
        normal_quantile(0.0);
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = rng_from_seed(1);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson1_table_matches_pmf() {
        let p1 = Poisson1::new();
        // CDF at k=0 is e^{-1}.
        assert!((p1.cdf[0] - (-1.0f64).exp()).abs() < 1e-12);
        // CDF at the end of the table is ~1.
        assert!((p1.cdf[17] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisson1_sample_mean_and_var_are_one() {
        let p1 = Poisson1::new();
        let mut rng = rng_from_seed(2);
        let n = 200_000;
        let mut sum = 0u64;
        let mut sum_sq = 0u64;
        for _ in 0..n {
            let k = p1.sample(&mut rng) as u64;
            sum += k;
            sum_sq += k * k;
        }
        let mean = sum as f64 / n as f64;
        let var = sum_sq as f64 / n as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn generic_poisson_agrees_with_lambda() {
        let mut rng = rng_from_seed(3);
        for &lambda in &[0.5, 4.0, 50.0] {
            let n = 50_000;
            let mean = (0..n)
                .map(|_| sample_poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda}, mean {mean}"
            );
        }
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn pareto_tail_behaviour() {
        let mut rng = rng_from_seed(4);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_pareto(&mut rng, 1.0, 3.0)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        // E[X] = alpha/(alpha-1) = 1.5 for alpha=3.
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
        // P(X > 2) = 2^{-3} = 0.125.
        let frac = xs.iter().filter(|&&x| x > 2.0).count() as f64 / n as f64;
        assert!((frac - 0.125).abs() < 0.01, "tail {frac}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = rng_from_seed(5);
        let n = 100_000;
        let mean = (0..n)
            .map(|_| sample_exponential(&mut rng, 2.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = rng_from_seed(6);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| sample_lognormal(&mut rng, 2.0, 1.0)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        // Median of lognormal(mu, sigma) is e^mu.
        assert!((median - 2.0f64.exp()).abs() / 2.0f64.exp() < 0.03, "median {median}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = rng_from_seed(7);
        let n = 50_000;
        let mut count_one = 0;
        for _ in 0..n {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
            if k == 1 {
                count_one += 1;
            }
        }
        let frac = count_one as f64 / n as f64;
        // For s=1.2, n=1000: P(1) = 1/H ≈ 0.188 (H_{1000,1.2} ≈ 5.33).
        assert!(frac > 0.12 && frac < 0.26, "P(rank 1) = {frac}");
    }

    #[test]
    fn zipf_handles_s_equal_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = rng_from_seed(8);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }
}

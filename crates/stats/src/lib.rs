//! # aqp-stats
//!
//! The statistical substrate of `reliable-aqp`: everything §2 and §5.1 of
//! *Knowing When You're Wrong* (SIGMOD 2014) rely on, implemented from
//! scratch:
//!
//! * deterministic RNG discipline ([`rng`]),
//! * distribution samplers — Poisson(λ) with a fast λ=1 path, normal,
//!   lognormal, Pareto, Zipf — and the normal quantile function ([`dist`]),
//! * streaming moments and exact quantiles ([`moments`], [`quantile`]),
//! * query aggregates θ as pluggable [`estimator::QueryEstimator`]s with
//!   both plain and Poisson-weighted evaluation ([`estimator`]),
//! * Poissonized and exact-multinomial resampling ([`resample`]),
//! * the nonparametric bootstrap ([`bootstrap`]),
//! * closed-form CLT variance estimates ([`closed_form`]),
//! * the delete-d jackknife ([`jackknife`]) — a third ξ exercising the
//!   diagnostic's generality,
//! * large-deviation (Hoeffding/Bernstein) bounds ([`large_deviation`]),
//! * symmetric centered confidence intervals, the true-interval
//!   construction, and the δ accuracy metric ([`ci`]),
//! * empirical coverage measurement ([`coverage`]) — the user-facing
//!   guarantee under-coverage breaks,
//! * the unified ξ interface every error-estimation technique implements,
//!   which is what the diagnostic validates ([`error_estimator`]), and
//! * the §3 evaluation harness that classifies a (θ, ξ, data) triple as
//!   correct / optimistic / pessimistic ([`accuracy`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod bootstrap;
pub mod ci;
pub mod closed_form;
pub mod coverage;
pub mod dist;
pub mod error_estimator;
pub mod estimator;
pub mod jackknife;
pub mod large_deviation;
pub mod moments;
pub mod quantile;
pub mod resample;
pub mod rng;
pub mod sampling;

pub use ci::{Ci, Delta};
pub use error_estimator::{ErrorEstimator, EstimationMethod};
pub use estimator::{Aggregate, QueryEstimator, SampleContext};
pub use rng::SeedStream;

//! RNG discipline.
//!
//! Every randomized component in the workspace takes an explicit seed and
//! derives independent streams from it, so whole experiments are
//! reproducible bit-for-bit. Library code never calls `rand::rng()`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used throughout the workspace.
pub type Rng = StdRng;

/// Construct the standard RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> Rng {
    StdRng::seed_from_u64(seed)
}

/// A deterministic factory of independent RNG streams.
///
/// `SeedStream::new(root).derive(label)` yields a stream that depends on
/// both the root seed and the label, so sibling components (e.g. the 100
/// bootstrap resamples and the 300 diagnostic subsample resamples) never
/// share a stream even when created in different orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    root: u64,
}

impl SeedStream {
    /// A stream family rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedStream { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derive a child seed from a label. Uses the 64-bit
    /// splitmix64/xxhash-style avalanche so labels that differ in one bit
    /// produce unrelated seeds.
    pub fn seed(&self, label: u64) -> u64 {
        let mut z = self.root ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive a child RNG from a label.
    pub fn rng(&self, label: u64) -> Rng {
        rng_from_seed(self.seed(label))
    }

    /// Derive a child stream (for nested components).
    pub fn derive(&self, label: u64) -> SeedStream {
        SeedStream { root: self.seed(label) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt as _;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn labels_give_distinct_seeds() {
        let s = SeedStream::new(7);
        assert_ne!(s.seed(0), s.seed(1));
        assert_ne!(s.seed(1), s.seed(2));
        // Different roots differ too.
        assert_ne!(SeedStream::new(1).seed(5), SeedStream::new(2).seed(5));
    }

    #[test]
    fn derive_is_deterministic() {
        let a = SeedStream::new(3).derive(9).seed(1);
        let b = SeedStream::new(3).derive(9).seed(1);
        assert_eq!(a, b);
    }

    #[test]
    fn streams_look_independent() {
        // Crude independence check: correlation of first draws across labels.
        let s = SeedStream::new(1234);
        let xs: Vec<f64> = (0..1000).map(|i| s.rng(i).random::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} too far from 0.5");
    }
}

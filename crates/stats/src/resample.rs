//! Resampling: Poissonized (§5.1) and exact multinomial (the TA/ODM-style
//! baseline it replaces).
//!
//! A bootstrap resample of a sample S of size n is classically n draws
//! with replacement from S. The paper's key systems insight is that the
//! exact-size constraint can be dropped: assigning each row an independent
//! Poisson(1) count produces a resample whose size is `Σ Poisson(1) ≈
//! Normal(n, √n)` — "very close to |S| with high probability" — while
//! being embarrassingly parallel, streaming, and memory-free. The exact
//! multinomial resampler is kept as the measured baseline (the paper cites
//! Pol & Jermaine's finding that exact with-replacement resampling was
//! 8–9× slower than the non-bootstrapped query).

use rand::{Rng, RngExt};

use crate::dist::Poisson1;

/// Generate one Poissonized weight vector: `out[i] ~ iid Poisson(1)`.
pub fn poisson_weights<R: Rng>(rng: &mut R, n: usize) -> Vec<u32> {
    let p1 = Poisson1::new();
    let mut out = vec![0u32; n];
    p1.fill(rng, &mut out);
    out
}

/// Generate `k` Poissonized weight vectors in row-major order
/// (`k × n`, laid out as `k` consecutive blocks of length `n`).
///
/// This is the scan-consolidation layout of §5.3.1: a single pass over the
/// rows can fill all `k` resamples' weights.
pub fn poisson_weight_matrix<R: Rng>(rng: &mut R, k: usize, n: usize) -> Vec<Vec<u32>> {
    let p1 = Poisson1::new();
    (0..k)
        .map(|_| {
            let mut row = vec![0u32; n];
            p1.fill(rng, &mut row);
            row
        })
        .collect()
}

/// Exact multinomial resample: draw exactly `n` row indices with
/// replacement and return per-row counts. O(n) time but requires
/// materializing the full count vector under a global sum constraint —
/// the coupling §5.1 identifies as the obstacle to distributed execution.
pub fn exact_resample_counts<R: Rng>(rng: &mut R, n: usize) -> Vec<u32> {
    let mut counts = vec![0u32; n];
    for _ in 0..n {
        counts[rng.random_range(0..n)] += 1;
    }
    counts
}

/// The total size of a weight-encoded resample.
pub fn resample_size(weights: &[u32]) -> u64 {
    weights.iter().map(|&w| w as u64).sum()
}

/// Analytic probability that a Poissonized resample of a sample of size
/// `n` has size within `[lo, hi]` (normal approximation with continuity
/// correction; §5.1 quotes ≈0.9999994 for n = 10,000 and ±5%).
pub fn poissonized_size_probability(n: usize, lo: u64, hi: u64) -> f64 {
    let mu = n as f64;
    let sigma = (n as f64).sqrt();
    let phi = |x: f64| crate::dist::normal_cdf(x);
    phi((hi as f64 + 0.5 - mu) / sigma) - phi((lo as f64 - 0.5 - mu) / sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn poisson_weights_have_unit_mean() {
        let mut rng = rng_from_seed(1);
        let w = poisson_weights(&mut rng, 100_000);
        let mean = resample_size(&w) as f64 / w.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean weight {mean}");
    }

    #[test]
    fn poissonized_size_concentrates() {
        // §5.1: for |S| = 10,000, P(size ∈ [9500, 10500]) ≈ 0.9999994.
        let p = poissonized_size_probability(10_000, 9_500, 10_500);
        assert!(p > 0.999_999 && p <= 1.0, "p = {p}");
        // Empirically, sizes should stay within ±5% across many resamples.
        let mut rng = rng_from_seed(2);
        for _ in 0..200 {
            let w = poisson_weights(&mut rng, 10_000);
            let s = resample_size(&w);
            assert!((9_500..=10_500).contains(&s), "resample size {s}");
        }
    }

    #[test]
    fn exact_resample_sums_to_n() {
        let mut rng = rng_from_seed(3);
        for n in [1usize, 10, 1000] {
            let counts = exact_resample_counts(&mut rng, n);
            assert_eq!(resample_size(&counts), n as u64);
            assert_eq!(counts.len(), n);
        }
    }

    #[test]
    fn weight_matrix_shape_and_independence() {
        let mut rng = rng_from_seed(4);
        let m = poisson_weight_matrix(&mut rng, 5, 1000);
        assert_eq!(m.len(), 5);
        assert!(m.iter().all(|row| row.len() == 1000));
        // Different resamples differ (independence smoke test).
        assert_ne!(m[0], m[1]);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let a = poisson_weights(&mut rng_from_seed(9), 100);
        let b = poisson_weights(&mut rng_from_seed(9), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn size_probability_monotone_in_width() {
        let narrow = poissonized_size_probability(10_000, 9_900, 10_100);
        let wide = poissonized_size_probability(10_000, 9_000, 11_000);
        assert!(narrow < wide);
        assert!(narrow > 0.5); // ±1% is already the ±1σ band
    }
}

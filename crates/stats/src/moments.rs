//! Streaming moments (Welford) and weighted variants.
//!
//! These accumulators power both the closed-form variance estimates (§2.3.2)
//! and the weighted aggregate operators the engine uses after scan
//! consolidation (§5.3.1), where each tuple carries a Poisson resample
//! weight instead of being physically duplicated.

use serde::{Deserialize, Serialize};

/// Single-pass accumulator for count, mean, variance, min, max, and the
/// fourth central moment (needed for the closed-form variance-of-variance).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Accumulate one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0)
            + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Accumulate a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Build from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Moments::new();
        m.extend(xs);
        m
    }

    /// Merge another accumulator into this one (parallel reduction; the
    /// standard pairwise update of Chan et al., extended to m3/m4).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;

        self.mean = (na * self.mean + nb * other.mean) / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; NaN when empty).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n-1; NaN when n < 2).
    pub fn variance_sample(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev_sample(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// Fourth central moment (population normalization).
    pub fn fourth_central_moment(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m4 / self.n as f64
        }
    }

    /// Minimum (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Weighted accumulator where each observation carries an integer
/// resample weight (the Poissonized multiplicity of §5.1). Equivalent to
/// pushing the observation `w` times into [`Moments`], but O(1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WeightedMoments {
    w_sum: u64,
    mean: f64,
    m2: f64,
    sum: f64,
    min: f64,
    max: f64,
}

impl WeightedMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        WeightedMoments {
            w_sum: 0,
            mean: 0.0,
            m2: 0.0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulate `x` with integer weight `w` (weight 0 is a no-op except
    /// that it never affects min/max — matching "the row does not appear
    /// in this resample").
    #[inline]
    pub fn push(&mut self, x: f64, w: u32) {
        if w == 0 {
            return;
        }
        let w = w as u64;
        let new_w = self.w_sum + w;
        let delta = x - self.mean;
        let r = delta * (w as f64) / new_w as f64;
        self.mean += r;
        self.m2 += self.w_sum as f64 * delta * r;
        self.w_sum = new_w;
        self.sum += x * w as f64;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Total weight (the resample's effective row count).
    pub fn weight(&self) -> u64 {
        self.w_sum
    }

    /// Weighted sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Weighted mean (NaN when total weight is 0).
    pub fn mean(&self) -> f64 {
        if self.w_sum == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Weighted population variance.
    pub fn variance_population(&self) -> f64 {
        if self.w_sum == 0 {
            f64::NAN
        } else {
            self.m2 / self.w_sum as f64
        }
    }

    /// Weighted "sample" variance with the frequency-weights correction
    /// (divides by total weight − 1).
    pub fn variance_sample(&self) -> f64 {
        if self.w_sum < 2 {
            f64::NAN
        } else {
            self.m2 / (self.w_sum - 1) as f64
        }
    }

    /// Minimum over rows with positive weight.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum over rows with positive weight.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &WeightedMoments) {
        if other.w_sum == 0 {
            // still account for min/max of zero-weight accs? No: empty.
            return;
        }
        if self.w_sum == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.w_sum as f64, other.w_sum as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.mean = (na * self.mean + nb * other.mean) / n;
        self.w_sum += other.w_sum;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn basic_moments() {
        let m = Moments::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count(), 8);
        assert_close(m.mean(), 5.0, 1e-12);
        assert_close(m.variance_population(), 4.0, 1e-12);
        assert_close(m.variance_sample(), 32.0 / 7.0, 1e-12);
        assert_close(m.min(), 2.0, 0.0);
        assert_close(m.max(), 9.0, 0.0);
        assert_close(m.sum(), 40.0, 1e-12);
    }

    #[test]
    fn empty_moments_are_nan() {
        let m = Moments::new();
        assert!(m.mean().is_nan());
        assert!(m.variance_population().is_nan());
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn fourth_moment_matches_direct_computation() {
        let xs = [1.0, 2.0, 2.5, 3.0, 10.0, -4.0, 0.5];
        let m = Moments::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mu4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / xs.len() as f64;
        assert_close(m.fourth_central_moment(), mu4, 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64 - 5.0).collect();
        let full = Moments::from_slice(&xs);
        let mut a = Moments::from_slice(&xs[..33]);
        let b = Moments::from_slice(&xs[33..]);
        a.merge(&b);
        assert_eq!(a.count(), full.count());
        assert_close(a.mean(), full.mean(), 1e-12);
        assert_close(a.variance_population(), full.variance_population(), 1e-9);
        assert_close(a.fourth_central_moment(), full.fourth_central_moment(), 1e-7);
        assert_close(a.min(), full.min(), 0.0);
        assert_close(a.max(), full.max(), 0.0);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Moments::new();
        let b = Moments::from_slice(&[1.0, 2.0]);
        a.merge(&b);
        assert_close(a.mean(), 1.5, 1e-12);
        let mut c = Moments::from_slice(&[1.0, 2.0]);
        c.merge(&Moments::new());
        assert_close(c.mean(), 1.5, 1e-12);
    }

    #[test]
    fn weighted_equals_duplicated() {
        let xs = [3.0, -1.0, 4.0, 1.0, 5.0];
        let ws = [2u32, 0, 1, 3, 1];
        let mut w = WeightedMoments::new();
        let mut dup = Moments::new();
        for (&x, &wt) in xs.iter().zip(&ws) {
            w.push(x, wt);
            for _ in 0..wt {
                dup.push(x);
            }
        }
        assert_eq!(w.weight(), dup.count());
        assert_close(w.mean(), dup.mean(), 1e-12);
        assert_close(w.variance_population(), dup.variance_population(), 1e-9);
        assert_close(w.sum(), dup.sum(), 1e-12);
    }

    #[test]
    fn weighted_zero_weight_rows_invisible() {
        let mut w = WeightedMoments::new();
        w.push(100.0, 0); // not in the resample
        w.push(1.0, 1);
        assert_eq!(w.weight(), 1);
        assert_close(w.mean(), 1.0, 1e-12);
        assert_close(w.max(), 1.0, 0.0);
    }

    #[test]
    fn weighted_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let ws: Vec<u32> = (0..50).map(|i| (i % 3) as u32).collect();
        let mut full = WeightedMoments::new();
        for (&x, &w) in xs.iter().zip(&ws) {
            full.push(x, w);
        }
        let mut a = WeightedMoments::new();
        let mut b = WeightedMoments::new();
        for i in 0..20 {
            a.push(xs[i], ws[i]);
        }
        for i in 20..50 {
            b.push(xs[i], ws[i]);
        }
        a.merge(&b);
        assert_eq!(a.weight(), full.weight());
        assert_close(a.mean(), full.mean(), 1e-12);
        assert_close(a.variance_population(), full.variance_population(), 1e-9);
    }
}

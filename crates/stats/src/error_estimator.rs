//! The unified error-estimation interface ξ.
//!
//! §4.1: the diagnostic "can be applied in principle to any error
//! estimation procedure, including closed-form CLT-based error estimation,
//! simply by plugging in such procedures for ξ". This module is that plug:
//! a procedure that, given a sample, a query θ, and a coverage level α,
//! produces a confidence-interval estimate — or reports that it is not
//! applicable to this θ.

use serde::{Deserialize, Serialize};

use crate::bootstrap::bootstrap_ci;
use crate::jackknife::jackknife_ci;
use crate::ci::Ci;
use crate::closed_form::closed_form_ci;
use crate::estimator::{Aggregate, QueryEstimator, SampleContext};
use crate::large_deviation::{large_deviation_ci, Inequality, RangeHint};
use crate::rng::Rng as StdRng;

/// A θ that an [`EstimationMethod`] can be asked about: either a built-in
/// aggregate (closed forms may apply) or an opaque estimator (bootstrap
/// only).
pub enum Theta<'a> {
    /// A built-in SQL aggregate.
    Builtin(Aggregate),
    /// An opaque estimator (UDF, nested query, multi-aggregate
    /// expression, …).
    Opaque(&'a dyn QueryEstimator),
}

impl Theta<'_> {
    /// View as a `QueryEstimator`.
    pub fn as_estimator(&self) -> &dyn QueryEstimator {
        match self {
            Theta::Builtin(a) => a,
            Theta::Opaque(e) => *e,
        }
    }

    /// The built-in aggregate, when this θ is one.
    pub fn builtin(&self) -> Option<Aggregate> {
        match self {
            Theta::Builtin(a) => Some(*a),
            Theta::Opaque(_) => None,
        }
    }
}

/// An error-estimation procedure ξ.
pub trait ErrorEstimator: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> String;

    /// Whether this procedure can produce intervals for `theta` at all.
    fn applicable(&self, theta: &Theta<'_>) -> bool;

    /// Estimate a symmetric centered CI at coverage `alpha`, or `None`
    /// when the procedure is not applicable or degenerate on this input.
    fn confidence_interval(
        &self,
        rng: &mut StdRng,
        values: &[f64],
        ctx: &SampleContext,
        theta: &Theta<'_>,
        alpha: f64,
    ) -> Option<Ci>;
}

/// The three estimation techniques the paper evaluates, as one enum for
/// easy configuration/serialization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimationMethod {
    /// Nonparametric bootstrap with `k` Poissonized resamples.
    Bootstrap {
        /// Number of resamples K (the paper's default is 100).
        k: usize,
    },
    /// Closed-form CLT estimate (COUNT/SUM/AVG/VARIANCE/STDEV only).
    ClosedForm,
    /// Large-deviation bound with a precomputed range hint.
    LargeDeviation {
        /// Which inequality.
        inequality: Inequality,
        /// Precomputed population value range.
        range: RangeHint,
    },
    /// Delete-d grouped jackknife with `g` blocks — applicable to any θ
    /// (like the bootstrap), but with a different failure envelope
    /// (inconsistent for quantiles/extremes even where the bootstrap
    /// holds). Exists to demonstrate §4.1's "plug in any ξ".
    Jackknife {
        /// Number of leave-out blocks g.
        g: usize,
    },
}

impl ErrorEstimator for EstimationMethod {
    fn name(&self) -> String {
        match self {
            EstimationMethod::Bootstrap { k } => format!("bootstrap(k={k})"),
            EstimationMethod::ClosedForm => "closed-form".into(),
            EstimationMethod::LargeDeviation { inequality, .. } => {
                format!("large-deviation({inequality:?})")
            }
            EstimationMethod::Jackknife { g } => format!("jackknife(g={g})"),
        }
    }

    fn applicable(&self, theta: &Theta<'_>) -> bool {
        match self {
            // "All aggregates are amenable to the bootstrap" (§3).
            EstimationMethod::Bootstrap { .. } => true,
            EstimationMethod::ClosedForm => theta
                .builtin()
                .map(|a| a.closed_form_applicable())
                .unwrap_or(false),
            EstimationMethod::LargeDeviation { .. } => matches!(
                theta.builtin(),
                Some(Aggregate::Avg | Aggregate::Sum | Aggregate::Count)
            ),
            // Like the bootstrap, the jackknife evaluates any θ.
            EstimationMethod::Jackknife { .. } => true,
        }
    }

    fn confidence_interval(
        &self,
        rng: &mut StdRng,
        values: &[f64],
        ctx: &SampleContext,
        theta: &Theta<'_>,
        alpha: f64,
    ) -> Option<Ci> {
        if !self.applicable(theta) {
            return None;
        }
        match self {
            EstimationMethod::Bootstrap { k } => {
                bootstrap_ci(rng, values, ctx, theta.as_estimator(), *k, alpha)
            }
            EstimationMethod::ClosedForm => {
                let agg = theta.builtin()?;
                closed_form_ci(&agg, values, ctx, alpha)
            }
            EstimationMethod::LargeDeviation { inequality, range } => {
                let agg = theta.builtin()?;
                large_deviation_ci(&agg, values, ctx, *range, *inequality, alpha)
            }
            EstimationMethod::Jackknife { g } => {
                jackknife_ci(values, ctx, theta.as_estimator(), *g, alpha)
            }
        }
    }
}

/// Convenience: a sensible default bootstrap configuration.
pub fn default_bootstrap() -> EstimationMethod {
    EstimationMethod::Bootstrap { k: crate::bootstrap::DEFAULT_REPLICATES }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::udfs;
    use crate::rng::rng_from_seed;

    #[test]
    fn applicability_matrix() {
        let boot = default_bootstrap();
        let cf = EstimationMethod::ClosedForm;
        let ld = EstimationMethod::LargeDeviation {
            inequality: Inequality::Hoeffding,
            range: RangeHint::new(0.0, 1.0),
        };
        let udf = udfs::geometric_mean();
        let cases: Vec<(Theta, bool, bool, bool)> = vec![
            (Theta::Builtin(Aggregate::Avg), true, true, true),
            (Theta::Builtin(Aggregate::Sum), true, true, true),
            (Theta::Builtin(Aggregate::Count), true, true, true),
            (Theta::Builtin(Aggregate::Variance), true, true, false),
            (Theta::Builtin(Aggregate::Min), true, false, false),
            (Theta::Builtin(Aggregate::Max), true, false, false),
            (Theta::Builtin(Aggregate::Percentile(0.9)), true, false, false),
            (Theta::Opaque(&udf), true, false, false),
        ];
        for (theta, b, c, l) in &cases {
            assert_eq!(boot.applicable(theta), *b, "{} bootstrap", theta.as_estimator().name());
            assert_eq!(cf.applicable(theta), *c, "{} closed-form", theta.as_estimator().name());
            assert_eq!(ld.applicable(theta), *l, "{} large-dev", theta.as_estimator().name());
        }
    }

    #[test]
    fn bootstrap_and_closed_form_agree_on_avg() {
        // On well-behaved data the two estimates should be close (both
        // approximate the same sampling distribution).
        let mut rng = rng_from_seed(1);
        let values: Vec<f64> = (0..2000).map(|i| ((i * 37) % 100) as f64).collect();
        let ctx = SampleContext::new(2000, 1_000_000);
        let theta = Theta::Builtin(Aggregate::Avg);
        let boot = EstimationMethod::Bootstrap { k: 300 }
            .confidence_interval(&mut rng, &values, &ctx, &theta, 0.95)
            .unwrap();
        let cf = EstimationMethod::ClosedForm
            .confidence_interval(&mut rng, &values, &ctx, &theta, 0.95)
            .unwrap();
        let rel = (boot.half_width - cf.half_width).abs() / cf.half_width;
        assert!(rel < 0.25, "bootstrap {} vs closed-form {}", boot.half_width, cf.half_width);
    }

    #[test]
    fn inapplicable_returns_none() {
        let mut rng = rng_from_seed(2);
        let values = vec![1.0, 2.0, 3.0];
        let ctx = SampleContext::new(3, 3);
        let theta = Theta::Builtin(Aggregate::Max);
        assert!(EstimationMethod::ClosedForm
            .confidence_interval(&mut rng, &values, &ctx, &theta, 0.95)
            .is_none());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            default_bootstrap().name(),
            EstimationMethod::ClosedForm.name(),
            EstimationMethod::LargeDeviation {
                inequality: Inequality::Hoeffding,
                range: RangeHint::new(0.0, 1.0),
            }
            .name(),
        ];
        assert_eq!(names.iter().collect::<std::collections::HashSet<_>>().len(), 3);
    }
}

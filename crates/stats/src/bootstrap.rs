//! Efron's nonparametric bootstrap over Poissonized resamples (§2.3.1).
//!
//! Given a sample S and a query θ, the bootstrap estimates the sampling
//! distribution Dist(θ(S)) by computing θ on K resamples of S and returns
//! the symmetric centered confidence interval around θ(S) covering α of
//! the replicate distribution.

use std::sync::OnceLock;

use rand::Rng;

use crate::ci::{ci_from_draws, Ci};
use crate::dist::Poisson1;
use crate::estimator::{QueryEstimator, SampleContext};

/// Default number of bootstrap resamples (the paper uses K = 100 and notes
/// it "can be tuned automatically").
pub const DEFAULT_REPLICATES: usize = 100;

/// Count resamples drawn on the global metrics registry
/// (`aqp.stats.bootstrap_resamples`). The handle is cached so the hot
/// path pays one atomic add, no registry lock.
pub fn count_resamples(k: usize) {
    static C: OnceLock<aqp_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        aqp_obs::MetricsRegistry::global().counter(aqp_obs::name::STATS_BOOTSTRAP_RESAMPLES)
    })
    .add(k as u64);
}

/// Compute `k` bootstrap replicate estimates θ(S₁), …, θ(S_k) of `theta`
/// on `values` using Poissonized resampling.
///
/// Weight vectors are regenerated per replicate in a single streaming
/// buffer — O(n) scratch regardless of k, matching §5.1's "no extra
/// memory if each tuple is immediately pipelined".
pub fn bootstrap_replicates<R: Rng>(
    rng: &mut R,
    values: &[f64],
    ctx: &SampleContext,
    theta: &dyn QueryEstimator,
    k: usize,
) -> Vec<f64> {
    count_resamples(k);
    let p1 = Poisson1::new();
    let mut weights = vec![0u32; values.len()];
    (0..k)
        .map(|_| {
            p1.fill(rng, &mut weights);
            theta.estimate_weighted(values, &weights, ctx)
        })
        .collect()
}

/// The bootstrap confidence interval: θ(S) centered, half-width covering
/// `alpha` of the replicate distribution.
///
/// Replicates that evaluate to NaN (e.g. an empty resample hitting AVG)
/// are dropped; if all replicates are NaN the result is `None`.
pub fn bootstrap_ci<R: Rng>(
    rng: &mut R,
    values: &[f64],
    ctx: &SampleContext,
    theta: &dyn QueryEstimator,
    k: usize,
    alpha: f64,
) -> Option<Ci> {
    let center = theta.estimate(values, ctx);
    if center.is_nan() {
        return None;
    }
    let replicates: Vec<f64> = bootstrap_replicates(rng, values, ctx, theta, k)
        .into_iter()
        .filter(|r| !r.is_nan())
        .collect();
    if replicates.is_empty() {
        return None;
    }
    Some(ci_from_draws(center, &replicates, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::sample_normal;
    use crate::estimator::Aggregate;
    use crate::rng::rng_from_seed;

    #[test]
    fn bootstrap_se_matches_clt_for_avg() {
        // For AVG of iid data, bootstrap SE should approximate s/√n, so the
        // 95% half-width should be near 1.96·s/√n.
        let mut rng = rng_from_seed(1);
        let n = 2_000;
        let values: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 10.0, 3.0)).collect();
        let ctx = SampleContext::new(n, 1_000_000);
        let ci = bootstrap_ci(&mut rng, &values, &ctx, &Aggregate::Avg, 200, 0.95).unwrap();
        let clt_hw = 1.96 * 3.0 / (n as f64).sqrt();
        assert!(
            (ci.half_width - clt_hw).abs() / clt_hw < 0.25,
            "bootstrap hw {} vs CLT {}",
            ci.half_width,
            clt_hw
        );
        assert!((ci.center - 10.0).abs() < 0.3);
    }

    #[test]
    fn replicate_count_respected() {
        let mut rng = rng_from_seed(2);
        let values = vec![1.0; 100];
        let ctx = SampleContext::new(100, 1000);
        let reps = bootstrap_replicates(&mut rng, &values, &ctx, &Aggregate::Avg, 37);
        assert_eq!(reps.len(), 37);
        // AVG of constant data is constant in every non-empty resample.
        assert!(reps.iter().all(|&r| r == 1.0 || r.is_nan()));
    }

    #[test]
    fn filtered_count_replicates_vary_and_match_binomial_sd() {
        let mut rng = rng_from_seed(3);
        // 1000 of 10,000 sample rows pass the filter (q = 0.1).
        let values = vec![1.0; 1000];
        let ctx = SampleContext::new(10_000, 100_000);
        let reps = bootstrap_replicates(&mut rng, &values, &ctx, &Aggregate::Count, 400);
        let mean = reps.iter().sum::<f64>() / reps.len() as f64;
        assert!((mean - 10_000.0).abs() < 150.0, "mean {mean}");
        let var = reps.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / reps.len() as f64;
        // Binomial truth: sd = scale·sqrt(n·q(1−q)) = 10·30 = 300.
        let sd = var.sqrt();
        assert!((sd - 300.0).abs() < 60.0, "sd {sd} (binomial target 300)");
    }

    #[test]
    fn unfiltered_count_replicates_are_constant() {
        // Sampling n rows always yields n rows: COUNT(*) with no filter
        // has zero sampling error, and the size-centered statistic agrees.
        let mut rng = rng_from_seed(4);
        let values = vec![1.0; 1000];
        let ctx = SampleContext::new(1000, 10_000);
        let reps = bootstrap_replicates(&mut rng, &values, &ctx, &Aggregate::Count, 50);
        assert!(reps.iter().all(|&r| (r - 10_000.0).abs() < 1e-9), "{reps:?}");
    }

    #[test]
    fn empty_values_give_none_for_avg() {
        let mut rng = rng_from_seed(5);
        let ctx = SampleContext::new(0, 100);
        assert!(bootstrap_ci(&mut rng, &[], &ctx, &Aggregate::Avg, 10, 0.95).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let values: Vec<f64> = (0..500).map(|i| (i % 13) as f64).collect();
        let ctx = SampleContext::new(500, 5000);
        let a = bootstrap_ci(&mut rng_from_seed(7), &values, &ctx, &Aggregate::Sum, 100, 0.95);
        let b = bootstrap_ci(&mut rng_from_seed(7), &values, &ctx, &Aggregate::Sum, 100, 0.95);
        assert_eq!(a, b);
    }

    #[test]
    fn wider_alpha_wider_interval() {
        let mut rng = rng_from_seed(8);
        let values: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let ctx = SampleContext::new(1000, 100_000);
        let ci90 =
            bootstrap_ci(&mut rng_from_seed(9), &values, &ctx, &Aggregate::Avg, 200, 0.90).unwrap();
        let ci99 =
            bootstrap_ci(&mut rng_from_seed(9), &values, &ctx, &Aggregate::Avg, 200, 0.99).unwrap();
        assert!(ci99.half_width >= ci90.half_width);
        let _ = &mut rng;
    }
}

//! Large-deviation-bound error estimation (§2.3.3).
//!
//! Hoeffding- and Bernstein-style bounds on the tails of the sampling
//! distribution. These require a precomputed "sensitivity" quantity — the
//! population value range `[a, b]` — and make a worst-case assumption
//! about outliers, so coverage never falls below α but intervals are
//! typically 1–2 orders of magnitude wider than the truth (Fig. 1).
//! Like closed forms, they only exist for mean-like aggregates.

use serde::{Deserialize, Serialize};

use crate::ci::Ci;
use crate::estimator::{Aggregate, QueryEstimator, SampleContext};

/// The precomputed population value range the bounds need ("must be
/// precomputed for every θ and … requires difficult manual analysis").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeHint {
    /// Smallest possible value of the aggregated expression over D.
    pub min: f64,
    /// Largest possible value.
    pub max: f64,
}

impl RangeHint {
    /// Construct a range hint (min ≤ max required).
    pub fn new(min: f64, max: f64) -> Self {
        assert!(min <= max, "RangeHint requires min <= max");
        RangeHint { min, max }
    }

    /// The width b − a.
    pub fn width(&self) -> f64 {
        self.max - self.min
    }

    /// The range of the per-sample-row contribution yᵢ = xᵢ·1(filter),
    /// which includes 0 whenever any row can be filtered out.
    pub fn including_zero(&self) -> RangeHint {
        RangeHint { min: self.min.min(0.0), max: self.max.max(0.0) }
    }
}

/// Hoeffding half-width for the mean of `m` iid observations bounded in
/// `range`, at confidence `alpha`:
/// `t = (b − a) · sqrt(ln(2/(1−α)) / (2m))`.
pub fn hoeffding_mean_half_width(range: RangeHint, m: usize, alpha: f64) -> f64 {
    assert!(m > 0);
    assert!((0.0..1.0).contains(&alpha));
    let delta = 1.0 - alpha;
    range.width() * ((2.0 / delta).ln() / (2.0 * m as f64)).sqrt()
}

/// Bernstein half-width for the mean: uses an (empirical) variance proxy
/// so it tightens on low-variance data while retaining the worst-case
/// range term: `t = sqrt(2σ²ln(2/δ)/m) + (b−a)·ln(2/δ)/(3m)` (empirical
/// Bernstein form, Maurer & Pontil).
pub fn bernstein_mean_half_width(range: RangeHint, variance: f64, m: usize, alpha: f64) -> f64 {
    assert!(m > 0);
    let delta = 1.0 - alpha;
    let l = (2.0 / delta).ln();
    (2.0 * variance.max(0.0) * l / m as f64).sqrt() + range.width() * l / (3.0 * m as f64)
}

/// Which large-deviation inequality to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Inequality {
    /// Hoeffding's inequality (range only).
    Hoeffding,
    /// Empirical Bernstein (range + sample variance).
    Bernstein,
}

/// Large-deviation confidence interval for `agg` on `values` under `ctx`.
///
/// Applicable to AVG, SUM, COUNT (mean-type); returns `None` otherwise —
/// MIN/MAX/percentiles/UDFs have no bounded-differences formulation in
/// the systems the paper surveys (Aqua, OLA).
pub fn large_deviation_ci(
    agg: &Aggregate,
    values: &[f64],
    ctx: &SampleContext,
    range: RangeHint,
    ineq: Inequality,
    alpha: f64,
) -> Option<Ci> {
    let n = ctx.sample_rows;
    if n == 0 {
        return None;
    }
    let center = agg.estimate(values, ctx);
    let var_y = || {
        // Variance of the per-sample-row contribution y (zeros included).
        let sum: f64 = values.iter().sum();
        let sum_sq: f64 = values.iter().map(|x| x * x).sum();
        let mean_y = sum / n as f64;
        (sum_sq / n as f64 - mean_y * mean_y).max(0.0)
    };
    let hw = match agg {
        Aggregate::Avg => {
            let m = values.len();
            if m == 0 {
                return None;
            }
            match ineq {
                Inequality::Hoeffding => hoeffding_mean_half_width(range, m, alpha),
                Inequality::Bernstein => {
                    let mom = crate::moments::Moments::from_slice(values);
                    bernstein_mean_half_width(range, mom.variance_population(), m, alpha)
                }
            }
        }
        Aggregate::Sum => {
            // Estimator is N · mean(y); y ranges over range ∪ {0}.
            let r = range.including_zero();
            let hw_mean = match ineq {
                Inequality::Hoeffding => hoeffding_mean_half_width(r, n, alpha),
                Inequality::Bernstein => bernstein_mean_half_width(r, var_y(), n, alpha),
            };
            ctx.population_rows as f64 * hw_mean
        }
        Aggregate::Count => {
            // Estimator is N · mean(1(pass)); indicator ranges over [0,1].
            let r = RangeHint::new(0.0, 1.0);
            let q = values.len() as f64 / n as f64;
            let hw_mean = match ineq {
                Inequality::Hoeffding => hoeffding_mean_half_width(r, n, alpha),
                Inequality::Bernstein => {
                    bernstein_mean_half_width(r, q * (1.0 - q), n, alpha)
                }
            };
            ctx.population_rows as f64 * hw_mean
        }
        _ => return None,
    };
    if center.is_nan() {
        return None;
    }
    Some(Ci::new(center, hw, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::closed_form_ci;
    use crate::dist::sample_normal;
    use crate::rng::rng_from_seed;

    #[test]
    fn hoeffding_shrinks_with_m_like_inverse_sqrt() {
        let r = RangeHint::new(0.0, 1.0);
        let h100 = hoeffding_mean_half_width(r, 100, 0.95);
        let h10000 = hoeffding_mean_half_width(r, 10_000, 0.95);
        assert!((h100 / h10000 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn hoeffding_much_wider_than_clt_on_well_behaved_data() {
        // Fig. 1's headline: Hoeffding needs samples 1–2 orders of magnitude
        // larger, i.e. its intervals are ~an order of magnitude wider at
        // fixed n when the data's spread is far from the worst case.
        let mut rng = rng_from_seed(1);
        let n = 10_000;
        let values: Vec<f64> = (0..n)
            .map(|_| sample_normal(&mut rng, 500.0, 10.0).clamp(0.0, 1000.0))
            .collect();
        let ctx = SampleContext::new(n, 1_000_000);
        let range = RangeHint::new(0.0, 1000.0);
        let hoeff =
            large_deviation_ci(&Aggregate::Avg, &values, &ctx, range, Inequality::Hoeffding, 0.95)
                .unwrap();
        let clt = closed_form_ci(&Aggregate::Avg, &values, &ctx, 0.95).unwrap();
        assert!(
            hoeff.half_width > 5.0 * clt.half_width,
            "hoeffding {} vs clt {}",
            hoeff.half_width,
            clt.half_width
        );
    }

    #[test]
    fn bernstein_tighter_than_hoeffding_on_low_variance() {
        let r = RangeHint::new(0.0, 1000.0);
        let bern = bernstein_mean_half_width(r, 100.0, 10_000, 0.95); // σ=10
        let hoeff = hoeffding_mean_half_width(r, 10_000, 0.95);
        assert!(bern < hoeff, "bernstein {bern} vs hoeffding {hoeff}");
    }

    #[test]
    fn coverage_is_conservative() {
        // Hoeffding 95% intervals should cover the true mean essentially
        // always (coverage ≫ 95%), demonstrating §2.3.3's conservatism.
        let mut covered = 0;
        let runs = 200;
        for run in 0..runs {
            let mut rng = rng_from_seed(2000 + run);
            let n = 200;
            let values: Vec<f64> = (0..n)
                .map(|_| sample_normal(&mut rng, 0.5, 0.1).clamp(0.0, 1.0))
                .collect();
            let ctx = SampleContext::new(n, 100_000);
            let ci = large_deviation_ci(
                &Aggregate::Avg,
                &values,
                &ctx,
                RangeHint::new(0.0, 1.0),
                Inequality::Hoeffding,
                0.95,
            )
            .unwrap();
            if ci.contains(0.5) {
                covered += 1;
            }
        }
        assert_eq!(covered, runs, "Hoeffding missed the mean {}/{runs}", runs - covered);
    }

    #[test]
    fn sum_and_count_scale_with_population() {
        let values = vec![1.0; 500];
        let ctx = SampleContext::new(1000, 1_000_000);
        let r = RangeHint::new(0.0, 2.0);
        let sum_ci =
            large_deviation_ci(&Aggregate::Sum, &values, &ctx, r, Inequality::Hoeffding, 0.95)
                .unwrap();
        let count_ci =
            large_deviation_ci(&Aggregate::Count, &values, &ctx, r, Inequality::Hoeffding, 0.95)
                .unwrap();
        assert!(sum_ci.half_width > 0.0 && count_ci.half_width > 0.0);
        // Doubling the population doubles both half-widths.
        let ctx2 = SampleContext::new(1000, 2_000_000);
        let sum_ci2 =
            large_deviation_ci(&Aggregate::Sum, &values, &ctx2, r, Inequality::Hoeffding, 0.95)
                .unwrap();
        assert!((sum_ci2.half_width / sum_ci.half_width - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inapplicable_aggregates_return_none() {
        let values = vec![1.0, 2.0];
        let ctx = SampleContext::new(2, 10);
        let r = RangeHint::new(0.0, 10.0);
        for agg in [Aggregate::Min, Aggregate::Max, Aggregate::Percentile(0.9), Aggregate::Variance]
        {
            assert!(
                large_deviation_ci(&agg, &values, &ctx, r, Inequality::Hoeffding, 0.95).is_none(),
                "{agg} should have no large-deviation bound"
            );
        }
    }

    #[test]
    #[should_panic]
    fn range_hint_rejects_inverted() {
        RangeHint::new(1.0, 0.0);
    }
}

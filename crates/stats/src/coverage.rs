//! Empirical coverage measurement.
//!
//! §2.2: "A procedure is said to generate confidence intervals with a
//! specified coverage α ∈ \[0, 1\] if, on a proportion exactly α of the
//! possible samples S, the procedure generates an interval that includes
//! θ(D)." Coverage alone cannot rank procedures (the paper's
//! (−∞, ∞)-vs-∅ example), which is why the evaluation uses the symmetric
//! width metric δ — but coverage remains the user-facing guarantee, so we
//! measure it too: under-coverage is how optimistic intervals actually
//! hurt users.

use serde::{Deserialize, Serialize};

use crate::error_estimator::{ErrorEstimator, Theta};
use crate::estimator::SampleContext;
use crate::rng::SeedStream;
use crate::sampling::{gather, with_replacement_indices};

/// Result of a coverage experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Target coverage α.
    pub target: f64,
    /// Fraction of runs whose interval contained θ(D).
    pub empirical: f64,
    /// Mean interval half-width across runs.
    pub mean_half_width: f64,
    /// Runs where ξ produced no interval.
    pub degenerate: usize,
    /// Total runs.
    pub runs: usize,
}

impl CoverageReport {
    /// Standard error of the empirical coverage (binomial).
    pub fn std_error(&self) -> f64 {
        let n = (self.runs - self.degenerate).max(1) as f64;
        (self.empirical * (1.0 - self.empirical) / n).sqrt()
    }

    /// Whether empirical coverage is consistent with the target within
    /// `z` standard errors.
    pub fn is_consistent(&self, z: f64) -> bool {
        (self.empirical - self.target).abs() <= z * self.std_error().max(1e-9)
    }
}

/// Measure the empirical coverage of `xi`'s intervals for θ over
/// `population` at sample size `sample_rows`.
pub fn measure_coverage(
    population: &[f64],
    theta: &Theta<'_>,
    xi: &dyn ErrorEstimator,
    sample_rows: usize,
    alpha: f64,
    runs: usize,
    seeds: SeedStream,
) -> CoverageReport {
    let est = theta.as_estimator();
    let theta_d = est.estimate(population, &SampleContext::population(population.len()));
    let ctx = SampleContext::new(sample_rows, population.len());
    let mut covered = 0usize;
    let mut degenerate = 0usize;
    let mut hw_sum = 0.0;
    for r in 0..runs {
        let mut srng = seeds.rng(r as u64 * 2);
        let mut xrng = seeds.rng(r as u64 * 2 + 1);
        let idx = with_replacement_indices(&mut srng, sample_rows, population.len());
        let sample = gather(population, &idx);
        match xi.confidence_interval(&mut xrng, &sample, &ctx, theta, alpha) {
            Some(ci) if ci.half_width.is_finite() => {
                if ci.contains(theta_d) {
                    covered += 1;
                }
                hw_sum += ci.half_width;
            }
            _ => degenerate += 1,
        }
    }
    let effective = (runs - degenerate).max(1);
    CoverageReport {
        target: alpha,
        empirical: covered as f64 / effective as f64,
        mean_half_width: hw_sum / effective as f64,
        degenerate,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample_lognormal, sample_pareto};
    use crate::error_estimator::EstimationMethod;
    use crate::estimator::Aggregate;
    use crate::large_deviation::{Inequality, RangeHint};
    use crate::rng::rng_from_seed;

    fn pop(seed: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(seed);
        (0..200_000).map(|_| sample_lognormal(&mut rng, 1.0, 0.5)).collect()
    }

    #[test]
    fn closed_form_avg_covers_at_target() {
        let population = pop(1);
        let r = measure_coverage(
            &population,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::ClosedForm,
            5_000,
            0.95,
            300,
            SeedStream::new(2),
        );
        assert!(r.is_consistent(3.5), "coverage {:.3} ± {:.3}", r.empirical, r.std_error());
        assert_eq!(r.degenerate, 0);
    }

    #[test]
    fn bootstrap_avg_covers_near_target() {
        let population = pop(3);
        let r = measure_coverage(
            &population,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::Bootstrap { k: 150 },
            5_000,
            0.95,
            200,
            SeedStream::new(4),
        );
        assert!(r.empirical > 0.88 && r.empirical <= 1.0, "coverage {:.3}", r.empirical);
    }

    #[test]
    fn hoeffding_overcovers() {
        // §2.3.3: "error bars based on large deviation bounds ... never
        // [have] coverage less than α" — and in practice far more.
        let population = pop(5);
        let max = population.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let r = measure_coverage(
            &population,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::LargeDeviation {
                inequality: Inequality::Hoeffding,
                range: RangeHint::new(0.0, max),
            },
            5_000,
            0.95,
            150,
            SeedStream::new(6),
        );
        assert_eq!(r.empirical, 1.0, "Hoeffding must never miss");
        // And its intervals are far wider than the CLT's.
        let cf = measure_coverage(
            &population,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::ClosedForm,
            5_000,
            0.95,
            150,
            SeedStream::new(6),
        );
        assert!(r.mean_half_width > 5.0 * cf.mean_half_width);
    }

    #[test]
    fn bootstrap_max_undercovers_on_heavy_tails() {
        // The §3 failure as users experience it: intervals that miss the
        // truth far more often than 1 − α.
        let mut rng = rng_from_seed(7);
        let population: Vec<f64> =
            (0..200_000).map(|_| sample_pareto(&mut rng, 1.0, 1.2)).collect();
        let r = measure_coverage(
            &population,
            &Theta::Builtin(Aggregate::Max),
            &EstimationMethod::Bootstrap { k: 100 },
            5_000,
            0.95,
            120,
            SeedStream::new(8),
        );
        assert!(r.empirical < 0.7, "MAX bootstrap coverage {:.3} should collapse", r.empirical);
    }

    #[test]
    fn report_arithmetic() {
        let r = CoverageReport {
            target: 0.95,
            empirical: 0.93,
            mean_half_width: 1.0,
            degenerate: 0,
            runs: 100,
        };
        assert!(r.std_error() > 0.0);
        assert!(r.is_consistent(1.0));
        let far = CoverageReport { empirical: 0.5, ..r };
        assert!(!far.is_consistent(3.0));
    }
}

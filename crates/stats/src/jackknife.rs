//! The delete-d (block) jackknife — a third resampling-based error
//! estimator.
//!
//! §4.1's point is that the diagnostic validates *any* procedure ξ, not
//! just the bootstrap. The jackknife is the natural third candidate: it
//! predates the bootstrap, costs `g` re-evaluations of θ on
//! `(g−1)/g`-sized blocks (often cheaper than K = 100 resamples), and has
//! a *different* failure envelope — it is inconsistent for non-smooth
//! statistics like the median even where the bootstrap works, and (like
//! the bootstrap) useless for extreme values. Plugging it into the
//! diagnostic shows the machinery genuinely generalizes.
//!
//! We implement the delete-d grouped jackknife: partition the sample
//! into `g` equal blocks, compute θ on each leave-one-block-out
//! complement, and estimate
//!
//! ```text
//! Var(θ) ≈ (g − 1)/g · Σᵢ (θ₍ᵢ₎ − θ̄)²
//! ```
//!
//! with a normal-approximation interval around θ(S).

use crate::ci::Ci;
use crate::dist::normal_quantile;
use crate::estimator::{QueryEstimator, SampleContext};

/// Default number of jackknife blocks.
pub const DEFAULT_BLOCKS: usize = 50;

/// Leave-one-block-out estimates θ₍₁₎..θ₍g₎.
///
/// The sample is treated as pre-shuffled (as all stored samples are), so
/// contiguous blocks are exchangeable. Blocks sizes differ by at most
/// one row.
pub fn jackknife_replicates(
    values: &[f64],
    ctx: &SampleContext,
    theta: &dyn QueryEstimator,
    blocks: usize,
) -> Vec<f64> {
    let g = blocks.max(2).min(values.len().max(2));
    let n = values.len();
    let mut out = Vec::with_capacity(g);
    let mut scratch = Vec::with_capacity(n);
    // Pre-filter row accounting: leaving out 1/g of the *sample* leaves a
    // (g-1)/g-sized sample.
    let sub_rows = (ctx.sample_rows as f64 * (g as f64 - 1.0) / g as f64).round() as usize;
    let sub_ctx = SampleContext::new(sub_rows.max(1), ctx.population_rows);
    for i in 0..g {
        let lo = i * n / g;
        let hi = (i + 1) * n / g;
        scratch.clear();
        scratch.extend_from_slice(&values[..lo]);
        scratch.extend_from_slice(&values[hi..]);
        out.push(theta.estimate(&scratch, &sub_ctx));
    }
    out
}

/// Jackknife variance of θ(S) from leave-one-block-out estimates.
pub fn jackknife_variance(replicates: &[f64]) -> f64 {
    let finite: Vec<f64> = replicates.iter().copied().filter(|r| r.is_finite()).collect();
    let g = finite.len();
    if g < 2 {
        return f64::NAN;
    }
    let mean = finite.iter().sum::<f64>() / g as f64;
    let ss: f64 = finite.iter().map(|r| (r - mean).powi(2)).sum();
    (g as f64 - 1.0) / g as f64 * ss
}

/// Jackknife confidence interval for θ on this sample.
///
/// Returns `None` when θ is degenerate on the sample or all replicates
/// are non-finite.
pub fn jackknife_ci(
    values: &[f64],
    ctx: &SampleContext,
    theta: &dyn QueryEstimator,
    blocks: usize,
    alpha: f64,
) -> Option<Ci> {
    if values.is_empty() {
        return None;
    }
    let center = theta.estimate(values, ctx);
    if !center.is_finite() {
        return None;
    }
    let var = jackknife_variance(&jackknife_replicates(values, ctx, theta, blocks));
    if !var.is_finite() {
        return None;
    }
    let z = normal_quantile(0.5 + alpha / 2.0);
    Some(Ci::new(center, z * var.sqrt(), alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::closed_form_ci;
    use crate::dist::{sample_lognormal, sample_normal};
    use crate::estimator::Aggregate;
    use crate::rng::rng_from_seed;

    #[test]
    fn jackknife_avg_matches_closed_form() {
        // For AVG, the jackknife variance converges to s²/n — the same
        // quantity the closed form computes.
        let mut rng = rng_from_seed(1);
        let n = 10_000;
        let values: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 5.0, 2.0)).collect();
        let ctx = SampleContext::new(n, 1_000_000);
        let jk = jackknife_ci(&values, &ctx, &Aggregate::Avg, 100, 0.95).unwrap();
        let cf = closed_form_ci(&Aggregate::Avg, &values, &ctx, 0.95).unwrap();
        let rel = (jk.half_width - cf.half_width).abs() / cf.half_width;
        assert!(rel < 0.15, "jackknife {} vs closed-form {}", jk.half_width, cf.half_width);
    }

    #[test]
    fn jackknife_sum_tracks_truth_scale() {
        let mut rng = rng_from_seed(2);
        let n = 5_000;
        let values: Vec<f64> = (0..n).map(|_| sample_lognormal(&mut rng, 1.0, 0.5)).collect();
        let ctx = SampleContext::new(n, 500_000);
        let jk = jackknife_ci(&values, &ctx, &Aggregate::Sum, 50, 0.95).unwrap();
        let cf = closed_form_ci(&Aggregate::Sum, &values, &ctx, 0.95).unwrap();
        let rel = (jk.half_width - cf.half_width).abs() / cf.half_width;
        assert!(rel < 0.25, "jackknife {} vs closed-form {}", jk.half_width, cf.half_width);
    }

    #[test]
    fn jackknife_fails_for_max_as_expected() {
        // Leave-one-block-out barely moves the maximum: the jackknife
        // wildly underestimates MAX's sampling error. (This is the
        // textbook jackknife inconsistency — and exactly the kind of
        // silent failure the diagnostic exists to catch.)
        let mut rng = rng_from_seed(3);
        let n = 5_000;
        let values: Vec<f64> = (0..n).map(|_| sample_lognormal(&mut rng, 1.0, 1.0)).collect();
        let ctx = SampleContext::new(n, 500_000);
        let jk = jackknife_ci(&values, &ctx, &Aggregate::Max, 50, 0.95).unwrap();
        // The true sampling spread of MAX on lognormal data at n = 5000 is
        // comparable to the estimate itself; the jackknife reports ~0.
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(jk.half_width < 0.2 * max, "jackknife MAX hw {}", jk.half_width);
    }

    #[test]
    fn replicate_blocks_are_balanced() {
        let values: Vec<f64> = (0..103).map(|i| i as f64).collect();
        let ctx = SampleContext::population(103);
        let reps = jackknife_replicates(&values, &ctx, &Aggregate::Count, 10);
        assert_eq!(reps.len(), 10);
        // Each complement holds 92-93 of the 103 rows, scaled back up by
        // 103/sub_rows: the unfiltered COUNT estimate is ≈ 103 everywhere.
        for r in &reps {
            assert!((*r - 103.0).abs() < 2.0, "{r}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let ctx = SampleContext::population(0);
        assert!(jackknife_ci(&[], &ctx, &Aggregate::Avg, 10, 0.95).is_none());
        let ctx = SampleContext::population(1);
        // One value: variance undefined → None.
        assert!(jackknife_ci(&[1.0], &ctx, &Aggregate::Avg, 10, 0.95).is_none()
            || !jackknife_ci(&[1.0], &ctx, &Aggregate::Avg, 10, 0.95).unwrap().half_width.is_nan());
    }

    #[test]
    fn variance_of_constant_replicates_is_zero() {
        assert_eq!(jackknife_variance(&[2.0, 2.0, 2.0, 2.0]), 0.0);
        assert!(jackknife_variance(&[1.0]).is_nan());
    }
}

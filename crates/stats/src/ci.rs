//! Symmetric centered confidence intervals, the ground-truth "true
//! confidence interval", and the δ accuracy metric (§2.2).
//!
//! The paper evaluates error-estimation procedures with symmetric centered
//! intervals: an interval `[c - a, c + a]` centered on the point estimate
//! whose half-width `a` is the smallest covering a proportion α of the
//! (estimated or true) sampling distribution. The relative deviation of an
//! estimated width from the true width,
//!
//! ```text
//! δ = (estimated width − true width) / true width
//! ```
//!
//! classifies a run: δ > 0.2 ⇒ the interval is much too wide
//! (*pessimistic*), δ < −0.2 ⇒ much too narrow (*optimistic*).
//!
//! > Note on the sign convention: the paper's §2.2 typesets the ratio with
//! > the operands in the other order, but its §3 prose ("if \[δ\] is often
//! > positive and large, this means our procedure produced confidence
//! > intervals that are too large … we say that the procedure is
//! > pessimistic") fixes the semantics we implement here: positive δ =
//! > too wide = pessimistic, negative δ = too narrow = optimistic.

use serde::{Deserialize, Serialize};

/// A symmetric centered confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ci {
    /// Interval center (the point estimate θ(S)).
    pub center: f64,
    /// Half-width `a ≥ 0`; the interval is `[center − a, center + a]`.
    pub half_width: f64,
    /// Target coverage α in (0, 1).
    pub confidence: f64,
}

impl Ci {
    /// Construct an interval; half-width must be non-negative and finite
    /// unless explicitly infinite (large-deviation bounds can be huge but
    /// are still finite).
    pub fn new(center: f64, half_width: f64, confidence: f64) -> Self {
        debug_assert!(half_width >= 0.0 || half_width.is_nan());
        Ci { center, half_width, confidence }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.center - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.center + self.half_width
    }

    /// Full width (2a).
    pub fn width(&self) -> f64 {
        2.0 * self.half_width
    }

    /// Whether `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Relative error bound `a / |center|` (the "10% error" of BlinkDB's
    /// error-bounded queries); infinite when the center is 0.
    pub fn relative_half_width(&self) -> f64 {
        if self.center == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.center.abs()
        }
    }
}

/// The smallest half-width `a` such that at least a proportion `alpha` of
/// `draws` fall inside `[center − a, center + a]`.
///
/// With `draws` sampled from Dist(θ(S)) and `center = θ(D)` this is the
/// paper's *true confidence interval*; with `draws` the bootstrap replicate
/// distribution and `center = θ(S)` it is the bootstrap's estimate.
pub fn symmetric_half_width(center: f64, draws: &[f64], alpha: f64) -> f64 {
    assert!(!draws.is_empty(), "need at least one draw");
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
    let mut dev: Vec<f64> = draws.iter().map(|&d| (d - center).abs()).collect();
    dev.sort_by(f64::total_cmp);
    // ceil(alpha * K) draws must be covered; index is that count - 1.
    let k = ((alpha * dev.len() as f64).ceil() as usize).clamp(1, dev.len());
    dev[k - 1]
}

/// Construct the symmetric centered CI around `center` from distribution
/// draws.
pub fn ci_from_draws(center: f64, draws: &[f64], alpha: f64) -> Ci {
    Ci::new(center, symmetric_half_width(center, draws, alpha), alpha)
}

/// The per-run accuracy statistic δ and its classification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Delta(pub f64);

/// The classification band of the paper's §3 evaluation: |δ| ≤ 0.2 is
/// acceptable.
pub const DELTA_BAND: f64 = 0.2;

impl Delta {
    /// δ = (estimated − true)/true; `None`-like NaN when the true width is
    /// zero and the estimate isn't.
    pub fn compute(estimated_width: f64, true_width: f64) -> Delta {
        if true_width == 0.0 {
            if estimated_width == 0.0 {
                Delta(0.0)
            } else {
                Delta(f64::INFINITY)
            }
        } else {
            Delta((estimated_width - true_width) / true_width)
        }
    }

    /// δ > 0.2: interval much too wide.
    pub fn is_pessimistic(&self) -> bool {
        self.0 > DELTA_BAND
    }

    /// δ < −0.2: interval much too narrow.
    pub fn is_optimistic(&self) -> bool {
        self.0 < -DELTA_BAND
    }

    /// |δ| ≤ 0.2.
    pub fn is_acceptable(&self) -> bool {
        !self.is_pessimistic() && !self.is_optimistic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_geometry() {
        let ci = Ci::new(10.0, 2.0, 0.95);
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert_eq!(ci.width(), 4.0);
        assert!(ci.contains(8.0) && ci.contains(12.0) && ci.contains(10.0));
        assert!(!ci.contains(7.999) && !ci.contains(12.001));
        assert!((ci.relative_half_width() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_center_relative_width_is_infinite() {
        assert!(Ci::new(0.0, 1.0, 0.95).relative_half_width().is_infinite());
    }

    #[test]
    fn half_width_covers_exactly_alpha() {
        // Draws at distance 1..=100 from center 0.
        let draws: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // 95% coverage needs the 95th smallest deviation = 95.
        assert_eq!(symmetric_half_width(0.0, &draws, 0.95), 95.0);
        // 100% needs all.
        assert_eq!(symmetric_half_width(0.0, &draws, 1.0), 100.0);
        // Tiny alpha still covers at least one draw.
        assert_eq!(symmetric_half_width(0.0, &draws, 0.0), 1.0);
    }

    #[test]
    fn half_width_uses_absolute_deviation() {
        let draws = vec![-5.0, -1.0, 1.0, 5.0];
        assert_eq!(symmetric_half_width(0.0, &draws, 0.5), 1.0);
        assert_eq!(symmetric_half_width(0.0, &draws, 1.0), 5.0);
    }

    #[test]
    #[should_panic]
    fn half_width_rejects_empty() {
        symmetric_half_width(0.0, &[], 0.95);
    }

    #[test]
    fn ci_from_draws_centers_properly() {
        let draws = vec![9.0, 10.0, 11.0, 12.0];
        let ci = ci_from_draws(10.0, &draws, 0.75);
        assert_eq!(ci.center, 10.0);
        assert_eq!(ci.half_width, 1.0);
    }

    #[test]
    fn delta_classification() {
        assert!(Delta::compute(1.3, 1.0).is_pessimistic());
        assert!(Delta::compute(0.7, 1.0).is_optimistic());
        assert!(Delta::compute(1.1, 1.0).is_acceptable());
        assert!(Delta::compute(0.9, 1.0).is_acceptable());
        // Exactly on the band edges is acceptable.
        assert!(Delta::compute(1.2, 1.0).is_acceptable());
        assert!(Delta::compute(0.8, 1.0).is_acceptable());
    }

    #[test]
    fn delta_zero_true_width() {
        assert_eq!(Delta::compute(0.0, 0.0).0, 0.0);
        assert!(Delta::compute(0.1, 0.0).is_pessimistic());
    }

    #[test]
    fn delta_sign_convention_matches_paper_prose() {
        // Estimate twice as wide as truth → pessimistic (δ = +1).
        let d = Delta::compute(2.0, 1.0);
        assert_eq!(d.0, 1.0);
        assert!(d.is_pessimistic());
        // Estimate half as wide → optimistic (δ = −0.5).
        let d = Delta::compute(0.5, 1.0);
        assert_eq!(d.0, -0.5);
        assert!(d.is_optimistic());
    }
}

//! Closed-form CLT-based error estimation (§2.3.2).
//!
//! Approximates Dist(θ(S)) by N(θ(S), σ²) with σ² estimated from the
//! sample by an aggregate-specific formula derived by "careful manual
//! study of θ" — exactly why this method only covers COUNT, SUM, AVG,
//! VARIANCE, and STDEV, while MIN, MAX, percentiles, and UDFs have no
//! known closed form and must fall back to the bootstrap.
//!
//! Variance derivations (values = filtered aggregation inputs, m =
//! surviving rows, n = pre-filter sample rows, N = population rows,
//! q = m/n the selectivity):
//!
//! * `AVG`  — the classic s²/m.
//! * `SUM`  — the estimator is N·(Σx)/n, i.e. N·mean(y) where yᵢ is the
//!   per-sample-row contribution (0 for filtered-out rows);
//!   Var = N²·Var(y)/n with Var(y) = E\[y²\] − E\[y\]² computed from Σx, Σx².
//! * `COUNT` — Bernoulli mean: Var = N²·q(1−q)/n.
//! * `VARIANCE` — asymptotic Var(s²) = (μ₄ − σ⁴)/m.
//! * `STDDEV` — delta method: Var(s) = Var(s²)/(4s²).

use crate::ci::Ci;
use crate::dist::normal_quantile;
use crate::estimator::{Aggregate, SampleContext};
use crate::moments::Moments;

/// The closed-form standard error of `agg` evaluated on `values` under
/// `ctx`, or `None` when no closed form exists for the aggregate.
pub fn closed_form_std_error(
    agg: &Aggregate,
    values: &[f64],
    ctx: &SampleContext,
) -> Option<f64> {
    let n = ctx.sample_rows as f64;
    let big_n = ctx.population_rows as f64;
    let m = values.len() as f64;
    match agg {
        Aggregate::Avg => {
            if values.len() < 2 {
                return None;
            }
            let s2 = Moments::from_slice(values).variance_sample();
            Some((s2 / m).sqrt())
        }
        Aggregate::Sum => {
            if n < 2.0 {
                return None;
            }
            let sum: f64 = values.iter().sum();
            let sum_sq: f64 = values.iter().map(|x| x * x).sum();
            let mean_y = sum / n;
            let var_y = (sum_sq / n - mean_y * mean_y).max(0.0);
            // Small-sample (n-1) correction on the y-variance.
            let var_y = var_y * n / (n - 1.0);
            Some(big_n * (var_y / n).sqrt())
        }
        Aggregate::Count => {
            if n < 2.0 {
                return None;
            }
            let q = (m / n).clamp(0.0, 1.0);
            Some(big_n * (q * (1.0 - q) / n).sqrt())
        }
        Aggregate::Variance => {
            if values.len() < 4 {
                return None;
            }
            let mom = Moments::from_slice(values);
            let sigma2 = mom.variance_population();
            let mu4 = mom.fourth_central_moment();
            let var_s2 = ((mu4 - sigma2 * sigma2) / m).max(0.0);
            Some(var_s2.sqrt())
        }
        Aggregate::StdDev => {
            if values.len() < 4 {
                return None;
            }
            let mom = Moments::from_slice(values);
            let s = mom.std_dev_sample();
            if s <= 0.0 {
                return Some(0.0);
            }
            let sigma2 = mom.variance_population();
            let mu4 = mom.fourth_central_moment();
            let var_s2 = ((mu4 - sigma2 * sigma2) / m).max(0.0);
            Some(var_s2.sqrt() / (2.0 * s))
        }
        // §2.3.2: "in some cases, like MIN, MAX, and black-box UDFs,
        // closed-form estimates are unknown."
        Aggregate::Min | Aggregate::Max | Aggregate::Percentile(_) => None,
    }
}

/// Closed-form confidence interval: normal approximation
/// `θ(S) ± z_{(1+α)/2} · σ̂`. `None` when the aggregate has no closed form
/// or the sample is too small to estimate σ̂.
pub fn closed_form_ci(
    agg: &Aggregate,
    values: &[f64],
    ctx: &SampleContext,
    alpha: f64,
) -> Option<Ci> {
    let se = closed_form_std_error(agg, values, ctx)?;
    let center = crate::estimator::QueryEstimator::estimate(agg, values, ctx);
    if center.is_nan() || se.is_nan() {
        return None;
    }
    let z = normal_quantile(0.5 + alpha / 2.0);
    Some(Ci::new(center, z * se, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample_lognormal, sample_normal};
    use crate::estimator::QueryEstimator;
    use crate::rng::rng_from_seed;

    #[test]
    fn avg_se_is_s_over_sqrt_m() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ctx = SampleContext::new(100, 10_000);
        let se = closed_form_std_error(&Aggregate::Avg, &values, &ctx).unwrap();
        let s2 = Moments::from_slice(&values).variance_sample();
        assert!((se - (s2 / 100.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn count_se_binomial() {
        // 300 of 1000 sample rows survive, population 1e6.
        let values = vec![1.0; 300];
        let ctx = SampleContext::new(1000, 1_000_000);
        let se = closed_form_std_error(&Aggregate::Count, &values, &ctx).unwrap();
        let expect = 1_000_000.0 * (0.3f64 * 0.7 / 1000.0).sqrt();
        assert!((se - expect).abs() < 1e-6);
    }

    #[test]
    fn sum_se_accounts_for_selectivity() {
        // All rows pass, constant value: Var(y) from the correction term only.
        let values = vec![5.0; 1000];
        let ctx = SampleContext::new(1000, 10_000);
        let se = closed_form_std_error(&Aggregate::Sum, &values, &ctx).unwrap();
        // Constant data w/ full selectivity → y constant → SE ≈ 0.
        assert!(se < 1e-9, "se {se}");
        // Half the rows pass with value 5: Var(y) = 25·q(1−q).
        let values = vec![5.0; 500];
        let se = closed_form_std_error(&Aggregate::Sum, &values, &ctx).unwrap();
        let var_y: f64 = 25.0 * 0.5 * 0.5 * (1000.0 / 999.0);
        let expect = 10_000.0 * (var_y / 1000.0f64).sqrt();
        assert!((se - expect).abs() / expect < 1e-9, "se {se} vs {expect}");
    }

    #[test]
    fn no_closed_form_for_min_max_percentile() {
        let values = vec![1.0, 2.0, 3.0];
        let ctx = SampleContext::new(3, 3);
        assert!(closed_form_std_error(&Aggregate::Min, &values, &ctx).is_none());
        assert!(closed_form_std_error(&Aggregate::Max, &values, &ctx).is_none());
        assert!(closed_form_std_error(&Aggregate::Percentile(0.5), &values, &ctx).is_none());
    }

    #[test]
    fn ci_coverage_for_avg_on_normal_data() {
        // Empirical coverage check: the 95% closed-form AVG interval should
        // contain the true mean in roughly 95% of repetitions.
        let mut covered = 0;
        let runs = 400;
        let n = 500;
        for run in 0..runs {
            let mut rng = rng_from_seed(1000 + run);
            let values: Vec<f64> =
                (0..n).map(|_| sample_normal(&mut rng, 7.0, 2.0)).collect();
            let ctx = SampleContext::new(n, 1_000_000);
            let ci = closed_form_ci(&Aggregate::Avg, &values, &ctx, 0.95).unwrap();
            if ci.contains(7.0) {
                covered += 1;
            }
        }
        let rate = covered as f64 / runs as f64;
        assert!(rate > 0.91 && rate < 0.99, "coverage {rate}");
    }

    #[test]
    fn variance_se_shrinks_with_m() {
        let mut rng = rng_from_seed(5);
        let small: Vec<f64> = (0..200).map(|_| sample_lognormal(&mut rng, 0.0, 1.0)).collect();
        let large: Vec<f64> = (0..20_000).map(|_| sample_lognormal(&mut rng, 0.0, 1.0)).collect();
        let ctx_s = SampleContext::new(200, 1_000_000);
        let ctx_l = SampleContext::new(20_000, 1_000_000);
        let se_s = closed_form_std_error(&Aggregate::Variance, &small, &ctx_s).unwrap();
        let se_l = closed_form_std_error(&Aggregate::Variance, &large, &ctx_l).unwrap();
        assert!(se_l < se_s, "se_l {se_l} vs se_s {se_s}");
    }

    #[test]
    fn stddev_delta_method_relationship() {
        let values: Vec<f64> = (0..1000).map(|i| ((i * 31) % 100) as f64).collect();
        let ctx = SampleContext::new(1000, 1000);
        let se_var = closed_form_std_error(&Aggregate::Variance, &values, &ctx).unwrap();
        let se_sd = closed_form_std_error(&Aggregate::StdDev, &values, &ctx).unwrap();
        let s = Aggregate::StdDev.estimate(&values, &ctx);
        assert!((se_sd - se_var / (2.0 * s)).abs() < 1e-12);
    }

    #[test]
    fn too_small_samples_yield_none() {
        let ctx = SampleContext::new(1, 10);
        assert!(closed_form_std_error(&Aggregate::Avg, &[1.0], &ctx).is_none());
        assert!(closed_form_std_error(&Aggregate::Variance, &[1.0, 2.0, 3.0], &ctx).is_none());
    }

    #[test]
    fn ci_uses_normal_quantile() {
        let values: Vec<f64> = (0..400).map(|i| (i % 20) as f64).collect();
        let ctx = SampleContext::new(400, 40_000);
        let ci95 = closed_form_ci(&Aggregate::Avg, &values, &ctx, 0.95).unwrap();
        let ci99 = closed_form_ci(&Aggregate::Avg, &values, &ctx, 0.99).unwrap();
        assert!((ci99.half_width / ci95.half_width - 2.5758 / 1.9600).abs() < 1e-3);
    }
}

//! Query aggregates θ as pluggable estimators.
//!
//! §2.1: "Let θ be the query we would like to compute on a dataset D".
//! Every estimator evaluates in two modes:
//!
//! * [`QueryEstimator::estimate`] — plain evaluation on a values vector
//!   (the sample estimate θ(S), or the ground truth θ(D) when handed the
//!   full data), and
//! * [`QueryEstimator::estimate_weighted`] — evaluation on a Poissonized
//!   resample encoded as per-row integer weights (§5.1/§5.3.1), which the
//!   bootstrap and diagnostic operators call once per resample.
//!
//! The values vector holds the aggregation input *after* filters (operator
//! pushdown, §5.3.2, makes this statistically sound: independent
//! Poisson(1) weights commute with filtering). [`SampleContext`] carries
//! the pre-filter sample size and the population size so that SUM/COUNT
//! estimates can be scaled to the full data (footnote 3 of the paper).

use std::fmt;
use std::sync::Arc;

use crate::moments::{Moments, WeightedMoments};
use crate::quantile::{quantile, weighted_quantile};

/// Sizing context for scaling sample estimates up to the population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleContext {
    /// Rows of the sample S *before* any filtering.
    pub sample_rows: usize,
    /// Rows of the full dataset D.
    pub population_rows: usize,
}

impl SampleContext {
    /// Context for evaluating directly on the population (scale 1).
    pub fn population(rows: usize) -> Self {
        SampleContext { sample_rows: rows, population_rows: rows }
    }

    /// Context for a sample of `sample_rows` from `population_rows`.
    pub fn new(sample_rows: usize, population_rows: usize) -> Self {
        SampleContext { sample_rows, population_rows }
    }

    /// `|D| / |S|` — the factor unbiasing SUM/COUNT estimates.
    pub fn scale(&self) -> f64 {
        if self.sample_rows == 0 {
            0.0
        } else {
            self.population_rows as f64 / self.sample_rows as f64
        }
    }

    /// A context for a subsample of `b` pre-filter rows of the same
    /// population (used by the diagnostic at sizes b₁ < b₂ < ... < S).
    pub fn subsample(&self, b: usize) -> Self {
        SampleContext { sample_rows: b, population_rows: self.population_rows }
    }
}

/// A query aggregate θ.
pub trait QueryEstimator: Send + Sync {
    /// Human-readable name (plan printing, reports).
    fn name(&self) -> String;

    /// Point estimate on a plain values vector.
    fn estimate(&self, values: &[f64], ctx: &SampleContext) -> f64;

    /// Point estimate on the Poissonized resample where row `i` appears
    /// `weights[i]` times. Must be semantically identical to expanding the
    /// multiset and calling [`Self::estimate`] (with `ctx.sample_rows`
    /// reinterpreted as the resample's nominal size, which stays the
    /// original sample size under Poissonization).
    fn estimate_weighted(&self, values: &[f64], weights: &[u32], ctx: &SampleContext) -> f64;

    /// Whether a closed-form CLT variance estimate exists for this θ
    /// (§2.3.2: COUNT, SUM, AVG, VARIANCE, STDEV — not MIN/MAX/UDFs).
    fn closed_form_applicable(&self) -> bool {
        false
    }
}

/// The built-in SQL aggregates.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Aggregate {
    /// Arithmetic mean of the aggregated expression.
    Avg,
    /// Sum, scaled by `|D|/|S|` to estimate the population sum.
    Sum,
    /// Count of rows passing the filters, scaled by `|D|/|S|`.
    Count,
    /// Sample variance of the aggregated expression.
    Variance,
    /// Sample standard deviation.
    StdDev,
    /// Minimum (no closed form; extreme outlier sensitivity).
    Min,
    /// Maximum (no closed form; extreme outlier sensitivity).
    Max,
    /// The `q`-percentile, `q` in (0,1) (bootstrap-only).
    Percentile(
        /// Quantile level in (0, 1).
        f64,
    ),
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregate::Avg => write!(f, "AVG"),
            Aggregate::Sum => write!(f, "SUM"),
            Aggregate::Count => write!(f, "COUNT"),
            Aggregate::Variance => write!(f, "VARIANCE"),
            Aggregate::StdDev => write!(f, "STDDEV"),
            Aggregate::Min => write!(f, "MIN"),
            Aggregate::Max => write!(f, "MAX"),
            Aggregate::Percentile(q) => write!(f, "PERCENTILE({q})"),
        }
    }
}

impl QueryEstimator for Aggregate {
    fn name(&self) -> String {
        self.to_string()
    }

    fn estimate(&self, values: &[f64], ctx: &SampleContext) -> f64 {
        match self {
            Aggregate::Avg => {
                if values.is_empty() {
                    f64::NAN
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }
            Aggregate::Sum => values.iter().sum::<f64>() * ctx.scale(),
            Aggregate::Count => values.len() as f64 * ctx.scale(),
            Aggregate::Variance => Moments::from_slice(values).variance_sample(),
            Aggregate::StdDev => Moments::from_slice(values).std_dev_sample(),
            Aggregate::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregate::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Percentile(q) => quantile(values, *q).unwrap_or(f64::NAN),
        }
    }

    fn estimate_weighted(&self, values: &[f64], weights: &[u32], ctx: &SampleContext) -> f64 {
        debug_assert_eq!(values.len(), weights.len());
        match self {
            Aggregate::Avg => {
                let mut m = WeightedMoments::new();
                for (&x, &w) in values.iter().zip(weights) {
                    m.push(x, w);
                }
                m.mean()
            }
            // SUM and COUNT use the *size-centered* Poissonized statistic:
            //
            //   S* = (Σ wᵢyᵢ − c·(Σ wᵢ − m)) · N/n,   c = Σyᵢ / n
            //
            // A raw Poissonized Σwy carries the resample-size variance
            // (Var Σw = m), overdispersing SUM/COUNT intervals by
            // E[y²]/Var(y) — negligible for selective filters but severe
            // as selectivity → 1. Subtracting the centered size term
            // reproduces the true sampling variance n·Var(y) to first
            // order (the exact-n bootstrap's behavior) while keeping the
            // statistic streamable and embarrassingly parallel (§5.1).
            Aggregate::Sum => {
                let m = values.len() as f64;
                let n = ctx.sample_rows as f64;
                let mut swy = 0.0f64;
                let mut sw = 0.0f64;
                let mut sum_y = 0.0f64;
                for (&x, &w) in values.iter().zip(weights) {
                    swy += x * w as f64;
                    sw += w as f64;
                    sum_y += x;
                }
                let c = if n > 0.0 { sum_y / n } else { 0.0 };
                (swy - c * (sw - m)) * ctx.scale()
            }
            Aggregate::Count => {
                let m = values.len() as f64;
                let n = ctx.sample_rows as f64;
                let sw: f64 = weights.iter().map(|&w| w as f64).sum();
                let c = if n > 0.0 { m / n } else { 0.0 };
                (sw - c * (sw - m)) * ctx.scale()
            }
            Aggregate::Variance => {
                let mut m = WeightedMoments::new();
                for (&x, &w) in values.iter().zip(weights) {
                    m.push(x, w);
                }
                m.variance_sample()
            }
            Aggregate::StdDev => {
                let mut m = WeightedMoments::new();
                for (&x, &w) in values.iter().zip(weights) {
                    m.push(x, w);
                }
                m.variance_sample().sqrt()
            }
            Aggregate::Min => values
                .iter()
                .zip(weights)
                .filter(|&(_, &w)| w > 0)
                .map(|(&x, _)| x)
                .fold(f64::INFINITY, f64::min),
            Aggregate::Max => values
                .iter()
                .zip(weights)
                .filter(|&(_, &w)| w > 0)
                .map(|(&x, _)| x)
                .fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Percentile(q) => {
                weighted_quantile(values, weights, *q).unwrap_or(f64::NAN)
            }
        }
    }

    fn closed_form_applicable(&self) -> bool {
        matches!(
            self,
            Aggregate::Avg
                | Aggregate::Sum
                | Aggregate::Count
                | Aggregate::Variance
                | Aggregate::StdDev
        )
    }
}

/// The boxed function type a [`Udf`] wraps.
pub type UdfFn = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// A black-box user-defined aggregate over the values vector (§2.3.2:
/// "black-box user defined functions (UDFs)" have no closed form; only the
/// bootstrap applies).
///
/// Weighted evaluation expands the weight-encoded multiset and calls the
/// UDF — intentionally generic and unoptimized, matching the paper's
/// framing of UDFs as opaque.
#[derive(Clone)]
pub struct Udf {
    name: String,
    f: UdfFn,
}

impl Udf {
    /// Wrap a function of the (filtered) values vector as a UDF aggregate.
    pub fn new(name: impl Into<String>, f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        Udf { name: name.into(), f: Arc::new(f) }
    }

    /// The multiset expansion used for weighted evaluation.
    pub fn expand(values: &[f64], weights: &[u32]) -> Vec<f64> {
        let total: usize = weights.iter().map(|&w| w as usize).sum();
        let mut out = Vec::with_capacity(total);
        for (&x, &w) in values.iter().zip(weights) {
            for _ in 0..w {
                out.push(x);
            }
        }
        out
    }
}

impl fmt::Debug for Udf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Udf({})", self.name)
    }
}

impl QueryEstimator for Udf {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn estimate(&self, values: &[f64], _ctx: &SampleContext) -> f64 {
        (self.f)(values)
    }

    fn estimate_weighted(&self, values: &[f64], weights: &[u32], _ctx: &SampleContext) -> f64 {
        let expanded = Udf::expand(values, weights);
        (self.f)(&expanded)
    }
}

/// Library of UDFs characteristic of the Conviva workload (§3: 42.07% of
/// Conviva queries contain at least one UDF). These exercise different
/// smoothness regimes:
pub mod udfs {
    use super::Udf;
    use crate::quantile::quantile;

    /// Trimmed mean over the central `(lo, hi)` quantile band — smooth,
    /// bootstrap-friendly.
    pub fn trimmed_mean(lo: f64, hi: f64) -> Udf {
        Udf::new(format!("trimmed_mean({lo},{hi})"), move |xs| {
            if xs.is_empty() {
                return f64::NAN;
            }
            let (Some(a), Some(b)) = (quantile(xs, lo), quantile(xs, hi)) else {
                return f64::NAN;
            };
            let mut sum = 0.0;
            let mut n = 0usize;
            for &x in xs {
                if x >= a && x <= b {
                    sum += x;
                    n += 1;
                }
            }
            if n == 0 {
                f64::NAN
            } else {
                sum / n as f64
            }
        })
    }

    /// Mean of the top `frac` fraction — MAX-like outlier sensitivity,
    /// the bootstrap's worst case.
    pub fn top_fraction_mean(frac: f64) -> Udf {
        Udf::new(format!("top_frac_mean({frac})"), move |xs| {
            if xs.is_empty() {
                return f64::NAN;
            }
            let Some(cut) = quantile(xs, 1.0 - frac) else {
                return f64::NAN;
            };
            let mut sum = 0.0;
            let mut n = 0usize;
            for &x in xs {
                if x >= cut {
                    sum += x;
                    n += 1;
                }
            }
            sum / n as f64
        })
    }

    /// Geometric mean of positive values — moderately smooth nonlinearity.
    pub fn geometric_mean() -> Udf {
        Udf::new("geometric_mean", |xs| {
            let mut s = 0.0;
            let mut n = 0usize;
            for &x in xs {
                if x > 0.0 {
                    s += x.ln();
                    n += 1;
                }
            }
            if n == 0 {
                f64::NAN
            } else {
                (s / n as f64).exp()
            }
        })
    }

    /// Coefficient of variation (stddev/mean) — a smooth ratio statistic.
    pub fn coeff_of_variation() -> Udf {
        Udf::new("coeff_of_variation", |xs| {
            let m = crate::moments::Moments::from_slice(xs);
            m.std_dev_sample() / m.mean()
        })
    }

    /// Fraction of values exceeding a threshold — a Bernoulli-mean UDF
    /// (smooth; bootstrap behaves like COUNT).
    pub fn frac_above(threshold: f64) -> Udf {
        Udf::new(format!("frac_above({threshold})"), move |xs| {
            if xs.is_empty() {
                return f64::NAN;
            }
            xs.iter().filter(|&&x| x > threshold).count() as f64 / xs.len() as f64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: SampleContext = SampleContext { sample_rows: 10, population_rows: 100 };

    #[test]
    fn avg_ignores_scale() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(Aggregate::Avg.estimate(&v, &CTX), 2.0);
    }

    #[test]
    fn sum_and_count_scale_to_population() {
        // 3 surviving rows out of a 10-row sample of a 100-row population.
        let v = [1.0, 2.0, 3.0];
        assert_eq!(Aggregate::Sum.estimate(&v, &CTX), 60.0);
        assert_eq!(Aggregate::Count.estimate(&v, &CTX), 30.0);
    }

    #[test]
    fn population_context_is_identity_scale() {
        let ctx = SampleContext::population(3);
        assert_eq!(Aggregate::Sum.estimate(&[1.0, 2.0, 3.0], &ctx), 6.0);
        assert_eq!(ctx.scale(), 1.0);
    }

    #[test]
    fn min_max_percentile() {
        let v = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(Aggregate::Min.estimate(&v, &CTX), 1.0);
        assert_eq!(Aggregate::Max.estimate(&v, &CTX), 9.0);
        assert_eq!(Aggregate::Percentile(0.5).estimate(&v, &CTX), 4.0);
    }

    #[test]
    fn empty_values() {
        assert!(Aggregate::Avg.estimate(&[], &CTX).is_nan());
        assert_eq!(Aggregate::Sum.estimate(&[], &CTX), 0.0);
        assert_eq!(Aggregate::Count.estimate(&[], &CTX), 0.0);
        assert!(Aggregate::Percentile(0.5).estimate(&[], &CTX).is_nan());
    }

    #[test]
    fn weighted_matches_expansion_for_location_aggregates() {
        let values = [3.0, -1.0, 4.0, 1.0, 5.0, 9.0];
        let weights = [2u32, 0, 1, 3, 0, 1];
        let expanded = Udf::expand(&values, &weights);
        for agg in [
            Aggregate::Avg,
            Aggregate::Variance,
            Aggregate::StdDev,
            Aggregate::Min,
            Aggregate::Max,
        ] {
            let w = agg.estimate_weighted(&values, &weights, &CTX);
            let e = agg.estimate(&expanded, &CTX);
            assert!(
                (w - e).abs() < 1e-9 || (w.is_nan() && e.is_nan()),
                "{agg}: weighted {w} vs expanded {e}"
            );
        }
        // Percentile uses nearest-rank on weights; check the median agrees.
        let wq = Aggregate::Percentile(0.5).estimate_weighted(&values, &weights, &CTX);
        assert_eq!(wq, 3.0); // expanded sorted: [1,1,1,3,3,4,9] → median 3
    }

    #[test]
    fn size_centered_sum_and_count_are_unbiased_and_tighter() {
        // The centered statistic preserves the mean over resamples and
        // removes the resample-size variance: with all-unit weights it
        // reproduces the point estimate exactly.
        let values = [3.0, -1.0, 4.0, 1.0, 5.0, 9.0];
        let unit = [1u32; 6];
        let s = Aggregate::Sum.estimate_weighted(&values, &unit, &CTX);
        assert!((s - Aggregate::Sum.estimate(&values, &CTX)).abs() < 1e-9);
        let c = Aggregate::Count.estimate_weighted(&values, &unit, &CTX);
        assert!((c - Aggregate::Count.estimate(&values, &CTX)).abs() < 1e-9);

        // Unfiltered COUNT (m == n): every resample yields exactly N —
        // matching the fact that sampling n rows always yields n rows.
        let ctx_full = SampleContext::new(6, 600);
        let heavy = [3u32, 0, 2, 2, 0, 0];
        let c = Aggregate::Count.estimate_weighted(&values, &heavy, &ctx_full);
        assert!((c - 600.0).abs() < 1e-9, "unfiltered COUNT must be deterministic, got {c}");

        // Filtered COUNT varies with the resample.
        let ctx_filtered = SampleContext::new(60, 600); // 6 of 60 rows pass
        let c1 = Aggregate::Count.estimate_weighted(&values, &heavy, &ctx_filtered);
        let c2 = Aggregate::Count.estimate_weighted(&values, &unit, &ctx_filtered);
        assert_ne!(c1, c2);
    }

    #[test]
    fn closed_form_applicability_matches_paper() {
        assert!(Aggregate::Avg.closed_form_applicable());
        assert!(Aggregate::Sum.closed_form_applicable());
        assert!(Aggregate::Count.closed_form_applicable());
        assert!(Aggregate::Variance.closed_form_applicable());
        assert!(Aggregate::StdDev.closed_form_applicable());
        assert!(!Aggregate::Min.closed_form_applicable());
        assert!(!Aggregate::Max.closed_form_applicable());
        assert!(!Aggregate::Percentile(0.5).closed_form_applicable());
        assert!(!udfs::geometric_mean().closed_form_applicable());
    }

    #[test]
    fn udf_weighted_expands_multiset() {
        let udf = Udf::new("count", |xs| xs.len() as f64);
        let v = [1.0, 2.0];
        let w = [3u32, 2];
        assert_eq!(udf.estimate_weighted(&v, &w, &CTX), 5.0);
    }

    #[test]
    fn udf_library_sanity() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let ctx = SampleContext::population(xs.len());
        let tm = udfs::trimmed_mean(0.1, 0.9).estimate(&xs, &ctx);
        assert!((tm - 50.5).abs() < 2.0, "trimmed mean {tm}");
        let gm = udfs::geometric_mean().estimate(&xs, &ctx);
        assert!(gm > 30.0 && gm < 50.0, "geometric mean {gm}");
        let fa = udfs::frac_above(50.0).estimate(&xs, &ctx);
        assert!((fa - 0.5).abs() < 0.01, "frac above {fa}");
        let tf = udfs::top_fraction_mean(0.1).estimate(&xs, &ctx);
        assert!(tf > 90.0, "top fraction mean {tf}");
        let cv = udfs::coeff_of_variation().estimate(&xs, &ctx);
        assert!(cv > 0.0 && cv < 1.0, "cv {cv}");
    }
}

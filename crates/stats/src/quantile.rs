//! Exact and weighted quantiles.
//!
//! PERCENTILE aggregates are prominent in the Conviva workload (§3) and
//! are bootstrap-only (no closed form in the engine). Quantiles of
//! resample distributions also underlie the symmetric-interval
//! construction in [`crate::ci`].

/// Exact `q`-quantile of `xs` (0 ≤ q ≤ 1) using the "nearest-rank with
/// linear interpolation" definition (type-7, the numpy/R default).
///
/// Returns `None` on an empty slice. Cost is O(n log n) on first call
/// because the input is copied and sorted; use [`quantile_sorted`] when the
/// data is already sorted.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    quantile_sorted(&v, q)
}

/// Exact `q`-quantile of an already-sorted slice (type-7 interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Weighted `q`-quantile: the smallest value `v` such that the cumulative
/// weight of observations ≤ `v` reaches `q` of the total weight. This is
/// the quantile of the *resample* a Poissonized weight vector encodes:
/// `weighted_quantile(xs, ws, q)` equals `quantile(expanded, q)` up to the
/// interpolation convention, where `expanded` repeats `xs[i]` `ws[i]` times.
pub fn weighted_quantile(xs: &[f64], ws: &[u32], q: f64) -> Option<f64> {
    assert_eq!(xs.len(), ws.len(), "values and weights must align");
    let total: u64 = ws.iter().map(|&w| w as u64).sum();
    if total == 0 {
        return None;
    }
    let mut idx: Vec<usize> = (0..xs.len()).filter(|&i| ws[i] > 0).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let q = q.clamp(0.0, 1.0);
    // Nearest-rank on the expanded multiset: rank r = ceil(q * total), min 1.
    let target = ((q * total as f64).ceil() as u64).max(1);
    let mut acc = 0u64;
    for &i in &idx {
        acc += ws[i] as u64;
        if acc >= target {
            return Some(xs[i]);
        }
    }
    idx.last().map(|&i| xs[i])
}

/// All of several quantiles in one sort.
pub fn quantiles(xs: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    qs.iter().map(|&q| quantile_sorted(&v, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
        assert_eq!(quantile(&[4.0, 1.0, 2.0, 3.0], 0.5), Some(2.5));
    }

    #[test]
    fn extremes() {
        let xs = [5.0, 1.0, 9.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(9.0));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(weighted_quantile(&[], &[], 0.5), None);
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_matches_expansion() {
        let xs = [10.0, 20.0, 30.0];
        let ws = [1u32, 3, 1];
        // Expanded multiset: [10, 20, 20, 20, 30]; median (nearest-rank) = 20.
        assert_eq!(weighted_quantile(&xs, &ws, 0.5), Some(20.0));
        // 90th percentile rank = ceil(0.9*5)=5 → 30.
        assert_eq!(weighted_quantile(&xs, &ws, 0.9), Some(30.0));
        // 10th percentile rank = ceil(0.5)=1 → 10.
        assert_eq!(weighted_quantile(&xs, &ws, 0.1), Some(10.0));
    }

    #[test]
    fn weighted_all_zero_weights_is_none() {
        assert_eq!(weighted_quantile(&[1.0, 2.0], &[0, 0], 0.5), None);
    }

    #[test]
    fn weighted_ignores_zero_weight_outliers() {
        let xs = [1.0, 1000.0];
        let ws = [5u32, 0];
        assert_eq!(weighted_quantile(&xs, &ws, 1.0), Some(1.0));
    }

    #[test]
    fn multiple_quantiles_single_sort() {
        let qs = quantiles(&[1.0, 2.0, 3.0, 4.0, 5.0], &[0.0, 0.5, 1.0]).unwrap();
        assert_eq!(qs, vec![1.0, 3.0, 5.0]);
    }
}

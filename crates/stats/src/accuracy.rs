//! The §3 evaluation harness: does an error-estimation technique produce
//! accurate error bars for a given (θ, data) pair?
//!
//! Mirrors the paper's protocol: compute the ground truth θ(D) and the
//! *true confidence interval* from many fresh samples of D; then, for each
//! of `runs` samples, produce ξ's interval and its δ; declare the
//! technique *optimistic* (resp. *pessimistic*) for the query if δ < −0.2
//! (resp. > 0.2) on at least 5% of runs.

use serde::{Deserialize, Serialize};

use crate::ci::{symmetric_half_width, Delta};
use crate::error_estimator::{ErrorEstimator, Theta};
use crate::estimator::SampleContext;
use crate::rng::SeedStream;
use crate::sampling::{gather, with_replacement_indices};

/// The per-query verdict of the §3 evaluation (the four bands of Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccuracyVerdict {
    /// ξ cannot produce intervals for this θ at all.
    NotApplicable,
    /// δ < −0.2 on ≥ `failure_quantile` of runs: intervals misleadingly
    /// narrow.
    Optimistic,
    /// Error estimation worked: |δ| ≤ 0.2 on > 95% of runs.
    Correct,
    /// δ > +0.2 on ≥ `failure_quantile` of runs: intervals wastefully wide.
    Pessimistic,
}

/// Full per-query evaluation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Final classification.
    pub verdict: AccuracyVerdict,
    /// Ground-truth θ(D).
    pub theta_d: f64,
    /// True confidence-interval half-width.
    pub true_half_width: f64,
    /// Fraction of runs with δ < −0.2.
    pub optimistic_frac: f64,
    /// Fraction of runs with δ > +0.2.
    pub pessimistic_frac: f64,
    /// Fraction of runs where ξ failed to produce an interval.
    pub degenerate_frac: f64,
    /// All observed δ values (NaN-free; degenerate runs excluded).
    pub deltas: Vec<f64>,
    /// Number of evaluation runs.
    pub runs: usize,
}

/// Protocol parameters (paper defaults: 100 samples, n = 10⁶, α = 0.95,
/// failure threshold 5%).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AccuracyConfig {
    /// Sample size n.
    pub sample_rows: usize,
    /// Number of independent samples ("100 different samples", §3).
    pub runs: usize,
    /// Interval coverage α.
    pub alpha: f64,
    /// Fraction of runs allowed outside the δ band before declaring
    /// failure (5% in the paper).
    pub failure_quantile: f64,
    /// Extra samples used to estimate the *true* interval (shares `runs`
    /// samples when 0; the paper reuses its evaluation samples).
    pub truth_runs: usize,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig {
            sample_rows: 1_000_000,
            runs: 100,
            alpha: 0.95,
            failure_quantile: 0.05,
            truth_runs: 200,
        }
    }
}

impl AccuracyConfig {
    /// A scaled-down config for fast tests/experiments.
    pub fn fast() -> Self {
        AccuracyConfig {
            sample_rows: 2_000,
            runs: 40,
            alpha: 0.95,
            failure_quantile: 0.05,
            truth_runs: 120,
        }
    }
}

/// Evaluate `xi` for query θ over `population` (the values column of D,
/// post-filter semantics as in [`crate::estimator`]).
///
/// `population` must be non-empty and `cfg.sample_rows` ≤ reasonable
/// memory. Deterministic given `seeds`.
pub fn evaluate_error_estimator(
    population: &[f64],
    theta: &Theta<'_>,
    xi: &dyn ErrorEstimator,
    cfg: &AccuracyConfig,
    seeds: SeedStream,
) -> AccuracyReport {
    assert!(!population.is_empty(), "empty population");
    let est = theta.as_estimator();
    let pop_ctx = SampleContext::population(population.len());
    let theta_d = est.estimate(population, &pop_ctx);
    let ctx = SampleContext::new(cfg.sample_rows, population.len());

    if !xi.applicable(theta) {
        return AccuracyReport {
            verdict: AccuracyVerdict::NotApplicable,
            theta_d,
            true_half_width: f64::NAN,
            optimistic_frac: 0.0,
            pessimistic_frac: 0.0,
            degenerate_frac: 1.0,
            deltas: Vec::new(),
            runs: 0,
        };
    }

    // 1. The true confidence interval: θ over `truth_runs` fresh samples,
    //    smallest symmetric interval around θ(D) covering α of them.
    let truth_stream = seeds.derive(0x7275_7468); // "ruth"
    let mut truth_draws = Vec::with_capacity(cfg.truth_runs);
    for r in 0..cfg.truth_runs.max(cfg.runs) {
        let mut rng = truth_stream.rng(r as u64);
        let idx = with_replacement_indices(&mut rng, cfg.sample_rows, population.len());
        let sample = gather(population, &idx);
        let t = est.estimate(&sample, &ctx);
        if !t.is_nan() {
            truth_draws.push(t);
        }
    }
    let true_half_width = if truth_draws.is_empty() {
        f64::NAN
    } else {
        symmetric_half_width(theta_d, &truth_draws, cfg.alpha)
    };

    // 2. ξ's interval on each evaluation sample, and its δ.
    let eval_stream = seeds.derive(0x6576_616c); // "eval"
    let mut deltas = Vec::with_capacity(cfg.runs);
    let mut degenerate = 0usize;
    for r in 0..cfg.runs {
        let mut sample_rng = eval_stream.rng(r as u64 * 2);
        let mut xi_rng = eval_stream.rng(r as u64 * 2 + 1);
        let idx = with_replacement_indices(&mut sample_rng, cfg.sample_rows, population.len());
        let sample = gather(population, &idx);
        match xi.confidence_interval(&mut xi_rng, &sample, &ctx, theta, cfg.alpha) {
            Some(ci) if ci.half_width.is_finite() => {
                deltas.push(Delta::compute(ci.width(), 2.0 * true_half_width).0);
            }
            _ => degenerate += 1,
        }
    }

    let n_ok = deltas.len().max(1) as f64;
    let optimistic_frac = deltas.iter().filter(|&&d| Delta(d).is_optimistic()).count() as f64 / n_ok;
    let pessimistic_frac =
        deltas.iter().filter(|&&d| Delta(d).is_pessimistic()).count() as f64 / n_ok;
    let degenerate_frac = degenerate as f64 / cfg.runs as f64;

    // Optimism is the worse failure (§3: "an optimistic error estimation
    // procedure is even worse"), so it takes precedence when both exceed
    // the threshold.
    let verdict = if deltas.is_empty() {
        AccuracyVerdict::NotApplicable
    } else if optimistic_frac >= cfg.failure_quantile {
        AccuracyVerdict::Optimistic
    } else if pessimistic_frac >= cfg.failure_quantile {
        AccuracyVerdict::Pessimistic
    } else {
        AccuracyVerdict::Correct
    };

    AccuracyReport {
        verdict,
        theta_d,
        true_half_width,
        optimistic_frac,
        pessimistic_frac,
        degenerate_frac,
        deltas,
        runs: cfg.runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample_lognormal, sample_pareto};
    use crate::error_estimator::{default_bootstrap, EstimationMethod};
    use crate::estimator::Aggregate;
    use crate::large_deviation::{Inequality, RangeHint};
    use crate::rng::rng_from_seed;

    fn lognormal_population(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| sample_lognormal(&mut rng, 1.0, 0.5)).collect()
    }

    #[test]
    fn bootstrap_correct_for_avg_on_moderate_tails() {
        let pop = lognormal_population(200_000, 1);
        let cfg = AccuracyConfig::fast();
        // K = 100 (the paper's default) leaves ~10% noise in the interval
        // width, which the strict ±0.2/5% rule can trip on by luck; use a
        // larger K for a stable unit test. Fig. 3's bench uses the paper's K.
        let report = evaluate_error_estimator(
            &pop,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::Bootstrap { k: 400 },
            &cfg,
            SeedStream::new(11),
        );
        assert_eq!(report.verdict, AccuracyVerdict::Correct, "{report:?}");
        assert!(report.true_half_width > 0.0);
    }

    #[test]
    fn closed_form_correct_for_avg() {
        let pop = lognormal_population(200_000, 2);
        let cfg = AccuracyConfig::fast();
        let report = evaluate_error_estimator(
            &pop,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::ClosedForm,
            &cfg,
            SeedStream::new(12),
        );
        assert_eq!(report.verdict, AccuracyVerdict::Correct, "{report:?}");
    }

    #[test]
    fn bootstrap_fails_for_max_on_heavy_tails() {
        // MAX on Pareto data: the classic bootstrap failure (§2.3.1, §3:
        // "bootstrap error estimation fails for 86.17% of [MIN/MAX]
        // queries").
        let mut rng = rng_from_seed(3);
        let pop: Vec<f64> = (0..200_000).map(|_| sample_pareto(&mut rng, 1.0, 1.1)).collect();
        let cfg = AccuracyConfig::fast();
        let report = evaluate_error_estimator(
            &pop,
            &Theta::Builtin(Aggregate::Max),
            &default_bootstrap(),
            &cfg,
            SeedStream::new(13),
        );
        assert_ne!(report.verdict, AccuracyVerdict::Correct, "{report:?}");
    }

    #[test]
    fn closed_form_not_applicable_to_max() {
        let pop = lognormal_population(10_000, 4);
        let cfg = AccuracyConfig::fast();
        let report = evaluate_error_estimator(
            &pop,
            &Theta::Builtin(Aggregate::Max),
            &EstimationMethod::ClosedForm,
            &cfg,
            SeedStream::new(14),
        );
        assert_eq!(report.verdict, AccuracyVerdict::NotApplicable);
    }

    #[test]
    fn hoeffding_is_pessimistic() {
        let pop = lognormal_population(100_000, 5);
        let max = pop.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let cfg = AccuracyConfig::fast();
        let report = evaluate_error_estimator(
            &pop,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::LargeDeviation {
                inequality: Inequality::Hoeffding,
                range: RangeHint::new(0.0, max),
            },
            &cfg,
            SeedStream::new(15),
        );
        assert_eq!(report.verdict, AccuracyVerdict::Pessimistic, "{report:?}");
        assert!(report.pessimistic_frac > 0.9);
    }

    #[test]
    fn deterministic_given_seeds() {
        let pop = lognormal_population(20_000, 6);
        let cfg = AccuracyConfig { sample_rows: 500, runs: 10, truth_runs: 30, ..AccuracyConfig::fast() };
        let a = evaluate_error_estimator(
            &pop,
            &Theta::Builtin(Aggregate::Sum),
            &default_bootstrap(),
            &cfg,
            SeedStream::new(16),
        );
        let b = evaluate_error_estimator(
            &pop,
            &Theta::Builtin(Aggregate::Sum),
            &default_bootstrap(),
            &cfg,
            SeedStream::new(16),
        );
        assert_eq!(a.deltas, b.deltas);
        assert_eq!(a.verdict, b.verdict);
    }
}

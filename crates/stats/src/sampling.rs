//! Random index generation for drawing samples.
//!
//! The storage layer stores samples given index vectors; this module
//! produces those vectors. Simple random sampling with replacement is the
//! paper's baseline model (§2.1); without-replacement and full
//! permutations are provided for sample construction (samples are stored
//! shuffled so that any contiguous range is itself a uniform sample).

use rand::{Rng, RngExt};

/// `n` indices drawn uniformly with replacement from `0..len`.
pub fn with_replacement_indices<R: Rng>(rng: &mut R, n: usize, len: usize) -> Vec<usize> {
    assert!(len > 0, "cannot sample from an empty population");
    (0..n).map(|_| rng.random_range(0..len)).collect()
}

/// `n` distinct indices drawn uniformly without replacement from `0..len`,
/// in random order (partial Fisher–Yates, O(len) memory, O(n) swaps).
pub fn without_replacement_indices<R: Rng>(
    rng: &mut R,
    n: usize,
    len: usize,
) -> Vec<usize> {
    assert!(n <= len, "cannot draw {n} distinct indices from {len}");
    let mut pool: Vec<usize> = (0..len).collect();
    for i in 0..n {
        let j = rng.random_range(i..len);
        pool.swap(i, j);
    }
    pool.truncate(n);
    pool
}

/// A uniformly random permutation of `0..len` (Fisher–Yates).
pub fn permutation<R: Rng>(rng: &mut R, len: usize) -> Vec<usize> {
    without_replacement_indices(rng, len, len)
}

/// Gather `values[i]` for each sampled index — the one-column case used
/// throughout the stats-level experiment harnesses.
pub fn gather(values: &[f64], indices: &[usize]) -> Vec<f64> {
    indices.iter().map(|&i| values[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn with_replacement_in_range() {
        let mut rng = rng_from_seed(1);
        let idx = with_replacement_indices(&mut rng, 1000, 10);
        assert_eq!(idx.len(), 1000);
        assert!(idx.iter().all(|&i| i < 10));
        // With 1000 draws over 10 buckets, every bucket is hit w.h.p.
        for b in 0..10 {
            assert!(idx.contains(&b), "bucket {b} never drawn");
        }
    }

    #[test]
    fn without_replacement_distinct() {
        let mut rng = rng_from_seed(2);
        let idx = without_replacement_indices(&mut rng, 50, 100);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic]
    fn without_replacement_overdraw_panics() {
        let mut rng = rng_from_seed(3);
        without_replacement_indices(&mut rng, 11, 10);
    }

    #[test]
    fn permutation_is_bijective() {
        let mut rng = rng_from_seed(4);
        let p = permutation(&mut rng, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_actually_shuffles() {
        let mut rng = rng_from_seed(5);
        let p = permutation(&mut rng, 100);
        assert_ne!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gather_picks_values() {
        assert_eq!(gather(&[10.0, 20.0, 30.0], &[2, 0, 2]), vec![30.0, 10.0, 30.0]);
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = rng_from_seed(6);
        let idx = with_replacement_indices(&mut rng, 100_000, 4);
        let mut counts = [0usize; 4];
        for i in idx {
            counts[i] += 1;
        }
        for c in counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
        }
    }
}

//! Progressive execution: grow the sample until the validated error
//! bound is met.
//!
//! §1: "by varying the sample size while estimating the magnitude of the
//! resulting error bars, the system can make a smooth and controlled
//! trade-off between accuracy and query time." This module walks the
//! stored uniform samples smallest-first, re-executing the query (with
//! its single-scan error estimation + diagnostic) at each size, and
//! stops at the first answer whose *validated* relative error meets the
//! target — falling through to exact execution when even the largest
//! sample cannot (or its error bars cannot be trusted).
//!
//! This is the online-aggregation-shaped interface (Hellerstein et al.,
//! cited as \[21\]) re-built on the paper's machinery: every intermediate
//! answer a user sees carries diagnosed error bars.

use crate::answer::AqpAnswer;
use crate::session::AqpSession;
use crate::Result;

/// One step of a progressive execution.
#[derive(Debug, Clone)]
pub struct ProgressiveStep {
    /// Sample rows used at this step (0 = exact execution).
    pub sample_rows: usize,
    /// The answer produced at this step.
    pub answer: AqpAnswer,
    /// The worst validated relative half-width across results at this
    /// step (`None` when some result has no validated interval).
    pub worst_relative_error: Option<f64>,
    /// Whether this step met the target.
    pub satisfied: bool,
}

/// The full progressive trace.
#[derive(Debug, Clone)]
pub struct ProgressiveResult {
    /// All steps, in execution order; the last one is the served answer.
    pub steps: Vec<ProgressiveStep>,
    /// Whether the target was met by an approximate step (false = the
    /// final answer is exact).
    pub satisfied_approximately: bool,
}

impl ProgressiveResult {
    /// The answer that should be served to the user.
    pub fn final_answer(&self) -> &AqpAnswer {
        &self.steps.last().expect("at least one step").answer
    }
}

/// Worst validated relative half-width across all results of an answer.
fn worst_relative_error(answer: &AqpAnswer) -> Option<f64> {
    let mut worst: f64 = 0.0;
    for g in &answer.groups {
        for a in &g.aggs {
            let ci = a.ci.as_ref()?;
            if !a.error_bars_reliable() {
                return None;
            }
            let rel = ci.relative_half_width();
            if !rel.is_finite() {
                return None;
            }
            worst = worst.max(rel);
        }
    }
    Some(worst)
}

impl AqpSession {
    /// Execute `sql` progressively over the stored uniform samples until
    /// the validated relative error is ≤ `target_rel_error`, falling back
    /// to exact execution if no sample suffices.
    ///
    /// The query must not carry its own error clause (the target is given
    /// here); sample sizes come from the session's sample set.
    pub fn execute_progressive(
        &self,
        sql: &str,
        target_rel_error: f64,
    ) -> Result<ProgressiveResult> {
        let query = aqp_sql::parse_query(sql)?;
        if query.error_clause.is_some() {
            return Err(crate::CoreError::Config(
                "progressive execution takes the error target as an argument; \
                 remove the WITHIN clause"
                    .into(),
            ));
        }
        let table_name = match &query.from {
            aqp_sql::TableRef::Table(t) => t.clone(),
            aqp_sql::TableRef::Subquery(_) => {
                return Err(crate::CoreError::Config(
                    "progressive execution supports single-block queries".into(),
                ))
            }
        };
        let sizes: Vec<usize> = self
            .catalog()
            .with_samples(&table_name, |set| {
                Ok(set.uniform_samples().map(|s| s.meta.rows).collect())
            })
            .unwrap_or_default();

        let mut steps = Vec::new();
        for rows in sizes {
            // Route through the ordinary path with a per-size bound: an
            // error clause demanding this sample size exactly.
            let answer = self.execute_with_sample_rows(sql, rows)?;
            let worst = worst_relative_error(&answer);
            let satisfied = worst.map(|w| w <= target_rel_error).unwrap_or(false)
                && !answer.fell_back;
            let step = ProgressiveStep {
                sample_rows: answer.sample_rows,
                answer,
                worst_relative_error: worst,
                satisfied,
            };
            let done = step.satisfied;
            steps.push(step);
            if done {
                return Ok(ProgressiveResult { steps, satisfied_approximately: true });
            }
        }

        // No sample satisfied the bound (or error bars were rejected):
        // exact execution.
        let exact = self.execute_exact_only(sql)?;
        steps.push(ProgressiveStep {
            sample_rows: 0,
            answer: exact,
            worst_relative_error: Some(0.0),
            satisfied: true,
        });
        Ok(ProgressiveResult { steps, satisfied_approximately: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerMode;
    use crate::SessionConfig;
    use aqp_workload::{conviva_sessions_table, facebook_events_table};

    fn session() -> AqpSession {
        // Seed chosen so the marginal Kleiner diagnostic at the 15k sample
        // accepts (most seeds do; a few draw mean_deviation just over c1).
        let s = AqpSession::new(SessionConfig { seed: 5, ..Default::default() });
        s.register_table(conviva_sessions_table(300_000, 8, 2)).unwrap();
        s.build_samples("sessions", &[3_000, 15_000, 60_000], 5).unwrap();
        s
    }

    #[test]
    fn loose_target_stops_early() {
        let s = session();
        let r = s.execute_progressive("SELECT AVG(time) FROM sessions", 0.2).unwrap();
        assert!(r.satisfied_approximately, "{:?}", r.steps.len());
        assert!(r.steps.len() <= 2, "took {} steps", r.steps.len());
        assert!(r.final_answer().sample_rows <= 15_000);
    }

    #[test]
    fn tight_target_needs_larger_samples() {
        let s = session();
        let loose = s.execute_progressive("SELECT AVG(time) FROM sessions", 0.2).unwrap();
        let tight = s.execute_progressive("SELECT AVG(time) FROM sessions", 0.005).unwrap();
        assert!(
            tight.final_answer().sample_rows >= loose.final_answer().sample_rows
                || !tight.satisfied_approximately
        );
        // Error shrinks monotonically along the trace (up to noise).
        let errs: Vec<f64> = tight
            .steps
            .iter()
            .filter_map(|st| st.worst_relative_error)
            .collect();
        if errs.len() >= 2 {
            assert!(errs.last().unwrap() <= &(errs[0] * 1.5), "{errs:?}");
        }
    }

    #[test]
    fn impossible_target_falls_through_to_exact() {
        let s = session();
        let r = s.execute_progressive("SELECT AVG(time) FROM sessions", 1e-9).unwrap();
        assert!(!r.satisfied_approximately);
        let last = r.steps.last().unwrap();
        assert_eq!(last.sample_rows, 0);
        assert_eq!(last.answer.mode, AnswerMode::Exact);
    }

    #[test]
    fn unreliable_error_bars_never_satisfy() {
        // MAX on Pareto: every approximate step is rejected; the trace
        // must end exact.
        let s = AqpSession::new(SessionConfig { seed: 4, ..Default::default() });
        s.register_table(facebook_events_table(200_000, 8, 3)).unwrap();
        s.build_samples("events", &[10_000, 40_000], 7).unwrap();
        let r = s.execute_progressive("SELECT MAX(payload_kb) FROM events", 0.5).unwrap();
        assert!(!r.satisfied_approximately, "{:#?}", r.steps.iter().map(|s| s.satisfied).collect::<Vec<_>>());
        assert_eq!(r.final_answer().mode, AnswerMode::Exact);
    }

    #[test]
    fn error_clause_in_sql_is_rejected() {
        let s = session();
        assert!(s
            .execute_progressive("SELECT AVG(time) FROM sessions WITHIN 5% ERROR", 0.05)
            .is_err());
    }
}

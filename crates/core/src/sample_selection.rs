//! Error-bound-driven sample sizing.
//!
//! "By varying the sample size while estimating the magnitude of the
//! resulting error bars, the system can make a smooth and controlled
//! trade-off between accuracy and query time" (§1). Given a pilot run on
//! a small sample, the √n error-scaling law extrapolates the sample size
//! needed to reach a target relative error:
//!
//! ```text
//! hw(n) ≈ hw(n₀) · sqrt(n₀ / n)   ⇒   n_req = n₀ · (hw₀ / (ε·|θ̂|))²
//! ```
//!
//! This is the same arithmetic Fig. 1 uses to chart required sample sizes
//! per error-estimation technique (where Hoeffding's inflated `hw₀` is
//! what forces its 1–2 orders-of-magnitude larger samples).

use aqp_stats::ci::Ci;

/// Extrapolate the pre-filter sample rows needed so the half-width
/// shrinks to `rel_err × |estimate|`, from a pilot interval computed on
/// `pilot_rows`.
///
/// Returns `None` when the pilot is degenerate (zero/NaN estimate or
/// half-width), in which case the caller should use its largest sample.
pub fn required_sample_rows(pilot: &Ci, pilot_rows: usize, rel_err: f64) -> Option<usize> {
    if rel_err <= 0.0 || pilot_rows == 0 {
        return None;
    }
    let estimate = pilot.center.abs();
    if !estimate.is_finite() || estimate == 0.0 {
        return None;
    }
    let hw = pilot.half_width;
    if !hw.is_finite() || hw <= 0.0 {
        // Zero observed error: any sample satisfies the bound.
        return Some(1);
    }
    let target_hw = rel_err * estimate;
    let ratio = hw / target_hw;
    let n = (pilot_rows as f64 * ratio * ratio).ceil();
    if !n.is_finite() {
        return None;
    }
    Some((n as usize).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_satisfied_bound_needs_fewer_rows() {
        // Pilot: hw 1 on center 100 with 10k rows; target 5% = hw 5.
        let pilot = Ci::new(100.0, 1.0, 0.95);
        let n = required_sample_rows(&pilot, 10_000, 0.05).unwrap();
        assert!(n < 10_000, "n = {n}");
        assert_eq!(n, 400); // (1/5)² × 10_000
    }

    #[test]
    fn tight_bound_needs_quadratically_more() {
        let pilot = Ci::new(100.0, 10.0, 0.95);
        // Target 1% → hw 1: need (10/1)² × pilot = 100×.
        let n = required_sample_rows(&pilot, 1_000, 0.01).unwrap();
        assert_eq!(n, 100_000);
    }

    #[test]
    fn degenerate_pilots() {
        assert!(required_sample_rows(&Ci::new(0.0, 1.0, 0.95), 100, 0.1).is_none());
        assert!(required_sample_rows(&Ci::new(f64::NAN, 1.0, 0.95), 100, 0.1).is_none());
        assert!(required_sample_rows(&Ci::new(5.0, 1.0, 0.95), 100, 0.0).is_none());
        // Zero half-width: any sample works.
        assert_eq!(required_sample_rows(&Ci::new(5.0, 0.0, 0.95), 100, 0.1), Some(1));
    }

    #[test]
    fn scaling_is_monotone_in_target() {
        let pilot = Ci::new(50.0, 5.0, 0.95);
        let n_loose = required_sample_rows(&pilot, 1_000, 0.2).unwrap();
        let n_tight = required_sample_rows(&pilot, 1_000, 0.02).unwrap();
        assert!(n_tight > n_loose);
        assert_eq!(n_tight, n_loose * 100);
    }
}

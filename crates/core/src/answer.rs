//! The answer type returned by [`crate::AqpSession::execute`].

use aqp_exec::result::{GroupResult, StageTimings};
use aqp_obs::QueryTrace;
use aqp_prof::OpProfile;

/// How the session ultimately answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerMode {
    /// Approximate answer with validated error bars.
    Approximate,
    /// Approximate answer; the diagnostic was not run (no samples, or
    /// diagnostics disabled).
    ApproximateUnchecked,
    /// The diagnostic rejected the error bars; the system fell back to
    /// exact execution (§1: "falling back to non-approximate methods to
    /// answer queries whose errors cannot be accurately estimated").
    ExactFallback,
    /// Some per-group/per-aggregate results were approved and kept
    /// approximate; the rejected ones were replaced with exact values
    /// (§2.1: "when a query produces multiple results, we treat each
    /// result as a separate query").
    PartialFallback,
    /// Exact execution was requested directly (no error clause, no
    /// samples).
    Exact,
}

/// A complete answer.
#[derive(Debug, Clone)]
pub struct AqpAnswer {
    /// Per-group, per-aggregate results. For exact answers, the CI is
    /// `None` and estimates are exact values.
    pub groups: Vec<GroupResult>,
    /// How the answer was produced.
    pub mode: AnswerMode,
    /// Shorthand: did the system fall back to exact execution?
    pub fell_back: bool,
    /// Rows of the sample used (0 for exact paths).
    pub sample_rows: usize,
    /// Rows of the full table.
    pub population_rows: usize,
    /// Per-stage timings derived from [`AqpAnswer::trace`] (empty when
    /// nothing was recorded).
    pub timings: StageTimings,
    /// The full lifecycle span tree: parse → plan → sample selection →
    /// engine stages (grafted) → reliability gate / exact fallback.
    pub trace: QueryTrace,
    /// The EXPLAIN rendering of the (rewritten) plan that ran.
    pub plan: String,
    /// The EXPLAIN ANALYZE operator profile assembled from
    /// [`AqpAnswer::trace`] — populated only when the session's
    /// [`ExplainMode`](aqp_prof::ExplainMode) is not `Off`.
    pub profile: Option<OpProfile>,
    /// Present when injected faults shrank the sample the answer was
    /// computed from: how many rows/partitions were lost and the factor
    /// every CI half-width was conservatively widened by (≥ 1).
    pub degraded: Option<aqp_faults::DegradedInfo>,
}

impl AqpAnswer {
    /// The single result of an ungrouped single-aggregate query.
    pub fn scalar(&self) -> Option<&aqp_exec::result::AggResult> {
        match self.groups.as_slice() {
            [g] if g.aggs.len() == 1 => Some(&g.aggs[0]),
            _ => None,
        }
    }

    /// Render a compact human-readable summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mode: {:?}  sample: {}/{} rows  time: {:?}",
            self.mode,
            self.sample_rows,
            self.population_rows,
            self.timings.total()
        );
        for g in &self.groups {
            for a in &g.aggs {
                let key = if g.key.is_empty() { String::new() } else { format!("{} | ", g.key) };
                match &a.ci {
                    Some(ci) => {
                        let _ = writeln!(
                            out,
                            "{key}{} = {:.4} ± {:.4}  ({:.0}% conf, {:?}{})",
                            a.name,
                            a.estimate,
                            ci.half_width,
                            ci.confidence * 100.0,
                            a.method,
                            match &a.diagnostic {
                                Some(d) if d.accepted => ", diagnostic: OK",
                                Some(_) => ", diagnostic: REJECTED",
                                None => "",
                            }
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{key}{} = {:.4}  (exact)", a.name, a.estimate);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_exec::result::{AggResult, MethodUsed};
    use aqp_stats::ci::Ci;

    fn answer() -> AqpAnswer {
        AqpAnswer {
            groups: vec![GroupResult {
                key: String::new(),
                aggs: vec![AggResult {
                    name: "AVG(time)".into(),
                    estimate: 12.5,
                    ci: Some(Ci::new(12.5, 0.4, 0.95)),
                    method: MethodUsed::ClosedForm,
                    diagnostic: None,
                }],
            }],
            mode: AnswerMode::ApproximateUnchecked,
            fell_back: false,
            sample_rows: 1_000,
            population_rows: 100_000,
            timings: StageTimings::default(),
            trace: QueryTrace::default(),
            plan: String::new(),
            profile: None,
            degraded: None,
        }
    }

    #[test]
    fn scalar_accessor() {
        let a = answer();
        assert_eq!(a.scalar().unwrap().estimate, 12.5);
    }

    #[test]
    fn summary_mentions_estimate_and_confidence() {
        let s = answer().summary();
        assert!(s.contains("AVG(time)"));
        assert!(s.contains("12.5"));
        assert!(s.contains("95% conf"));
        assert!(s.contains("1000/100000"));
    }
}

//! # aqp-core
//!
//! The paper's primary contribution as a library: a reliable approximate
//! query processing session that
//!
//! 1. maintains shuffled uniform samples of registered tables at several
//!    sizes (the BlinkDB sample collection),
//! 2. picks, per query, the smallest sample expected to satisfy the
//!    query's `WITHIN n% ERROR AT CONFIDENCE c%` clause
//!    ([`sample_selection`]),
//! 3. executes the query on that sample with **one scan** producing the
//!    answer, its error bars (closed form when applicable, Poissonized
//!    bootstrap otherwise), and the Kleiner-et-al. diagnostic verdict, and
//! 4. **falls back to exact execution** whenever the diagnostic reports
//!    that the error bars cannot be trusted — "knowing when you're wrong".
//!
//! ```
//! use aqp_core::{AqpSession, SessionConfig};
//! use aqp_workload::conviva_sessions_table;
//!
//! let session = AqpSession::new(SessionConfig::default());
//! session.register_table(conviva_sessions_table(100_000, 8, 1)).unwrap();
//! session.build_samples("sessions", &[5_000, 20_000], 7).unwrap();
//!
//! let answer = session
//!     .execute("SELECT AVG(time) FROM sessions WHERE city = 'NYC' WITHIN 5% ERROR AT CONFIDENCE 95%")
//!     .unwrap();
//! let r = &answer.groups[0].aggs[0];
//! assert!(r.estimate > 0.0);
//! if !answer.fell_back {
//!     let ci = r.ci.unwrap();
//!     assert!(ci.half_width > 0.0);
//! }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod progressive;
pub mod sample_selection;
pub mod session;

pub use answer::{AnswerMode, AqpAnswer};
pub use progressive::{ProgressiveResult, ProgressiveStep};
pub use sample_selection::required_sample_rows;
pub use session::{AqpSession, SessionConfig};

pub use aqp_introspect::IntrospectConfig;
pub use aqp_prof::contprof::{ContProfConfig, CumulativeProfile};
pub use aqp_prof::{ExplainMode, OpProfile};

pub use aqp_faults::{FaultConfig, RecoveryPolicy, StragglerDelay};

/// Errors from the session layer.
#[derive(Debug)]
pub enum CoreError {
    /// Storage failure.
    Storage(aqp_storage::StorageError),
    /// SQL failure.
    Sql(aqp_sql::SqlError),
    /// Execution failure.
    Exec(aqp_exec::ExecError),
    /// Configuration problem.
    Config(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Sql(e) => write!(f, "sql: {e}"),
            CoreError::Exec(e) => write!(f, "exec: {e}"),
            CoreError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<aqp_storage::StorageError> for CoreError {
    fn from(e: aqp_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}
impl From<aqp_sql::SqlError> for CoreError {
    fn from(e: aqp_sql::SqlError) -> Self {
        CoreError::Sql(e)
    }
}
impl From<aqp_exec::ExecError> for CoreError {
    fn from(e: aqp_exec::ExecError) -> Self {
        CoreError::Exec(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

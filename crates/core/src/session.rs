//! The AQP session: registration, sampling, and reliable execution.

use aqp_audit::{AuditConfig, AuditReport, AuditedAggregate, Auditor, QueryAudit};
use aqp_diagnostics::DiagnosticConfig;
use aqp_exec::engine::{execute_approx, execute_exact_observed, ApproxOptions, MethodChoice};
use aqp_exec::result::StageTimings;
use aqp_exec::udf::UdfRegistry;
use aqp_obs::{name, stage, ObsHandle, QueryTrace, TraceRecorder};
use aqp_prof::{ExplainMode, OpProfile};
use aqp_sql::logical::{DiagnosticWeights, ErrorMethod, LogicalPlan, ResampleSpec};
use aqp_sql::rewriter::{rewrite_for_error_estimation, ResamplePlacement};
use aqp_sql::{parse_query, plan_query, Query};
use aqp_stats::rng::SeedStream;
use aqp_stats::sampling::{permutation, with_replacement_indices};
use aqp_storage::{Catalog, SamplingStrategy, Strata, StratumMeta, Table};
use parking_lot::Mutex;

use crate::answer::{AnswerMode, AqpAnswer};
use crate::sample_selection::required_sample_rows;
use crate::Result;

/// Session-level configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Root seed for sampling, resampling, and diagnostics.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Bootstrap resamples K.
    pub bootstrap_k: usize,
    /// Diagnostic subsamples per size (p). The paper uses 100; sessions
    /// on laptop-scale samples may lower it.
    pub diagnostic_p: usize,
    /// Run the diagnostic on every approximate query.
    pub run_diagnostics: bool,
    /// Confidence when a query has no explicit error clause.
    pub default_confidence: f64,
    /// Pilot sample rows used when translating an error clause into a
    /// sample size.
    pub pilot_rows: usize,
    /// Observability context: the clock every stage span reads and the
    /// registry session counters/histograms land on. Defaults to the
    /// real clock + process-global registry; tests that assert exact
    /// metric values use `ObsHandle::isolated(Clock::mock())`.
    pub obs: ObsHandle,
    /// Continuous accuracy auditing: replay a deterministic fraction of
    /// approximate answers at full data and score CI coverage and
    /// diagnostic verdicts (`None` = off, the default; auditing adds
    /// replay cost proportional to its sample rate).
    pub audit: Option<AuditConfig>,
    /// EXPLAIN ANALYZE: when not [`ExplainMode::Off`], every answer
    /// carries an operator-level profile tree assembled from its trace
    /// (see [`AqpAnswer::profile`]). `Text` vs `Json` only affects how
    /// front ends render it; profile assembly is identical.
    pub explain: ExplainMode,
    /// Deterministic fault injection for approximate scans (`None` =
    /// off, the default — with `None` the pipeline is bit-identical to
    /// a build without the fault layer). When set, queries survive the
    /// injected faults by retrying/speculating per the config's
    /// recovery policy, degrade gracefully with widened error bars, or
    /// fall back to exact execution when losses exceed the policy.
    pub faults: Option<aqp_faults::FaultConfig>,
    /// Fleet-level SLOs: burn-rate/error-budget alerting over latency
    /// and CI-coverage objectives, online drift detection over audit
    /// scores, and the always-on flight recorder (`None` = off, the
    /// default — with `None` nothing is constructed and the pipeline
    /// is bit-identical to a build without the SLO layer).
    pub slo: Option<aqp_slo::SloConfig>,
    /// Continuous profiling: fold every query's operator profile into a
    /// fleet-cumulative profile keyed by workload class × operator path
    /// (`None` = off, the default — with `None` nothing is constructed,
    /// no `aqp.prof.contprof_*` / `aqp.mem.*` metrics are registered,
    /// and answers/traces/metrics are bit-identical to a build without
    /// the profiler). See [`AqpSession::cumulative_profile`].
    pub contprof: Option<aqp_prof::contprof::ContProfConfig>,
    /// Self-hosted telemetry analytics: fold every query's telemetry
    /// (spans, timings, faults, audit scores, SLO alerts, operator
    /// rows) into bounded `_telemetry.*` tables the session itself
    /// answers aqp-sql over — exactly and approximately, with CIs and
    /// diagnostic verdicts (`None` = off, the default — with `None`
    /// nothing is constructed, no `aqp.introspect.*` metrics are
    /// registered, and answers/traces/metrics are bit-identical to a
    /// build without the introspection layer).
    pub introspect: Option<aqp_introspect::IntrospectConfig>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            seed: 0,
            threads: aqp_exec::parallel::default_threads(),
            bootstrap_k: 100,
            diagnostic_p: 100,
            run_diagnostics: true,
            default_confidence: 0.95,
            pilot_rows: 2_000,
            obs: ObsHandle::default(),
            audit: None,
            explain: ExplainMode::Off,
            faults: None,
            slo: None,
            contprof: None,
            introspect: None,
        }
    }
}

/// The live SLO machinery: the burn-rate engine plus the always-on
/// flight recorder. Constructed only when `SessionConfig::slo` is set.
struct SloRuntime {
    engine: aqp_slo::SloEngine,
    recorder: aqp_obs::FlightRecorder,
}

/// The live continuous profiler: the class-routing config plus the
/// fleet-cumulative profile every query folds into. Constructed only
/// when `SessionConfig::contprof` is set.
struct ContProfRuntime {
    config: aqp_prof::contprof::ContProfConfig,
    cumulative: Mutex<aqp_prof::contprof::CumulativeProfile>,
}

/// A reliable-AQP session.
pub struct AqpSession {
    catalog: Catalog,
    registry: Mutex<UdfRegistry>,
    config: SessionConfig,
    auditor: Option<Auditor>,
    slo: Option<SloRuntime>,
    contprof: Option<ContProfRuntime>,
    introspect: Option<aqp_introspect::Introspector>,
}

impl AqpSession {
    /// Create a session.
    pub fn new(config: SessionConfig) -> Self {
        let auditor = config
            .audit
            .clone()
            .map(|cfg| Auditor::new(cfg, &config.obs));
        let slo = config.slo.clone().map(|cfg| SloRuntime {
            recorder: aqp_obs::FlightRecorder::new(cfg.recorder.clone(), &config.obs.metrics),
            engine: aqp_slo::SloEngine::new(cfg, &config.obs),
        });
        let contprof = config.contprof.clone().map(|cfg| ContProfRuntime {
            config: cfg,
            cumulative: Mutex::new(aqp_prof::contprof::CumulativeProfile::new()),
        });
        let introspect = config
            .introspect
            .clone()
            .map(|cfg| aqp_introspect::Introspector::new(cfg, &config.obs));
        AqpSession {
            catalog: Catalog::new(),
            registry: Mutex::new(UdfRegistry::default()),
            config,
            auditor,
            slo,
            contprof,
            introspect,
        }
    }

    /// The session's catalog handle.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The accuracy auditor's scorekeeping so far (`None` when auditing
    /// is off).
    pub fn audit_report(&self) -> Option<AuditReport> {
        self.auditor.as_ref().map(|a| a.report())
    }

    /// The SLO engine's scorekeeping so far — burn rates, budgets,
    /// drift streams, and the alert history (`None` when SLOs are off).
    pub fn slo_report(&self) -> Option<aqp_slo::SloReport> {
        self.slo.as_ref().map(|s| s.engine.report())
    }

    /// The always-on flight recorder (`None` when SLOs are off).
    pub fn flight_recorder(&self) -> Option<&aqp_obs::FlightRecorder> {
        self.slo.as_ref().map(|s| &s.recorder)
    }

    /// A snapshot of the fleet-cumulative operator profile accumulated
    /// so far (`None` when continuous profiling is off). Snapshots from
    /// different sessions/processes combine with
    /// [`CumulativeProfile::merge`](aqp_prof::contprof::CumulativeProfile::merge).
    pub fn cumulative_profile(&self) -> Option<aqp_prof::contprof::CumulativeProfile> {
        self.contprof.as_ref().map(|cp| cp.cumulative.lock().clone())
    }

    /// Register an aggregate UDF.
    pub fn register_udf(&self, name: &str, udf: aqp_stats::estimator::Udf) {
        self.registry.lock().register(name, udf);
    }

    /// Register a table.
    pub fn register_table(&self, table: Table) -> Result<()> {
        self.catalog.register_table(table)?;
        Ok(())
    }

    /// Build shuffled uniform samples of `table` at the given row counts
    /// (without replacement, so a sample is also a valid exact subset;
    /// stored pre-shuffled so any contiguous range is a uniform sample).
    pub fn build_samples(&self, table: &str, sizes: &[usize], seed: u64) -> Result<()> {
        let t = self.catalog.table(table)?;
        let seeds = SeedStream::new(self.config.seed ^ seed);
        for (i, &n) in sizes.iter().enumerate() {
            let mut rng = seeds.rng(i as u64);
            let rows = t.num_rows();
            let idx = if n <= rows {
                aqp_stats::sampling::without_replacement_indices(&mut rng, n, rows)
            } else {
                with_replacement_indices(&mut rng, n, rows)
            };
            let partitions = t.num_partitions().max(1);
            self.catalog.with_samples_mut(table, |set| {
                set.add_from_indices(
                    &t,
                    &idx,
                    if n <= rows {
                        SamplingStrategy::WithoutReplacement
                    } else {
                        SamplingStrategy::WithReplacement
                    },
                    seeds.seed(i as u64),
                    partitions,
                )?;
                Ok(())
            })?;
        }
        Ok(())
    }

    /// Build a *stratified* sample on `column`: up to `rows_per_stratum`
    /// uniformly-sampled rows per distinct value, each stratum with its
    /// own sampling rate (BlinkDB's mechanism for keeping rare groups
    /// answerable). GROUP-BY-on-`column` queries automatically use it
    /// with per-stratum scaling.
    pub fn build_stratified_sample(
        &self,
        table: &str,
        column: &str,
        rows_per_stratum: usize,
        seed: u64,
    ) -> Result<()> {
        let t = self.catalog.table(table)?;
        let full = t.to_batch()?;
        let col = full.column_by_name(column)?;
        // Group row indices by rendered key (same rendering the executor's
        // GROUP BY uses).
        let mut strata_rows: std::collections::HashMap<String, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..full.num_rows() {
            let key = col
                .value(i)
                .map(|v| v.to_string())
                .unwrap_or_else(|_| "?".to_string());
            strata_rows.entry(key).or_default().push(i);
        }
        let seeds = SeedStream::new(self.config.seed ^ seed ^ 0x57A7);
        let mut keys: Vec<String> = strata_rows.keys().cloned().collect();
        keys.sort(); // deterministic stratum order
        let mut indices: Vec<usize> = Vec::new();
        let mut groups: Vec<StratumMeta> = Vec::with_capacity(keys.len());
        for (si, key) in keys.iter().enumerate() {
            let rows = &strata_rows[key];
            let take = rows_per_stratum.min(rows.len());
            let mut rng = seeds.rng(si as u64);
            let picks =
                aqp_stats::sampling::without_replacement_indices(&mut rng, take, rows.len());
            indices.extend(picks.into_iter().map(|p| rows[p]));
            groups.push(StratumMeta {
                key: key.clone(),
                sample_rows: take,
                population_rows: rows.len(),
            });
        }
        // Global shuffle so row ranges stay valid diagnostic subsamples.
        let mut rng = seeds.rng(0xFFFF);
        let perm = permutation(&mut rng, indices.len());
        let shuffled: Vec<usize> = perm.into_iter().map(|i| indices[i]).collect();
        let strata = Strata { column: column.to_owned(), groups };
        let partitions = t.num_partitions().max(1);
        self.catalog.with_samples_mut(table, |set| {
            set.add_stratified(&t, &shuffled, strata, seeds.seed(1), partitions)?;
            Ok(())
        })?;
        Ok(())
    }

    /// Rebuild the largest sample as a full shuffle of the table (useful
    /// for exactness testing).
    pub fn build_full_shuffle(&self, table: &str, seed: u64) -> Result<()> {
        let t = self.catalog.table(table)?;
        let mut rng = SeedStream::new(self.config.seed ^ seed).rng(0xFF);
        let idx = permutation(&mut rng, t.num_rows());
        let partitions = t.num_partitions().max(1);
        self.catalog.with_samples_mut(table, |set| {
            set.add_from_indices(&t, &idx, SamplingStrategy::WithoutReplacement, seed, partitions)?;
            Ok(())
        })?;
        Ok(())
    }

    /// Render the rewritten plan an `execute` of this SQL would run,
    /// without executing it.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let query = parse_query(sql)?;
        let table_name = leaf_table_name(&query)?;
        let table = self.catalog.table(&table_name)?;
        let plan = plan_query(&query, table.schema())?;
        let has_samples = self
            .catalog
            .with_samples(&table_name, |s| Ok(s.uniform_samples().next().is_some()))
            .unwrap_or(false);
        if !has_samples {
            return Ok(plan.explain());
        }
        let diag_cfg = self
            .config
            .run_diagnostics
            .then(|| DiagnosticConfig::scaled_to(self.config.pilot_rows.max(1_000), self.config.diagnostic_p));
        let spec = ResampleSpec {
            bootstrap_k: self.config.bootstrap_k,
            diagnostic: diag_cfg.as_ref().map(|c| DiagnosticWeights {
                subsample_rows: c.subsample_rows.clone(),
                p: c.p,
            }),
            seed: self.config.seed,
        };
        let method = if query.closed_form_applicable() {
            ErrorMethod::ClosedForm
        } else {
            ErrorMethod::Bootstrap
        };
        Ok(rewrite_for_error_estimation(
            plan,
            spec,
            method,
            query.error_clause.map(|e| e.confidence).unwrap_or(self.config.default_confidence),
            ResamplePlacement::PushedDown,
        )
        .explain())
    }

    /// Execute a SQL query, approximately when samples and/or an error
    /// clause allow, with automatic exact fallback on diagnostic
    /// rejection.
    ///
    /// Every execution yields a full lifecycle [`QueryTrace`] on the
    /// returned answer and feeds the session's metrics (see
    /// `aqp_obs::name::CORE_*`).
    pub fn execute(&self, sql: &str) -> Result<AqpAnswer> {
        let obs = &self.config.obs;
        obs.metrics.counter(name::CORE_QUERIES).inc();
        // Queries over the reserved `_telemetry` namespace read the
        // introspection tables: materialize any reservoir that changed
        // since the last sync (and rebuild its uniform sample) first,
        // so the answer — approximate or exact — sees current data.
        if let Some(intr) = &self.introspect {
            if intr.is_introspection_query(sql) {
                intr.count_served();
                intr.sync_into(&self.catalog)?;
            }
        }
        let started = obs.clock.now();
        let rec = obs.recorder();
        let result = self.execute_traced(sql, &rec);
        let elapsed = obs.clock.now().duration_since(started);
        obs.metrics
            .histogram(name::CORE_QUERY_MS)
            .record_ms(elapsed.as_secs_f64() * 1e3);
        let answer = finish_with_trace(rec, result, self.config.explain);
        if let Some(cp) = &self.contprof {
            if let Ok(a) = &answer {
                let eval_started = obs.clock.now();
                let class = cp.config.classify(sql);
                let profile =
                    a.profile.clone().or_else(|| OpProfile::from_trace(&a.trace));
                if let Some(root) = profile {
                    cp.cumulative.lock().observe(class, std::slice::from_ref(&root));
                }
                obs.metrics.counter(name::PROF_CONTPROF_QUERIES).inc();
                if aqp_obs::alloc::enabled() {
                    let m = aqp_obs::alloc::stats();
                    obs.metrics.gauge(name::MEM_ALLOCS).set(m.allocs as f64);
                    obs.metrics.gauge(name::MEM_ALLOC_BYTES).set(m.alloc_bytes as f64);
                    obs.metrics.gauge(name::MEM_CURRENT_BYTES).set(m.current_bytes as f64);
                    obs.metrics.gauge(name::MEM_PEAK_BYTES).set(m.peak_bytes as f64);
                }
                obs.metrics
                    .histogram(name::PROF_CONTPROF_EVAL_MS)
                    .record_ms(obs.clock.now().duration_since(eval_started).as_secs_f64() * 1e3);
            }
        }
        let mut latency_alerts: Vec<(String, String, String)> = Vec::new();
        if let Some(slo) = &self.slo {
            let eval_started = obs.clock.now();
            if let Ok(a) = &answer {
                slo.recorder.record(a.trace.clone());
            }
            let class = slo.engine.classify(sql);
            let alerts = slo.engine.observe_latency(class, elapsed, eval_started);
            for alert in &alerts {
                let reason =
                    format!("slo:{}:{}", alert.severity.as_str(), alert.objective);
                slo.recorder.dump_with_context(
                    &reason,
                    &obs.metrics.snapshot(),
                    &[
                        ("class", alert.class.as_str()),
                        ("objective", alert.objective.as_str()),
                        ("severity", alert.severity.as_str()),
                        ("trigger", "latency"),
                    ],
                );
            }
            if self.introspect.is_some() {
                latency_alerts.extend(alerts.iter().map(|a| {
                    (
                        a.objective.clone(),
                        a.severity.as_str().to_string(),
                        "latency".to_string(),
                    )
                }));
            }
            obs.metrics
                .histogram(name::SLO_EVAL_MS)
                .record_ms(obs.clock.now().duration_since(eval_started).as_secs_f64() * 1e3);
        }
        if let Some(intr) = &self.introspect {
            if let Ok(a) = &answer {
                if intr.should_fold(sql) {
                    let eval_started = obs.clock.now();
                    let profile =
                        a.profile.clone().or_else(|| OpProfile::from_trace(&a.trace));
                    intr.fold_query(&aqp_introspect::QueryRecord {
                        sql,
                        trace: &a.trace,
                        mode: mode_label(a.mode),
                        wall_ms: elapsed.as_secs_f64() * 1e3,
                        sample_rows: a.sample_rows as u64,
                        population_rows: a.population_rows as u64,
                        groups: a.groups.len() as u64,
                        fell_back: a.fell_back,
                        degraded: a.degraded.is_some(),
                        profile: profile.as_ref(),
                        slo_alerts: &latency_alerts,
                    });
                    obs.metrics.histogram(name::INTROSPECT_EVAL_MS).record_ms(
                        obs.clock.now().duration_since(eval_started).as_secs_f64() * 1e3,
                    );
                }
            }
        }
        answer
    }

    /// The body of [`execute`](AqpSession::execute), recording lifecycle
    /// stages on `rec`.
    fn execute_traced(&self, sql: &str, rec: &TraceRecorder) -> Result<AqpAnswer> {
        let query = rec.in_span(stage::PARSE, || parse_query(sql))?;
        let table_name = leaf_table_name(&query)?;
        let table = self.catalog.table(&table_name)?;
        let plan = rec.in_span(stage::PLAN, || plan_query(&query, table.schema()))?;
        let registry = self.registry.lock().clone();

        // --- Stratified fast path: a single-column GROUP BY with a
        // matching stratified sample uses per-stratum scaling. ---
        if query.group_by.len() == 1 && !query.is_nested() {
            let sel = rec.start(stage::SAMPLE_SELECTION);
            let strat = self.catalog.with_samples(&table_name, |set| {
                Ok(set
                    .stratified_on(&query.group_by[0])
                    .map(|s| (s.meta.clone(), s.data.clone())))
            })?;
            if let Some((meta, sample_table)) = strat {
                rec.attr(sel, "strategy", "stratified");
                rec.attr(sel, "sample_rows", meta.rows);
                rec.end(sel);
                return self.execute_on_sample(
                    sql, &query, &plan, &table, &registry, meta, sample_table, rec,
                );
            }
            rec.end(sel);
        }

        let has_samples = self
            .catalog
            .with_samples(&table_name, |s| Ok(s.uniform_samples().next().is_some()))
            .unwrap_or(false);
        if !has_samples {
            let answer = self.exact_answer(&plan, &table, &registry, AnswerMode::Exact, rec)?;
            return apply_having(&query, answer);
        }

        // --- Sample selection. ---
        let sel = rec.start(stage::SAMPLE_SELECTION);
        let confidence = query
            .error_clause
            .map(|e| e.confidence)
            .unwrap_or(self.config.default_confidence);
        let wanted_rows = match query.error_clause {
            None => usize::MAX, // largest sample
            Some(e) => self
                .pilot_required_rows(&plan, &table_name, table.num_rows(), &registry, e.relative_error, confidence, rec)?
                .unwrap_or(usize::MAX),
        };
        let sample = self.catalog.with_samples(&table_name, |set| {
            let s = match set.best_for(wanted_rows) {
                Ok(s) => s,
                Err(_) => set.largest().expect("non-empty sample set"),
            };
            Ok((s.meta.clone(), s.data.clone()))
        })?;
        let (meta, sample_table) = sample;
        rec.attr(sel, "strategy", "uniform");
        if wanted_rows != usize::MAX {
            rec.attr(sel, "wanted_rows", wanted_rows);
        }
        rec.attr(sel, "sample_rows", meta.rows);
        rec.end(sel);
        self.execute_on_sample(sql, &query, &plan, &table, &registry, meta, sample_table, rec)
    }


    /// Run the approximate pipeline on a chosen sample (uniform or
    /// stratified) with the per-result reliability gate and exact merge.
    #[allow(clippy::too_many_arguments)]
    fn execute_on_sample(
        &self,
        sql: &str,
        query: &Query,
        plan: &LogicalPlan,
        table: &Table,
        registry: &UdfRegistry,
        meta: aqp_storage::SampleMeta,
        sample_table: Table,
        rec: &TraceRecorder,
    ) -> Result<AqpAnswer> {
        let confidence = query
            .error_clause
            .map(|e| e.confidence)
            .unwrap_or(self.config.default_confidence);

        // --- Plan rewrite (§5.3): consolidated resample, pushed down. ---
        let diag_cfg = if self.config.run_diagnostics {
            Some(DiagnosticConfig::scaled_to(meta.rows, self.config.diagnostic_p))
        } else {
            None
        };
        let method = if query.closed_form_applicable() {
            ErrorMethod::ClosedForm
        } else {
            ErrorMethod::Bootstrap
        };
        let spec = ResampleSpec {
            bootstrap_k: self.config.bootstrap_k,
            diagnostic: diag_cfg.as_ref().map(|c| DiagnosticWeights {
                subsample_rows: c.subsample_rows.clone(),
                p: c.p,
            }),
            seed: self.config.seed,
        };
        let rewritten = rewrite_for_error_estimation(
            plan.clone(),
            spec,
            method,
            confidence,
            ResamplePlacement::PushedDown,
        );

        // Per-stratum scaling for stratified samples.
        let group_contexts = meta.strata.as_ref().map(|st| {
            st.groups
                .iter()
                .map(|g| (g.key.clone(), (g.sample_rows, g.population_rows)))
                .collect::<std::collections::HashMap<_, _>>()
        });

        // --- Approximate execution. ---
        let opts = ApproxOptions {
            method: MethodChoice::Auto,
            bootstrap_k: self.config.bootstrap_k,
            alpha: confidence,
            diagnostic: diag_cfg,
            seed: self.config.seed,
            threads: self.config.threads,
            group_contexts,
            obs: self.config.obs.clone(),
            faults: self.config.faults.clone(),
        };
        let approx = match execute_approx(&rewritten, &sample_table, table.num_rows(), registry, &opts)
        {
            Ok(a) => a,
            Err(aqp_exec::ExecError::Degraded { lost_partitions, total_partitions }) => {
                // Injected faults lost more of the sample than the
                // recovery policy tolerates: refuse the degraded
                // approximation and serve exact truth instead.
                self.config.obs.metrics.counter(name::FAULTS_EXACT_FALLBACKS).inc();
                if let Some(slo) = &self.slo {
                    slo.recorder.dump_with_context(
                        "exec:degraded",
                        &self.config.obs.metrics.snapshot(),
                        &[("trigger", "degraded_exact_fallback")],
                    );
                }
                let gate = rec.start(stage::RELIABILITY_GATE);
                rec.attr(gate, "degraded_lost_partitions", lost_partitions);
                rec.attr(gate, "degraded_total_partitions", total_partitions);
                rec.end(gate);
                let answer =
                    self.exact_answer(plan, table, registry, AnswerMode::ExactFallback, rec)?;
                return apply_having(query, answer);
            }
            Err(e) => return Err(e.into()),
        };
        rec.graft(approx.trace.clone());

        // --- Reliability gate, per result (§2.1: each group-aggregate is
        // its own query). Rejected results are replaced with exact values;
        // approved ones keep their error bars. ---
        let gate = rec.start(stage::RELIABILITY_GATE);
        let total_results: usize = approx.groups.iter().map(|g| g.aggs.len()).sum();
        let rejected: usize = approx
            .groups
            .iter()
            .flat_map(|g| g.aggs.iter())
            .filter(|a| !a.error_bars_reliable())
            .count();
        rec.attr(gate, "results", total_results);
        rec.attr(gate, "rejected", rejected);
        if let Some(d) = &approx.degraded {
            // The gate (and anyone reading the trace) sees the reduced
            // effective sample behind these error bars.
            rec.attr(gate, "degraded_effective_rows", d.effective_rows);
            rec.attr(gate, "degraded_planned_rows", d.planned_rows);
            rec.attr(gate, "widen_factor", d.widen_factor);
        }
        if rejected == 0 {
            rec.end(gate);
            self.maybe_audit(sql, &approx, None, plan, table, registry, rec);
            return apply_having(query, AqpAnswer {
                groups: approx.groups,
                mode: if self.config.run_diagnostics {
                    AnswerMode::Approximate
                } else {
                    AnswerMode::ApproximateUnchecked
                },
                fell_back: false,
                sample_rows: approx.sample_rows,
                population_rows: approx.population_rows,
                timings: approx.timings,
                trace: QueryTrace::default(),
                plan: rewritten.explain(),
                profile: None,
                degraded: approx.degraded,
            });
        }

        // Exact execution once; merge per result. The exact run's group
        // set is authoritative (the sample can miss rare groups entirely).
        let exact =
            execute_exact_observed(plan, table, registry, self.config.threads, &self.config.obs)?;
        rec.graft(exact.trace.clone());
        // The fallback already paid for full-data truth; the auditor can
        // score this query for free.
        self.maybe_audit(sql, &approx, Some(&exact), plan, table, registry, rec);
        let approx_index: std::collections::HashMap<&str, &aqp_exec::result::GroupResult> =
            approx.groups.iter().map(|g| (g.key.as_str(), g)).collect();
        let merged: Vec<aqp_exec::result::GroupResult> = exact
            .groups
            .iter()
            .map(|(key, vals)| aqp_exec::result::GroupResult {
                key: key.clone(),
                aggs: vals
                    .iter()
                    .enumerate()
                    .map(|(ai, &exact_v)| {
                        if let Some(g) = approx_index.get(key.as_str()) {
                            if let Some(a) = g.aggs.get(ai) {
                                if a.error_bars_reliable() {
                                    return a.clone();
                                }
                                // Rejected: serve exact, keep the verdict.
                                return aqp_exec::result::AggResult {
                                    name: a.name.clone(),
                                    estimate: exact_v,
                                    ci: None,
                                    method: aqp_exec::result::MethodUsed::None,
                                    diagnostic: a.diagnostic.clone(),
                                };
                            }
                        }
                        aqp_exec::result::AggResult {
                            name: format!("agg{ai}"),
                            estimate: exact_v,
                            ci: None,
                            method: aqp_exec::result::MethodUsed::None,
                            diagnostic: None,
                        }
                    })
                    .collect(),
            })
            .collect();
        let mode = if rejected == total_results {
            self.config.obs.metrics.counter(name::CORE_FALLBACKS_EXACT).inc();
            AnswerMode::ExactFallback
        } else {
            self.config.obs.metrics.counter(name::CORE_FALLBACKS_PARTIAL).inc();
            AnswerMode::PartialFallback
        };
        rec.end(gate);
        apply_having(query, AqpAnswer {
            groups: merged,
            mode,
            fell_back: true,
            sample_rows: approx.sample_rows,
            population_rows: approx.population_rows,
            timings: approx.timings,
            trace: QueryTrace::default(),
            plan: rewritten.explain(),
            profile: None,
            degraded: approx.degraded,
        })
    }

    /// Execute on the specific stored uniform sample of `rows` rows
    /// (progressive execution's per-step primitive).
    pub(crate) fn execute_with_sample_rows(&self, sql: &str, rows: usize) -> Result<AqpAnswer> {
        let rec = self.config.obs.recorder();
        let result = (|| {
            let query = rec.in_span(stage::PARSE, || parse_query(sql))?;
            let table_name = leaf_table_name(&query)?;
            let table = self.catalog.table(&table_name)?;
            let plan = rec.in_span(stage::PLAN, || plan_query(&query, table.schema()))?;
            let registry = self.registry.lock().clone();
            let sample = rec.in_span(stage::SAMPLE_SELECTION, || {
                self.catalog.with_samples(&table_name, |set| {
                    Ok(set
                        .uniform_samples()
                        .find(|s| s.meta.rows == rows)
                        .map(|s| (s.meta.clone(), s.data.clone())))
                })
            })?;
            let Some((meta, sample_table)) = sample else {
                return Err(crate::CoreError::Config(format!(
                    "no stored uniform sample of exactly {rows} rows"
                )));
            };
            self.execute_on_sample(sql, &query, &plan, &table, &registry, meta, sample_table, &rec)
        })();
        finish_with_trace(rec, result, self.config.explain)
    }

    /// Execute exactly, ignoring samples.
    pub(crate) fn execute_exact_only(&self, sql: &str) -> Result<AqpAnswer> {
        let rec = self.config.obs.recorder();
        let result = (|| {
            let query = rec.in_span(stage::PARSE, || parse_query(sql))?;
            let table_name = leaf_table_name(&query)?;
            let table = self.catalog.table(&table_name)?;
            let plan = rec.in_span(stage::PLAN, || plan_query(&query, table.schema()))?;
            let registry = self.registry.lock().clone();
            let answer = self.exact_answer(&plan, &table, &registry, AnswerMode::Exact, &rec)?;
            apply_having(&query, answer)
        })();
        finish_with_trace(rec, result, self.config.explain)
    }

    fn exact_answer(
        &self,
        plan: &LogicalPlan,
        table: &Table,
        registry: &UdfRegistry,
        mode: AnswerMode,
        rec: &TraceRecorder,
    ) -> Result<AqpAnswer> {
        let exact =
            execute_exact_observed(plan, table, registry, self.config.threads, &self.config.obs)?;
        rec.graft(exact.trace.clone());
        let groups = exact
            .groups
            .iter()
            .map(|(key, vals)| aqp_exec::result::GroupResult {
                key: key.clone(),
                aggs: vals
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| aqp_exec::result::AggResult {
                        name: format!("agg{i}"),
                        estimate: v,
                        ci: None,
                        method: aqp_exec::result::MethodUsed::None,
                        diagnostic: None,
                    })
                    .collect(),
            })
            .collect();
        Ok(AqpAnswer {
            groups,
            mode,
            fell_back: matches!(mode, AnswerMode::ExactFallback),
            sample_rows: 0,
            population_rows: table.num_rows(),
            timings: StageTimings::default(),
            trace: QueryTrace::default(),
            plan: plan.explain(),
            profile: None,
            degraded: None,
        })
    }

    /// Consider a completed approximate query for auditing; when the
    /// deterministic sampler selects it, obtain full-data truth (reusing
    /// `exact` if the fallback path already computed it, otherwise
    /// replaying under an `audit_replay` span) and hand the scored pairs
    /// to the auditor. Infallible by design: an audit failure must never
    /// fail or alter the query it audits.
    #[allow(clippy::too_many_arguments)]
    fn maybe_audit(
        &self,
        sql: &str,
        approx: &aqp_exec::result::ApproxResult,
        exact: Option<&aqp_exec::result::ExactResult>,
        plan: &LogicalPlan,
        table: &Table,
        registry: &UdfRegistry,
        rec: &TraceRecorder,
    ) {
        let Some(auditor) = &self.auditor else { return };
        let Some(ordinal) = auditor.should_audit() else { return };
        let obs = &self.config.obs;
        let (truth_groups, replay_ms) = match exact {
            Some(e) => (e.groups.clone(), 0.0),
            None => {
                let span = rec.start(stage::AUDIT_REPLAY);
                let started = obs.clock.now();
                let replay =
                    execute_exact_observed(plan, table, registry, self.config.threads, obs);
                let ms = obs.clock.now().duration_since(started).as_secs_f64() * 1e3;
                // Nest the replay's own engine spans under the
                // audit-replay span so `StageTimings::audit_replay()`
                // and the operator profile both see the replay cost.
                if let Ok(e) = &replay {
                    rec.graft(e.trace.clone());
                }
                rec.end(span);
                match replay {
                    Ok(e) => (e.groups, ms),
                    Err(_) => return,
                }
            }
        };
        let truth_index: std::collections::HashMap<&str, &Vec<f64>> =
            truth_groups.iter().map(|(k, v)| (k.as_str(), v)).collect();
        let cfg = auditor.config();
        let mut aggregates = Vec::new();
        for g in &approx.groups {
            let Some(vals) = truth_index.get(g.key.as_str()) else { continue };
            for (ai, a) in g.aggs.iter().enumerate() {
                let Some(&truth) = vals.get(ai) else { continue };
                let (agg, column) = split_agg_name(&a.name);
                aggregates.push(AuditedAggregate {
                    agg: agg.to_string(),
                    column: column.to_string(),
                    family: cfg.family_of(column).to_string(),
                    estimate: a.estimate,
                    ci: a.ci,
                    diagnostic_accepted: a.diagnostic.as_ref().map(|d| d.accepted),
                    truth,
                });
            }
        }
        let slo_scores: Vec<aqp_audit::AuditScore> = if self.slo.is_some() {
            aggregates.iter().map(aqp_audit::score).collect()
        } else {
            Vec::new()
        };
        // Fold the scored aggregates into `_telemetry.audit` before the
        // auditor consumes them (ingest takes ownership).
        if let Some(intr) = &self.introspect {
            if intr.should_fold(sql) {
                intr.fold_audit(ordinal, sql, &aggregates);
            }
        }
        let audit_alerts = auditor.ingest(QueryAudit {
            ordinal,
            sql: sql.to_string(),
            replay_ms,
            aggregates,
        });
        if let Some(intr) = &self.introspect {
            if intr.should_fold(sql) {
                for alert in &audit_alerts {
                    intr.fold_slo_alert(sql, &alert.key, "warn", "audit");
                }
            }
        }
        if let Some(slo) = &self.slo {
            let eval_started = obs.clock.now();
            let class = slo.engine.classify(sql);
            let (slo_alerts, _drift) =
                slo.engine.observe_audit(class, &slo_scores, eval_started);
            for alert in &audit_alerts {
                slo.recorder.dump_with_context(
                    &format!("audit:{}", alert.key),
                    &obs.metrics.snapshot(),
                    &[("class", class), ("trigger", "audit"), ("alert", alert.key.as_str())],
                );
            }
            for alert in &slo_alerts {
                let reason =
                    format!("slo:{}:{}", alert.severity.as_str(), alert.objective);
                slo.recorder.dump_with_context(
                    &reason,
                    &obs.metrics.snapshot(),
                    &[
                        ("class", alert.class.as_str()),
                        ("objective", alert.objective.as_str()),
                        ("severity", alert.severity.as_str()),
                        ("trigger", "audit_score"),
                    ],
                );
            }
            if let Some(intr) = &self.introspect {
                if intr.should_fold(sql) {
                    for alert in &slo_alerts {
                        intr.fold_slo_alert(
                            sql,
                            &alert.objective,
                            alert.severity.as_str(),
                            "audit_score",
                        );
                    }
                }
            }
            obs.metrics
                .histogram(name::SLO_EVAL_MS)
                .record_ms(obs.clock.now().duration_since(eval_started).as_secs_f64() * 1e3);
        }
    }

    /// Run the pilot to translate an error clause into required rows.
    #[allow(clippy::too_many_arguments)]
    fn pilot_required_rows(
        &self,
        plan: &LogicalPlan,
        table_name: &str,
        population_rows: usize,
        registry: &UdfRegistry,
        rel_err: f64,
        confidence: f64,
        rec: &TraceRecorder,
    ) -> Result<Option<usize>> {
        let pilot = self.catalog.with_samples(table_name, |set| {
            // The smallest stored uniform sample serves as the pilot.
            Ok(set
                .best_for(1)
                .ok()
                .or_else(|| set.uniform_samples().next())
                .cloned())
        })?;
        let Some(pilot) = pilot else {
            return Ok(None);
        };
        let opts = ApproxOptions {
            method: MethodChoice::Auto,
            bootstrap_k: 50,
            alpha: confidence,
            diagnostic: None,
            seed: self.config.seed ^ 0xB107,
            threads: self.config.threads,
            group_contexts: None,
            obs: self.config.obs.clone(),
            // The pilot sizes samples; it must not be perturbed by
            // injected faults (the real query still is).
            faults: None,
        };
        let approx =
            execute_approx(plan, &pilot.data, population_rows, registry, &opts)?;
        // The pilot's engine stages nest under the open sample-selection
        // span — the pilot *is* part of choosing the sample.
        rec.graft(approx.trace.clone());
        // Use the widest relative interval across groups/aggregates (the
        // binding constraint).
        let mut needed: Option<usize> = None;
        for g in &approx.groups {
            for a in &g.aggs {
                if let Some(ci) = &a.ci {
                    if let Some(n) = required_sample_rows(ci, approx.sample_rows, rel_err) {
                        needed = Some(needed.map_or(n, |m: usize| m.max(n)));
                    }
                }
            }
        }
        Ok(needed)
    }
}

/// Close the lifecycle recorder and attach the finished trace (plus the
/// stage timings derived from it, and — when `explain` asks for one —
/// the operator profile) to a successful answer.
fn finish_with_trace(
    rec: TraceRecorder,
    result: Result<AqpAnswer>,
    explain: ExplainMode,
) -> Result<AqpAnswer> {
    let trace = rec.finish();
    result.map(|mut a| {
        a.timings = StageTimings::from_trace(&trace);
        if explain != ExplainMode::Off {
            a.profile = OpProfile::from_trace(&trace);
        }
        a.trace = trace;
        a
    })
}

/// The `_telemetry.queries.mode` label of an answer mode.
fn mode_label(mode: AnswerMode) -> &'static str {
    match mode {
        AnswerMode::Approximate => "approximate",
        AnswerMode::ApproximateUnchecked => "approximate_unchecked",
        AnswerMode::ExactFallback => "exact_fallback",
        AnswerMode::PartialFallback => "partial_fallback",
        AnswerMode::Exact => "exact",
    }
}

/// Apply a HAVING predicate to an answer's groups: each group becomes a
/// one-row batch of its GROUP BY keys plus its aggregate estimates
/// (named by their SELECT aliases, positionally), and groups where the
/// predicate is not true are dropped.
fn apply_having(query: &Query, answer: AqpAnswer) -> Result<AqpAnswer> {
    let answer = apply_having_inner(query, answer)?;
    Ok(apply_order_limit(query, answer))
}

/// Sort and truncate output groups per ORDER BY / LIMIT.
fn apply_order_limit(query: &Query, mut answer: AqpAnswer) -> AqpAnswer {
    if let Some(o) = &query.order_by {
        // Positional lookup: group key index or aggregate alias index.
        let key_idx = query.group_by.iter().position(|g| g == &o.column);
        let agg_idx = query
            .select
            .iter()
            .filter_map(|item| match item {
                aqp_sql::ast::SelectItem::Agg(_, alias) => Some(alias.as_deref()),
                _ => None,
            })
            .position(|alias| alias == Some(o.column.as_str()));
        answer.groups.sort_by(|a, b| {
            let ord = if let Some(ai) = agg_idx {
                a.aggs[ai].estimate.total_cmp(&b.aggs[ai].estimate)
            } else if let Some(ki) = key_idx {
                let part = |g: &aqp_exec::result::GroupResult| {
                    g.key.split('\u{1f}').nth(ki).unwrap_or("").to_owned()
                };
                let (pa, pb) = (part(a), part(b));
                match (pa.parse::<f64>(), pb.parse::<f64>()) {
                    (Ok(x), Ok(y)) => x.total_cmp(&y),
                    _ => pa.cmp(&pb),
                }
            } else {
                std::cmp::Ordering::Equal
            };
            if o.descending {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(l) = query.limit {
        answer.groups.truncate(l);
    }
    answer
}

fn apply_having_inner(query: &Query, mut answer: AqpAnswer) -> Result<AqpAnswer> {
    let Some(having) = &query.having else {
        return Ok(answer);
    };
    // Positional aliases of the SELECT aggregates.
    let mut aliases: Vec<Option<String>> = Vec::new();
    for item in &query.select {
        if let aqp_sql::ast::SelectItem::Agg(_, alias) = item {
            aliases.push(alias.clone());
        }
    }
    let keep = |group: &aqp_exec::result::GroupResult| -> Result<bool> {
        let mut fields = Vec::new();
        let mut cols = Vec::new();
        // Group keys: numeric when parseable, string otherwise.
        let parts: Vec<&str> = if query.group_by.is_empty() {
            Vec::new()
        } else {
            group.key.split('\u{1f}').collect()
        };
        for (name, part) in query.group_by.iter().zip(parts) {
            match part.parse::<f64>() {
                Ok(v) => {
                    fields.push(aqp_storage::Field::new(name.clone(), aqp_storage::DataType::Float));
                    cols.push(aqp_storage::Column::from_f64s(vec![v]));
                }
                Err(_) => {
                    fields.push(aqp_storage::Field::new(name.clone(), aqp_storage::DataType::Str));
                    cols.push(aqp_storage::Column::from_strs(&[part]));
                }
            }
        }
        for (alias, agg) in aliases.iter().zip(&group.aggs) {
            if let Some(alias) = alias {
                fields.push(aqp_storage::Field::new(alias.clone(), aqp_storage::DataType::Float));
                cols.push(aqp_storage::Column::from_f64s(vec![agg.estimate]));
            }
        }
        let schema = aqp_storage::Schema::new(fields)?;
        let batch = aqp_storage::Batch::new(schema, cols)?;
        let mask = aqp_sql::expr::eval_predicate(having, &batch)?;
        Ok(mask[0])
    };
    let mut kept = Vec::with_capacity(answer.groups.len());
    for g in answer.groups.drain(..) {
        if keep(&g)? {
            kept.push(g);
        }
    }
    answer.groups = kept;
    Ok(answer)
}

/// Split a display name like `AVG(time)` into `("AVG", "time")`
/// (`COUNT(*)` → `("COUNT", "*")`; names without parens keep an empty
/// column).
fn split_agg_name(name: &str) -> (&str, &str) {
    match name.split_once('(') {
        Some((f, rest)) => (f, rest.strip_suffix(')').unwrap_or(rest)),
        None => (name, ""),
    }
}

fn leaf_table_name(query: &Query) -> Result<String> {
    match &query.from {
        aqp_sql::TableRef::Table(t) => Ok(t.clone()),
        aqp_sql::TableRef::Subquery(inner) => leaf_table_name(inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_workload::{conviva_sessions_table, facebook_events_table};

    fn session_with_sessions(rows: usize, sample_sizes: &[usize]) -> AqpSession {
        let s = AqpSession::new(SessionConfig { seed: 42, ..Default::default() });
        s.register_table(conviva_sessions_table(rows, 8, 1)).unwrap();
        s.build_samples("sessions", sample_sizes, 7).unwrap();
        s
    }

    #[test]
    fn exact_when_no_samples() {
        let s = AqpSession::new(SessionConfig::default());
        s.register_table(conviva_sessions_table(10_000, 4, 1)).unwrap();
        let a = s.execute("SELECT AVG(time) FROM sessions").unwrap();
        assert_eq!(a.mode, AnswerMode::Exact);
        assert!(a.scalar().unwrap().ci.is_none());
    }

    #[test]
    fn approximate_with_reliable_error_bars() {
        let s = session_with_sessions(200_000, &[40_000]);
        let a = s.execute("SELECT AVG(time) FROM sessions").unwrap();
        assert_eq!(a.mode, AnswerMode::Approximate, "{}", a.summary());
        assert!(!a.fell_back);
        let r = a.scalar().unwrap();
        let ci = r.ci.unwrap();
        assert!(ci.half_width > 0.0);
        // Sanity: the estimate is near the exact answer.
        let exact = {
            let s2 = AqpSession::new(SessionConfig::default());
            s2.register_table(conviva_sessions_table(200_000, 8, 1)).unwrap();
            s2.execute("SELECT AVG(time) FROM sessions").unwrap().scalar().unwrap().estimate
        };
        assert!((r.estimate - exact).abs() / exact < 0.05, "{} vs {exact}", r.estimate);
    }

    #[test]
    fn error_clause_picks_smaller_sample_when_enough() {
        let s = session_with_sessions(200_000, &[2_000, 10_000, 50_000]);
        // A loose 20% bound should not need the 50k sample.
        let a = s
            .execute("SELECT AVG(time) FROM sessions WITHIN 20% ERROR AT CONFIDENCE 95%")
            .unwrap();
        assert!(a.sample_rows <= 10_000, "used {} rows", a.sample_rows);
        // A very tight bound should use the largest.
        let b = s
            .execute("SELECT AVG(time) FROM sessions WITHIN 0.1% ERROR AT CONFIDENCE 95%")
            .unwrap();
        assert!(b.sample_rows >= 50_000 || b.fell_back, "used {} rows", b.sample_rows);
    }

    #[test]
    fn falls_back_on_unreliable_extreme_aggregate() {
        // MAX over Pareto payloads: the diagnostic must reject and the
        // session must return the exact answer.
        let s = AqpSession::new(SessionConfig { seed: 3, ..Default::default() });
        s.register_table(facebook_events_table(200_000, 8, 2)).unwrap();
        s.build_samples("events", &[40_000], 11).unwrap();
        let a = s.execute("SELECT MAX(payload_kb) FROM events").unwrap();
        assert_eq!(a.mode, AnswerMode::ExactFallback, "{}", a.summary());
        assert!(a.fell_back);
        // Exact value: the true maximum.
        let exact = s
            .catalog()
            .table("events")
            .unwrap()
            .to_batch()
            .unwrap()
            .column_by_name("payload_kb")
            .unwrap()
            .to_f64_vec()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(a.scalar().unwrap().estimate, exact);
    }

    #[test]
    fn group_by_query_end_to_end() {
        let s = session_with_sessions(100_000, &[20_000]);
        let a = s.execute("SELECT city, COUNT(*) FROM sessions GROUP BY city").unwrap();
        assert!(a.groups.len() >= 8, "groups: {}", a.groups.len());
        let total: f64 = a.groups.iter().map(|g| g.aggs[0].estimate).sum();
        assert!((total - 100_000.0).abs() / 100_000.0 < 0.05, "total {total}");
    }

    #[test]
    fn udf_query_end_to_end() {
        let s = session_with_sessions(100_000, &[20_000]);
        let a = s.execute("SELECT trimmed_mean(time) FROM sessions").unwrap();
        let r = a.scalar().unwrap();
        assert!(r.estimate > 0.0);
        if !a.fell_back {
            assert_eq!(r.method, aqp_exec::result::MethodUsed::Bootstrap);
        }
    }

    #[test]
    fn custom_udf_registration() {
        let s = session_with_sessions(50_000, &[10_000]);
        s.register_udf(
            "mean_log",
            aqp_stats::estimator::Udf::new("mean_log", |xs| {
                xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).sum::<f64>()
                    / xs.iter().filter(|&&x| x > 0.0).count().max(1) as f64
            }),
        );
        let a = s.execute("SELECT mean_log(time) FROM sessions").unwrap();
        assert!(a.scalar().unwrap().estimate.is_finite());
    }

    #[test]
    fn plan_shows_pushed_down_resample() {
        let s = session_with_sessions(50_000, &[10_000]);
        let a = s.execute("SELECT AVG(time) FROM sessions WHERE city = 'NYC'").unwrap();
        let lines: Vec<&str> = a.plan.lines().map(str::trim_start).collect();
        let resample_idx = lines.iter().position(|l| l.starts_with("Resample")).unwrap();
        let filter_idx = lines.iter().position(|l| l.starts_with("Filter")).unwrap();
        assert!(
            resample_idx < filter_idx,
            "resample should sit above the filter (pushed down): {}",
            a.plan
        );
    }

    #[test]
    fn stratified_sample_serves_group_by_with_per_stratum_scaling() {
        let rows = 120_000;
        let s = AqpSession::new(SessionConfig { seed: 8, ..Default::default() });
        s.register_table(conviva_sessions_table(rows, 8, 4)).unwrap();
        s.build_stratified_sample("sessions", "city", 1_500, 9).unwrap();

        // COUNT per city on a stratified sample must be *exact* per group
        // (each stratum's count estimate = n_g · N_g/n_g = N_g).
        let a = s.execute("SELECT city, COUNT(*) FROM sessions GROUP BY city").unwrap();
        let exact = AqpSession::new(SessionConfig::default());
        exact.register_table(conviva_sessions_table(rows, 8, 4)).unwrap();
        let e = exact.execute("SELECT city, COUNT(*) FROM sessions GROUP BY city").unwrap();
        for (ga, ge) in a.groups.iter().zip(e.groups.iter()) {
            assert_eq!(ga.key, ge.key);
            assert!(
                (ga.aggs[0].estimate - ge.aggs[0].estimate).abs() < 1e-6,
                "group {}: {} vs {}",
                ga.key,
                ga.aggs[0].estimate,
                ge.aggs[0].estimate
            );
        }

        // AVG per city tracks the exact per-group means, including rare
        // cities a 1.5%-uniform sample would starve.
        let a = s.execute("SELECT city, AVG(time) FROM sessions GROUP BY city").unwrap();
        let e = exact.execute("SELECT city, AVG(time) FROM sessions GROUP BY city").unwrap();
        assert_eq!(a.groups.len(), e.groups.len());
        for (ga, ge) in a.groups.iter().zip(e.groups.iter()) {
            let rel = (ga.aggs[0].estimate - ge.aggs[0].estimate).abs() / ge.aggs[0].estimate;
            assert!(rel < 0.08, "group {}: rel {rel}", ga.key);
        }
    }

    #[test]
    fn stratified_sample_with_where_clause_scales_per_stratum() {
        let rows = 120_000;
        let s = AqpSession::new(SessionConfig { seed: 14, ..Default::default() });
        s.register_table(conviva_sessions_table(rows, 8, 14)).unwrap();
        s.build_stratified_sample("sessions", "city", 2_000, 15).unwrap();
        let exact = AqpSession::new(SessionConfig::default());
        exact.register_table(conviva_sessions_table(rows, 8, 14)).unwrap();
        let sql = "SELECT city, COUNT(*) FROM sessions WHERE is_mobile = true GROUP BY city";
        let a = s.execute(sql).unwrap();
        let e = exact.execute(sql).unwrap();
        // Filtered per-stratum counts must track the exact values under
        // per-stratum scaling (within sampling error of the strata).
        for (ga, ge) in a.groups.iter().zip(e.groups.iter()) {
            assert_eq!(ga.key, ge.key);
            let rel = (ga.aggs[0].estimate - ge.aggs[0].estimate).abs()
                / ge.aggs[0].estimate.max(1.0);
            assert!(rel < 0.15, "group {}: {} vs {} ({rel})", ga.key, ga.aggs[0].estimate, ge.aggs[0].estimate);
        }
    }

    #[test]
    fn stratified_sample_does_not_leak_into_uniform_queries() {
        let s = AqpSession::new(SessionConfig { seed: 10, ..Default::default() });
        s.register_table(conviva_sessions_table(50_000, 8, 6)).unwrap();
        s.build_stratified_sample("sessions", "city", 500, 11).unwrap();
        // No uniform samples exist: a non-grouped query must run exactly.
        let a = s.execute("SELECT AVG(time) FROM sessions").unwrap();
        assert_eq!(a.mode, AnswerMode::Exact);
        // GROUP BY on a different column also cannot use the city strata.
        let a = s.execute("SELECT site, COUNT(*) FROM sessions GROUP BY site").unwrap();
        assert_eq!(a.mode, AnswerMode::Exact);
    }

    #[test]
    fn having_filters_groups_on_both_paths() {
        let rows = 100_000;
        // Exact path.
        let exact = AqpSession::new(SessionConfig::default());
        exact.register_table(conviva_sessions_table(rows, 8, 12)).unwrap();
        let all = exact.execute("SELECT city, COUNT(*) AS c FROM sessions GROUP BY city").unwrap();
        let big = exact
            .execute("SELECT city, COUNT(*) AS c FROM sessions GROUP BY city HAVING c > 10000")
            .unwrap();
        assert!(big.groups.len() < all.groups.len());
        assert!(big.groups.iter().all(|g| g.aggs[0].estimate > 10_000.0));
        // NYC (Zipf rank 1) must survive.
        assert!(big.groups.iter().any(|g| g.key == "NYC"));

        // Approximate path.
        let s = session_with_sessions(rows, &[20_000]);
        let approx = s
            .execute("SELECT city, COUNT(*) AS c FROM sessions GROUP BY city HAVING c > 10000")
            .unwrap();
        assert!(!approx.groups.is_empty());
        assert!(approx.groups.iter().all(|g| g.aggs[0].estimate > 10_000.0));
    }

    #[test]
    fn order_by_and_limit_shape_the_output() {
        let s = AqpSession::new(SessionConfig::default());
        s.register_table(conviva_sessions_table(60_000, 8, 15)).unwrap();
        let a = s
            .execute(
                "SELECT city, COUNT(*) AS c FROM sessions GROUP BY city ORDER BY c DESC LIMIT 3",
            )
            .unwrap();
        assert_eq!(a.groups.len(), 3);
        assert_eq!(a.groups[0].key, "NYC"); // Zipf rank 1
        let counts: Vec<f64> = a.groups.iter().map(|g| g.aggs[0].estimate).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");

        // ORDER BY a group key ascending.
        let b = s
            .execute("SELECT city, AVG(time) AS t FROM sessions GROUP BY city ORDER BY city LIMIT 2")
            .unwrap();
        assert!(b.groups[0].key <= b.groups[1].key);

        // Unknown sort column is a plan error.
        assert!(s
            .execute("SELECT city, COUNT(*) FROM sessions GROUP BY city ORDER BY nope")
            .is_err());
    }

    #[test]
    fn explain_renders_the_rewritten_plan() {
        let s = session_with_sessions(50_000, &[10_000]);
        let plan = s.explain("SELECT AVG(time) FROM sessions WHERE city = 'NYC'").unwrap();
        assert!(plan.contains("Diagnostic["), "{plan}");
        assert!(plan.contains("ErrorEstimate[ClosedForm"), "{plan}");
        assert!(plan.contains("Resample["), "{plan}");
        // No samples: bare plan, no estimation operators.
        let bare = AqpSession::new(SessionConfig::default());
        bare.register_table(conviva_sessions_table(1_000, 2, 99)).unwrap();
        let plan = bare.explain("SELECT AVG(time) FROM sessions").unwrap();
        assert!(!plan.contains("Resample"), "{plan}");
    }

    #[test]
    fn session_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AqpSession>();
    }

    #[test]
    fn unknown_table_errors() {
        let s = AqpSession::new(SessionConfig::default());
        assert!(s.execute("SELECT AVG(x) FROM nope").is_err());
    }
}

//! # aqp-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation. Each `fig*` binary prints a machine-readable TSV
//! block plus an ASCII rendering, and states the paper's published
//! numbers next to the measured ones (EXPERIMENTS.md records the
//! comparison).
//!
//! Binaries (`cargo run --release -p aqp-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_sample_sizes` | Fig. 1 — required sample size vs target error per technique |
//! | `fig3_estimation_accuracy` | Fig. 3 — % correct/optimistic/pessimistic per workload × technique |
//! | `fig4_diagnostic_accuracy` | Fig. 4(b)/(c) — diagnostic accuracy vs the ideal verdict |
//! | `fig7_baseline_latency` | Fig. 7(a)/(b) — naive per-query latency decomposition |
//! | `fig8_optimizations` | Fig. 8(a)–(f) — speedup CDFs + parallelism/cache sweeps |
//! | `fig9_optimized_latency` | Fig. 9(a)/(b) — optimized per-query latency decomposition |
//! | `table_workload_stats` | §3's workload-composition and failure-rate numbers |
//!
//! Criterion microbenches (`cargo bench -p aqp-bench`) cover the §5.1
//! resampling claims, weighted aggregation, error-estimation overheads,
//! and the diagnostic's cost.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// Percentile of an unsorted f64 slice (nearest rank).
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = (q.clamp(0.0, 1.0) * (v.len() - 1) as f64).round() as usize;
    v[pos]
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

/// Render a CDF of `values` as `steps` (value, fraction ≤ value) rows.
pub fn cdf_rows(values: &[f64], steps: usize) -> Vec<(f64, f64)> {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    (1..=steps)
        .map(|i| {
            let frac = i as f64 / steps as f64;
            let idx = ((frac * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
            (v[idx], frac)
        })
        .collect()
}

/// A fixed-width ASCII bar.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64).round().clamp(0.0, width as f64) as usize
    };
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { ' ' });
    }
    s
}

/// Format a TSV row.
pub fn tsv_row(cells: &[String]) -> String {
    cells.join("\t")
}

/// A labelled section header for bench output.
pub fn section(title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "\n{}", "=".repeat(72));
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "{}", "=".repeat(72));
    s
}

/// Tiny `--key value` argument parser (no external deps).
pub struct Args {
    raw: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self::parse()
    }
}

impl Args {
    /// Capture the process args.
    pub fn parse() -> Self {
        Args { raw: std::env::args().skip(1).collect() }
    }

    /// Value of `--key`, parsed.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        let flag = format!("--{key}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// Whether a bare `--flag` is present.
    pub fn has(&self, key: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{key}"))
    }
}

/// Honour a `--metrics <path>` flag: dump the process-global metrics
/// registry (counters, diagnostic verdicts, latency histograms with
/// p50/p95/p99) as a JSONL artifact. Every `fig*` binary calls this at
/// exit so CI's bench smoke step can upload the snapshot.
pub fn maybe_write_metrics(args: &Args) {
    let Some(path) = args.get::<String>("metrics") else { return };
    let snapshot = aqp_obs::MetricsRegistry::global().snapshot();
    match std::fs::write(&path, snapshot.to_jsonl()) {
        Ok(()) => eprintln!("metrics snapshot written to {path}"),
        Err(e) => eprintln!("failed writing metrics snapshot to {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_and_mean() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(mean(&xs), 3.0);
    }

    #[test]
    fn cdf_monotone() {
        let xs = [3.0, 1.0, 2.0, 10.0];
        let rows = cdf_rows(&xs, 4);
        assert_eq!(rows.len(), 4);
        assert!(rows.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(rows.last().unwrap().0, 10.0);
    }

    #[test]
    fn bars_clamp() {
        assert_eq!(bar(5.0, 10.0, 10), "#####     ");
        assert_eq!(bar(20.0, 10.0, 4), "####");
        assert_eq!(bar(0.0, 10.0, 3), "   ");
    }
}

//! Fig. 9(a)/(b) — the fully-optimized per-query latency decomposition:
//! §5.3 plan optimizations + §6 physical tuning (20 machines, 35% cache,
//! straggler mitigation).
//!
//! Paper's shape: end-to-end responses of a couple of seconds for both
//! query sets — interactive speed — with error estimation and diagnostics
//! reduced to sub-second overheads.

use aqp_bench::{bar, mean, percentile, section, tsv_row, Args};
use aqp_cluster::{simulate_query, ClusterConfig, PhysicalTuning, PlanMode};
use aqp_workload::{qset1, qset2};

fn main() {
    let args = Args::parse();
    let n_queries: usize = args.get("queries").unwrap_or(100);
    let seed: u64 = args.get("seed").unwrap_or(1);
    let cfg = ClusterConfig::default();
    let tuning = PhysicalTuning::tuned();

    for (name, queries) in [
        ("Fig. 9(a) — QSet-1 (closed-form queries), optimized + tuned", qset1(n_queries, seed)),
        ("Fig. 9(b) — QSet-2 (bootstrap-only queries), optimized + tuned", qset2(n_queries, seed)),
    ] {
        println!("{}", section(name));
        println!("TSV: query_id\tquery_s\terror_s\tdiag_s\ttotal_s");
        let mut totals = Vec::new();
        let mut queries_s = Vec::new();
        let mut errors_s = Vec::new();
        let mut diags_s = Vec::new();
        let mut rows = Vec::new();
        for q in &queries {
            let t =
                simulate_query(&q.profile, PlanMode::Optimized, &tuning, &cfg, seed ^ q.id as u64);
            rows.push((q.id, t));
            totals.push(t.total());
            queries_s.push(t.query_s);
            errors_s.push(t.error_s);
            diags_s.push(t.diag_s);
        }
        for (id, t) in &rows {
            println!(
                "{}",
                tsv_row(&[
                    id.to_string(),
                    format!("{:.3}", t.query_s),
                    format!("{:.3}", t.error_s),
                    format!("{:.3}", t.diag_s),
                    format!("{:.3}", t.total()),
                ])
            );
        }
        println!(
            "\nsummary: total mean {:.2}s  median {:.2}s  p99 {:.2}s  (paper: a couple of seconds)",
            mean(&totals),
            percentile(&totals, 0.5),
            percentile(&totals, 0.99)
        );
        println!(
            "phase means: query {:.2}s, error estimation {:.2}s, diagnostics {:.2}s",
            mean(&queries_s),
            mean(&errors_s),
            mean(&diags_s)
        );
        let max = totals.iter().copied().fold(f64::MIN, f64::max);
        println!("\nfirst 20 queries (linear-scale total time):");
        for (id, t) in rows.iter().take(20) {
            println!("  q{id:<3} {:>6.2}s |{}|", t.total(), bar(t.total(), max, 40));
        }
        assert!(
            mean(&totals) < 15.0,
            "optimized+tuned should be interactive; got mean {:.1}s",
            mean(&totals)
        );
    }

    aqp_bench::maybe_write_metrics(&args);
}

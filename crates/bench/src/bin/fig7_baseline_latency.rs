//! Fig. 7(a)/(b) — the naive (§5.2) per-query latency decomposition on
//! the simulated 100-node cluster: query execution time, error-estimation
//! overhead, diagnostics overhead.
//!
//! Paper's shape: QSet-1 (closed forms) lands in the tens of seconds,
//! dominated by the diagnostics overhead; QSet-2 (bootstrap-only) in the
//! hundreds of seconds, with both error estimation (100 full-sample
//! subqueries) and diagnostics (30,000 subqueries) huge.

use aqp_bench::{bar, mean, percentile, section, tsv_row, Args};
use aqp_cluster::{simulate_query, ClusterConfig, PhysicalTuning, PlanMode};
use aqp_workload::{qset1, qset2};

fn main() {
    let args = Args::parse();
    let n_queries: usize = args.get("queries").unwrap_or(100);
    let seed: u64 = args.get("seed").unwrap_or(1);
    let cfg = ClusterConfig::default();
    let tuning = PhysicalTuning::untuned(&cfg);

    for (name, queries, paper_scale) in [
        ("Fig. 7(a) — QSet-1 (closed-form queries), naive plan", qset1(n_queries, seed), "tens of seconds"),
        ("Fig. 7(b) — QSet-2 (bootstrap-only queries), naive plan", qset2(n_queries, seed), "hundreds of seconds"),
    ] {
        println!("{}", section(name));
        println!("paper scale: {paper_scale}; bars below are log-scaled");
        println!("TSV: query_id\tquery_s\terror_s\tdiag_s\ttotal_s");
        let mut totals = Vec::new();
        let mut queries_s = Vec::new();
        let mut errors_s = Vec::new();
        let mut diags_s = Vec::new();
        let mut rows = Vec::new();
        for q in &queries {
            let t = simulate_query(&q.profile, PlanMode::Naive, &tuning, &cfg, seed ^ q.id as u64);
            rows.push((q.id, t));
            totals.push(t.total());
            queries_s.push(t.query_s);
            errors_s.push(t.error_s);
            diags_s.push(t.diag_s);
        }
        for (id, t) in &rows {
            println!(
                "{}",
                tsv_row(&[
                    id.to_string(),
                    format!("{:.2}", t.query_s),
                    format!("{:.2}", t.error_s),
                    format!("{:.2}", t.diag_s),
                    format!("{:.2}", t.total()),
                ])
            );
        }
        println!(
            "\nsummary: total mean {:.1}s  median {:.1}s  p99 {:.1}s",
            mean(&totals),
            percentile(&totals, 0.5),
            percentile(&totals, 0.99)
        );
        println!(
            "phase means: query {:.2}s, error estimation {:.2}s, diagnostics {:.2}s",
            mean(&queries_s),
            mean(&errors_s),
            mean(&diags_s)
        );
        // ASCII chart of the first 20 queries (log scale).
        let max_log = totals.iter().map(|t| t.log10()).fold(f64::MIN, f64::max);
        println!("\nfirst 20 queries (log-scale total time):");
        for (id, t) in rows.iter().take(20) {
            println!(
                "  q{id:<3} {:>8.1}s |{}|",
                t.total(),
                bar(t.total().log10().max(0.0), max_log, 40)
            );
        }
    }

    aqp_bench::maybe_write_metrics(&args);
}

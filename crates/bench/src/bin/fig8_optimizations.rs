//! Fig. 8 — the optimization study:
//!
//! * (a)/(b) CDFs of the speedup from the §5.3 plan optimizations (scan
//!   consolidation + operator pushdown) for error estimation and
//!   diagnostics, per query set. Paper bands: QSet-1 error 1–2×,
//!   diagnostics 5–20×; QSet-2 error 20–60×, diagnostics 20–100×.
//! * (c) latency of (bootstrap error estimation + diagnostics) vs the
//!   degree of parallelism — most efficient around 20 machines.
//! * (d) end-to-end latency vs the fraction of samples cached — best at
//!   30–40%.
//! * (e)/(f) CDFs of the further speedup from physical tuning
//!   (parallelism bound, cache fraction, straggler clones) over the
//!   §5.3-optimized baseline.
//!
//! `--part plan|parallelism|cache|physical|all` selects sections.

use aqp_bench::{bar, cdf_rows, mean, section, tsv_row, Args};
use aqp_cluster::{simulate_query, ClusterConfig, PhysicalTuning, PlanMode, QueryProfile};
use aqp_workload::{qset1, qset2, TraceQuery};

fn plan_speedups(queries: &[TraceQuery], cfg: &ClusterConfig, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let untuned = PhysicalTuning::untuned(cfg);
    let mut err = Vec::new();
    let mut diag = Vec::new();
    for q in queries {
        let naive = simulate_query(&q.profile, PlanMode::Naive, &untuned, cfg, seed ^ q.id as u64);
        let opt =
            simulate_query(&q.profile, PlanMode::Optimized, &untuned, cfg, seed ^ q.id as u64);
        if opt.error_s > 0.0 {
            err.push(naive.error_s / opt.error_s);
        }
        if opt.diag_s > 0.0 {
            diag.push(naive.diag_s / opt.diag_s);
        }
    }
    (err, diag)
}

fn print_cdf(label: &str, speedups: &[f64]) {
    println!("\n{label} speedup CDF (TSV: speedup\tfraction<=):");
    for (v, f) in cdf_rows(speedups, 10) {
        println!("{}", tsv_row(&[format!("{v:.1}"), format!("{f:.1}")]));
    }
    println!(
        "  range {:.1}x – {:.1}x, mean {:.1}x",
        speedups.iter().copied().fold(f64::MAX, f64::min),
        speedups.iter().copied().fold(f64::MIN, f64::max),
        mean(speedups)
    );
}

fn main() {
    let args = Args::parse();
    let part: String = args.get("part").unwrap_or_else(|| "all".to_string());
    let n_queries: usize = args.get("queries").unwrap_or(100);
    let seed: u64 = args.get("seed").unwrap_or(1);
    let cfg = ClusterConfig::default();

    if part == "all" || part == "plan" {
        println!("{}", section("Fig. 8(a) — plan-optimization speedups, QSet-1"));
        let (err, diag) = plan_speedups(&qset1(n_queries, seed), &cfg, seed);
        print_cdf("error estimation (paper: 1-2x)", &err);
        print_cdf("diagnostics (paper: 5-20x)", &diag);

        println!("{}", section("Fig. 8(b) — plan-optimization speedups, QSet-2"));
        let (err, diag) = plan_speedups(&qset2(n_queries, seed), &cfg, seed);
        print_cdf("error estimation (paper: 20-60x)", &err);
        print_cdf("diagnostics (paper: 20-100x)", &diag);
    }

    if part == "all" || part == "parallelism" {
        println!("{}", section(
            "Fig. 8(c) — bootstrap error estimation + diagnostics latency vs #machines",
        ));
        println!("TSV: machines\tmean_latency_s\tq01\tq99");
        let queries = qset2(n_queries.min(50), seed);
        let mut best = (0usize, f64::MAX);
        let mut results = Vec::new();
        for m in [1usize, 2, 5, 10, 20, 30, 40, 60, 80, 100] {
            let tuning =
                PhysicalTuning { parallelism: m, cache_fraction: 0.35, straggler_mitigation: false };
            let lats: Vec<f64> = queries
                .iter()
                .map(|q| {
                    let t = simulate_query(
                        &q.profile,
                        PlanMode::Optimized,
                        &tuning,
                        &cfg,
                        seed ^ q.id as u64,
                    );
                    t.error_s + t.diag_s
                })
                .collect();
            let mu = mean(&lats);
            if mu < best.1 {
                best = (m, mu);
            }
            results.push((m, mu, aqp_bench::percentile(&lats, 0.01), aqp_bench::percentile(&lats, 0.99)));
        }
        let max = results.iter().map(|r| r.1).fold(f64::MIN, f64::max);
        for (m, mu, q01, q99) in &results {
            println!(
                "{}\t|{}|",
                tsv_row(&[
                    m.to_string(),
                    format!("{mu:.2}"),
                    format!("{q01:.2}"),
                    format!("{q99:.2}"),
                ]),
                bar(*mu, max, 30)
            );
        }
        println!(
            "\nsweet spot: {} machines (paper: \"most efficient when executed on up to 20 machines\")",
            best.0
        );
    }

    if part == "all" || part == "cache" {
        println!("{}", section("Fig. 8(d) — end-to-end latency vs fraction of samples cached"));
        println!("TSV: cache_fraction\tmean_total_s");
        let queries: Vec<_> =
            qset1(n_queries / 2, seed).into_iter().chain(qset2(n_queries / 2, seed)).collect();
        let mut best = (0.0f64, f64::MAX);
        let mut results = Vec::new();
        for step in 0..=10 {
            let frac = step as f64 / 10.0;
            let tuning = PhysicalTuning {
                parallelism: 20,
                cache_fraction: frac,
                straggler_mitigation: false,
            };
            let lats: Vec<f64> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    simulate_query(
                        &q.profile,
                        PlanMode::Optimized,
                        &tuning,
                        &cfg,
                        seed ^ i as u64,
                    )
                    .total()
                })
                .collect();
            let mu = mean(&lats);
            if mu < best.1 {
                best = (frac, mu);
            }
            results.push((frac, mu));
        }
        let max = results.iter().map(|r| r.1).fold(f64::MIN, f64::max);
        for (frac, mu) in &results {
            println!("{}\t|{}|", tsv_row(&[format!("{frac:.1}"), format!("{mu:.2}")]), bar(*mu, max, 30));
        }
        println!(
            "\noptimum: {:.0}% cached (paper: best at 30-40%, ~180-240 GB of RAM)",
            best.0 * 100.0
        );
    }

    if part == "all" || part == "physical" {
        for (name, queries, label) in [
            ("Fig. 8(e) — physical-tuning speedups, QSet-1", qset1(n_queries, seed), "QSet-1"),
            ("Fig. 8(f) — physical-tuning speedups, QSet-2", qset2(n_queries, seed), "QSet-2"),
        ] {
            println!("{}", section(name));
            let untuned = PhysicalTuning::untuned(&cfg);
            let tuned = PhysicalTuning::tuned();
            let mut speedups = Vec::new();
            for q in &queries {
                let base = simulate_query(
                    &q.profile,
                    PlanMode::Optimized,
                    &untuned,
                    &cfg,
                    seed ^ q.id as u64,
                );
                let fast = simulate_query(
                    &q.profile,
                    PlanMode::Optimized,
                    &tuned,
                    &cfg,
                    seed ^ q.id as u64,
                );
                speedups.push(base.total() / fast.total());
            }
            print_cdf(&format!("{label} end-to-end (tuned vs untuned optimized plan)"), &speedups);

            // Straggler-mitigation ablation (§7.3: "speeds up queries by
            // hundreds of milliseconds").
            let mut with_clone = tuned;
            with_clone.straggler_mitigation = true;
            let mut without_clone = tuned;
            without_clone.straggler_mitigation = false;
            let deltas: Vec<f64> = queries
                .iter()
                .map(|q| {
                    let a = simulate_query(
                        &q.profile,
                        PlanMode::Optimized,
                        &without_clone,
                        &cfg,
                        seed ^ q.id as u64,
                    );
                    let b = simulate_query(
                        &q.profile,
                        PlanMode::Optimized,
                        &with_clone,
                        &cfg,
                        seed ^ q.id as u64,
                    );
                    (a.total() - b.total()) * 1000.0
                })
                .collect();
            println!(
                "  straggler-mitigation ablation: mean saving {:.0} ms/query (paper: hundreds of ms)",
                mean(&deltas)
            );
        }
    }

    // A tiny self-check so CI catches calibration drift.
    let p1 = QueryProfile::qset1_default();
    let p2 = QueryProfile::qset2_default();
    let untuned = PhysicalTuning::untuned(&cfg);
    let n1 = simulate_query(&p1, PlanMode::Naive, &untuned, &cfg, 7);
    let o1 = simulate_query(&p1, PlanMode::Optimized, &untuned, &cfg, 7);
    let n2 = simulate_query(&p2, PlanMode::Naive, &untuned, &cfg, 7);
    let o2 = simulate_query(&p2, PlanMode::Optimized, &untuned, &cfg, 7);
    assert!(n1.diag_s / o1.diag_s > 3.0, "QSet-1 diag speedup degenerated");
    assert!(n2.error_s / o2.error_s > 10.0, "QSet-2 error speedup degenerated");

    aqp_bench::maybe_write_metrics(&args);
}

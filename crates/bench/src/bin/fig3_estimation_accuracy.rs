//! Fig. 3 — estimation accuracy of bootstrap and closed-form error
//! estimation on the Facebook- and Conviva-calibrated workloads.
//!
//! Per query: the §3 protocol (many samples; δ relative to the true
//! interval; fail if |δ| > 0.2 on ≥ 5% of samples). Output: the four
//! stacked bands of Fig. 3 — Not Applicable / Optimistic / Correct /
//! Pessimistic — plus the §3 drill-downs (MIN/MAX and UDF failure
//! shares).
//!
//! Published reference points:
//! * bootstrap produces too-wide / too-narrow intervals for 23.94% /
//!   12.2% of Facebook queries;
//! * closed forms apply to 56.78% of Facebook queries overall and are
//!   incorrect for 24.86% of the total;
//! * bootstrap fails for 86.17% of MIN/MAX queries and 23.19% of UDF
//!   queries.

use aqp_bench::{section, tsv_row, Args};
use aqp_stats::accuracy::{evaluate_error_estimator, AccuracyConfig, AccuracyVerdict};
use aqp_stats::error_estimator::EstimationMethod;
use aqp_stats::rng::SeedStream;
use aqp_workload::statquery::QueryCategory;
use aqp_workload::Workload;

fn main() {
    let args = Args::parse();
    let n_queries: usize = args.get("queries").unwrap_or(150);
    let pop_rows: usize = args.get("population").unwrap_or(300_000);
    let sample_rows: usize = args.get("sample").unwrap_or(20_000);
    let seed: u64 = args.get("seed").unwrap_or(1);

    println!("{}", section("Fig. 3 — estimation accuracy per workload × technique"));
    println!(
        "{n_queries} queries per workload, population {pop_rows} rows, n = {sample_rows} \
         (paper: n = 10^6 on TB-scale data; bands are functions of n and tail weight)"
    );

    // The paper's protocol: 100 samples per query, |δ| > 0.2 on ≥ 5% of
    // them ⇒ failure. Note the protocol itself has a noise floor: with
    // K = 100 bootstrap resamples the interval-width estimate carries
    // ~9% relative noise, so ~2-3% of runs exceed the band even for a
    // perfectly-calibrated technique, and P(≥5 of 100) ≈ 10-12% of benign
    // queries flunk by luck. The published bands embed the same effect.
    let cfg = AccuracyConfig {
        sample_rows,
        runs: 100,
        truth_runs: 300,
        ..AccuracyConfig::default()
    };

    println!("\nTSV: workload\ttechnique\tnot_applicable\toptimistic\tcorrect\tpessimistic");
    for workload in [Workload::Facebook, Workload::Conviva] {
        let queries = workload.generate(n_queries, seed);
        for (tech_name, tech) in [
            ("bootstrap", EstimationMethod::Bootstrap { k: 100 }),
            ("closed-form", EstimationMethod::ClosedForm),
        ] {
            let mut counts = [0usize; 4]; // NA, Opt, Correct, Pess
            let mut minmax = (0usize, 0usize); // (fail, total)
            let mut udf = (0usize, 0usize);
            let seeds = SeedStream::new(seed ^ 0xF3);
            let jobs: Vec<(usize, &aqp_workload::StatQuery)> =
                queries.iter().enumerate().collect();
            let verdicts = aqp_exec::parallel::parallel_map(
                jobs,
                aqp_exec::parallel::default_threads(),
                |(qi, q)| {
                    let population = q.population(pop_rows, seeds.seed(qi as u64));
                    let owned = q.theta.instantiate();
                    evaluate_error_estimator(
                        &population,
                        &owned.as_theta(),
                        &tech,
                        &cfg,
                        seeds.derive(qi as u64),
                    )
                    .verdict
                },
            );
            for (q, verdict) in queries.iter().zip(verdicts) {
                let slot = match verdict {
                    AccuracyVerdict::NotApplicable => 0,
                    AccuracyVerdict::Optimistic => 1,
                    AccuracyVerdict::Correct => 2,
                    AccuracyVerdict::Pessimistic => 3,
                };
                counts[slot] += 1;
                let failed = matches!(
                    verdict,
                    AccuracyVerdict::Optimistic | AccuracyVerdict::Pessimistic
                );
                match q.category() {
                    QueryCategory::Min | QueryCategory::Max => {
                        minmax.1 += 1;
                        if failed {
                            minmax.0 += 1;
                        }
                    }
                    QueryCategory::Udf => {
                        udf.1 += 1;
                        if failed {
                            udf.0 += 1;
                        }
                    }
                    _ => {}
                }
            }
            let pct = |c: usize| 100.0 * c as f64 / queries.len() as f64;
            println!(
                "{}",
                tsv_row(&[
                    format!("{workload:?}"),
                    tech_name.to_string(),
                    format!("{:.1}", pct(counts[0])),
                    format!("{:.1}", pct(counts[1])),
                    format!("{:.1}", pct(counts[2])),
                    format!("{:.1}", pct(counts[3])),
                ])
            );
            if tech_name == "bootstrap" {
                let mm = if minmax.1 > 0 { 100.0 * minmax.0 as f64 / minmax.1 as f64 } else { 0.0 };
                let uf = if udf.1 > 0 { 100.0 * udf.0 as f64 / udf.1 as f64 } else { 0.0 };
                println!(
                    "#   drill-down ({workload:?}): MIN/MAX bootstrap failure {mm:.1}% \
                     (paper: 86.17% on FB), UDF failure {uf:.1}% (paper: 23.19%)"
                );
            }
        }
    }

    println!("\nShape checks (from the published Fig. 3):");
    println!("  * closed forms must show a large Not-Applicable band (MIN/MAX/percentile/UDF);");
    println!("  * the bootstrap must have no Not-Applicable band but visible failure bands;");
    println!("  * failures concentrate on extreme-value aggregates and heavy tails.");

    aqp_bench::maybe_write_metrics(&args);
}

//! Fig. 4(b)/(c) — accuracy of the diagnostic against the ideal verdict.
//!
//! For each query, run (i) the expensive ideal evaluation (does error
//! estimation actually work for this query?) and (ii) the cheap
//! diagnostic on a single sample; score the decision:
//! correct (true-accept + true-reject), false negative (wasteful
//! fallback), false positive (bad error bars shown).
//!
//! Published reference points:
//! * Fig. 4(b) closed forms — Conviva ≈ 81% correct, 7% FN, 9% FP;
//!   Facebook ≈ 73% correct, 3% FN, 4% FP (shares of the applicable set);
//! * Fig. 4(c) bootstrap — Conviva ≈ 89.2% correct, 3.6% FN, 2.8% FP;
//!   Facebook ≈ 62.8% correct, 5.2% FN, 3.2% FP;
//! * overall: 84.57% of Conviva / 68% of Facebook queries accurately
//!   approximable, < 3.1% FP, < 5.4% FN.

use aqp_bench::{section, tsv_row, Args};
use aqp_diagnostics::ground_truth::{evaluate_diagnostic, DiagnosticOutcome};
use aqp_diagnostics::DiagnosticConfig;
use aqp_stats::accuracy::AccuracyConfig;
use aqp_stats::error_estimator::EstimationMethod;
use aqp_stats::rng::SeedStream;
use aqp_workload::Workload;

fn main() {
    let args = Args::parse();
    let xi: String = args.get("xi").unwrap_or_else(|| "both".to_string());
    let cf_queries: usize = args.get("cf-queries").unwrap_or(100);
    let boot_queries: usize = args.get("boot-queries").unwrap_or(250);
    let pop_rows: usize = args.get("population").unwrap_or(120_000);
    let sample_rows: usize = args.get("sample").unwrap_or(10_000);
    let seed: u64 = args.get("seed").unwrap_or(1);

    println!("{}", section("Fig. 4 — diagnostic accuracy vs the ideal verdict"));
    println!(
        "population {pop_rows}, sample n = {sample_rows}, diagnostic p = 100 (paper settings \
         p=100, k=3, c1=c2=0.2, c3=0.5, rho=0.95)"
    );

    let diag_cfg = DiagnosticConfig::scaled_to(sample_rows, 100);
    let acc_cfg =
        AccuracyConfig { sample_rows, runs: 40, truth_runs: 250, ..AccuracyConfig::default() };

    println!("\nTSV: figure\tworkload\tcorrect_pct\tfalse_neg_pct\tfalse_pos_pct\tqueries");
    let run_experiment = |figure: &str,
                              workload: Workload,
                              technique: EstimationMethod,
                              queries: Vec<aqp_workload::StatQuery>| {
        let seeds = SeedStream::new(seed ^ 0xF4);
        let mut correct = 0usize;
        let mut fneg = 0usize;
        let mut fpos = 0usize;
        let jobs: Vec<(usize, &aqp_workload::StatQuery)> = queries.iter().enumerate().collect();
        let outcomes = aqp_exec::parallel::parallel_map(
            jobs,
            aqp_exec::parallel::default_threads(),
            |(qi, q)| {
                let population = q.population(pop_rows, seeds.seed(qi as u64 * 31));
                let owned = q.theta.instantiate();
                evaluate_diagnostic(
                    &population,
                    &owned.as_theta(),
                    &technique,
                    sample_rows,
                    &diag_cfg,
                    &acc_cfg,
                    seeds.derive(qi as u64),
                )
                .outcome
            },
        );
        for outcome in outcomes {
            match outcome {
                DiagnosticOutcome::TrueAccept | DiagnosticOutcome::TrueReject => correct += 1,
                DiagnosticOutcome::FalseNegative => fneg += 1,
                DiagnosticOutcome::FalsePositive => fpos += 1,
            }
        }
        let pct = |c: usize| 100.0 * c as f64 / queries.len() as f64;
        println!(
            "{}",
            tsv_row(&[
                figure.to_string(),
                format!("{workload:?}"),
                format!("{:.1}", pct(correct)),
                format!("{:.1}", pct(fneg)),
                format!("{:.1}", pct(fpos)),
                format!("{}", queries.len()),
            ])
        );
        (pct(correct), pct(fneg), pct(fpos))
    };

    let mut overall: Vec<(f64, f64, f64)> = Vec::new();
    if xi == "both" || xi == "closed-form" {
        for w in [Workload::Conviva, Workload::Facebook] {
            let qs = w.generate_closed_form(cf_queries, seed);
            overall.push(run_experiment("4b", w, EstimationMethod::ClosedForm, qs));
        }
    }
    if xi == "both" || xi == "bootstrap" {
        for w in [Workload::Conviva, Workload::Facebook] {
            let qs = w.generate_bootstrap_only(boot_queries, seed);
            overall.push(run_experiment(
                "4c",
                w,
                EstimationMethod::Bootstrap { k: 100 },
                qs,
            ));
        }
    }

    if !overall.is_empty() {
        let avg_correct = overall.iter().map(|x| x.0).sum::<f64>() / overall.len() as f64;
        let avg_fn = overall.iter().map(|x| x.1).sum::<f64>() / overall.len() as f64;
        let avg_fp = overall.iter().map(|x| x.2).sum::<f64>() / overall.len() as f64;
        println!(
            "\nOverall: {avg_correct:.1}% correct decisions, {avg_fn:.1}% false negatives, \
             {avg_fp:.1}% false positives"
        );
        println!("Paper overall: <5.4% false negatives, <3.1% false positives.");
    }

    aqp_bench::maybe_write_metrics(&args);
}

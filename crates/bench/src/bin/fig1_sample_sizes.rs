//! Fig. 1 — sample sizes different error-estimation techniques demand to
//! reach a target relative error.
//!
//! Protocol: for each of `--queries` (default 100) Conviva-style AVG/SUM
//! queries, compute each technique's confidence-interval half-width on a
//! pilot sample, then extrapolate via the √n law the rows needed for each
//! target relative error. "Ground truth" extrapolates from the *true*
//! interval (brute-force resampling).
//!
//! Paper's shape: Hoeffding needs samples 1–2 orders of magnitude larger
//! than CLT/bootstrap, which both track the ground truth; vertical bars
//! denote the .01/.99 quantiles across queries.

use aqp_bench::{mean, percentile, section, tsv_row, Args};
use aqp_core::required_sample_rows;
use aqp_stats::ci::{ci_from_draws, symmetric_half_width, Ci};
use aqp_stats::error_estimator::{ErrorEstimator, EstimationMethod};
use aqp_stats::estimator::{Aggregate, SampleContext};
use aqp_stats::large_deviation::{Inequality, RangeHint};
use aqp_stats::rng::SeedStream;
use aqp_stats::sampling::{gather, with_replacement_indices};
use aqp_workload::statquery::{DataSpec, ThetaKind};
use aqp_workload::Workload;

const TARGET_ERRORS: &[f64] = &[0.32, 0.16, 0.08, 0.04, 0.02, 0.01];
const TECHNIQUES: &[&str] = &["ground-truth", "closed-form", "bootstrap", "bernstein", "hoeffding"];

fn main() {
    let args = Args::parse();
    let n_queries: usize = args.get("queries").unwrap_or(100);
    let pop_rows: usize = args.get("population").unwrap_or(400_000);
    let pilot_rows: usize = args.get("pilot").unwrap_or(10_000);
    let seed: u64 = args.get("seed").unwrap_or(1);

    println!("{}", section("Fig. 1 — sample size needed vs target relative error"));
    println!(
        "{n_queries} Conviva-style AVG/SUM queries, population {pop_rows} rows, pilot {pilot_rows} rows"
    );

    // Only mean-like queries admit all techniques (Fig. 1's setting).
    let queries: Vec<_> = Workload::Conviva
        .generate_closed_form(n_queries * 2, seed)
        .into_iter()
        .filter(|q| {
            matches!(q.theta, ThetaKind::Builtin(Aggregate::Avg | Aggregate::Sum))
                // Moderate-range data: Hoeffding needs a finite range, and
                // on unbounded heavy tails its range term diverges far past
                // the paper's 1-2 orders of magnitude. Production columns
                // behind Fig. 1 are bounded-ish (times, counters).
                && matches!(
                    q.data,
                    DataSpec::Bounded { .. }
                        | DataSpec::Normal { .. }
                        | DataSpec::Exponential { .. }
                )
        })
        .take(n_queries)
        .collect();
    assert!(!queries.is_empty(), "no eligible queries generated");

    // required[technique][target] = per-query sample sizes.
    let mut required: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); TARGET_ERRORS.len()]; TECHNIQUES.len()];

    let seeds = SeedStream::new(seed ^ 0xF16);
    for (qi, q) in queries.iter().enumerate() {
        let population = q.population(pop_rows, seeds.seed(qi as u64));
        let pop_max = population.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let pop_min = population.iter().copied().fold(f64::INFINITY, f64::min);
        let owned = q.theta.instantiate();
        let theta = owned.as_theta();
        let est = theta.as_estimator();
        let ctx = SampleContext::new(pilot_rows, pop_rows);

        // Pilot sample.
        let mut srng = seeds.derive(1).rng(qi as u64);
        let idx = with_replacement_indices(&mut srng, pilot_rows, pop_rows);
        let sample = gather(&population, &idx);

        // Ground-truth interval at the pilot size (brute force).
        let theta_d = est.estimate(&population, &SampleContext::population(pop_rows));
        let truth_stream = seeds.derive(2).derive(qi as u64);
        let draws: Vec<f64> = (0..120)
            .map(|r| {
                let mut rng = truth_stream.rng(r);
                let i2 = with_replacement_indices(&mut rng, pilot_rows, pop_rows);
                est.estimate(&gather(&population, &i2), &ctx)
            })
            .collect();
        let truth_ci =
            Ci::new(theta_d, symmetric_half_width(theta_d, &draws, 0.95), 0.95);

        let range = RangeHint::new(pop_min, pop_max);
        let methods: Vec<Option<Ci>> = vec![
            Some(truth_ci),
            EstimationMethod::ClosedForm.confidence_interval(
                &mut seeds.derive(3).rng(qi as u64),
                &sample,
                &ctx,
                &theta,
                0.95,
            ),
            EstimationMethod::Bootstrap { k: 100 }.confidence_interval(
                &mut seeds.derive(4).rng(qi as u64),
                &sample,
                &ctx,
                &theta,
                0.95,
            ),
            EstimationMethod::LargeDeviation { inequality: Inequality::Bernstein, range }
                .confidence_interval(
                    &mut seeds.derive(5).rng(qi as u64),
                    &sample,
                    &ctx,
                    &theta,
                    0.95,
                ),
            EstimationMethod::LargeDeviation { inequality: Inequality::Hoeffding, range }
                .confidence_interval(
                    &mut seeds.derive(6).rng(qi as u64),
                    &sample,
                    &ctx,
                    &theta,
                    0.95,
                ),
        ];

        for (ti, ci) in methods.iter().enumerate() {
            let Some(ci) = ci else { continue };
            for (ei, &target) in TARGET_ERRORS.iter().enumerate() {
                if let Some(n) = required_sample_rows(ci, pilot_rows, target) {
                    required[ti][ei].push(n as f64);
                }
            }
        }
        // Keep the bootstrap-vs-truth replicate machinery honest: verify
        // the bootstrap interval is finite.
        let _ = ci_from_draws(theta_d, &draws, 0.95);
    }

    println!("\nTSV: target_rel_error\ttechnique\tmean_rows\tq01_rows\tq99_rows");
    for (ei, &target) in TARGET_ERRORS.iter().enumerate() {
        for (ti, name) in TECHNIQUES.iter().enumerate() {
            let xs = &required[ti][ei];
            if xs.is_empty() {
                continue;
            }
            println!(
                "{}",
                tsv_row(&[
                    format!("{target}"),
                    name.to_string(),
                    format!("{:.0}", mean(xs)),
                    format!("{:.0}", percentile(xs, 0.01)),
                    format!("{:.0}", percentile(xs, 0.99)),
                ])
            );
        }
    }

    // Headline ratio: Hoeffding vs ground truth, averaged over targets.
    let mut ratios = Vec::new();
    for (gt, hoef) in required[0].iter().zip(&required[4]) {
        if !gt.is_empty() && !hoef.is_empty() {
            ratios.push(mean(hoef) / mean(gt));
        }
    }
    let mut cf_ratios = Vec::new();
    for (gt, cf) in required[0].iter().zip(&required[1]) {
        if !gt.is_empty() && !cf.is_empty() {
            cf_ratios.push(mean(cf) / mean(gt));
        }
    }
    println!("\nSummary (paper: Hoeffding needs 1–2 orders of magnitude more rows):");
    println!("  Hoeffding / ground-truth sample-size ratio: {:.1}x (mean over targets)", mean(&ratios));
    println!("  closed-form / ground-truth ratio:           {:.2}x", mean(&cf_ratios));
    assert!(mean(&ratios) > 10.0, "Hoeffding ratio should exceed 10x, got {:.1}", mean(&ratios));

    aqp_bench::maybe_write_metrics(&args);
}

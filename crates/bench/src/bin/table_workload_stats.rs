//! §3's workload-composition and failure-rate table — the published
//! numbers quoted in §1/§3 next to what the calibrated synthetic
//! workloads produce.
//!
//! Published reference points:
//! * Facebook aggregate mix: MIN 33.35%, COUNT 24.67%, AVG 12.20%,
//!   SUM 10.11%, MAX 2.87%; 11.01% of queries contain UDFs.
//! * Conviva: AVG/COUNT/PERCENTILE/MAX combined 32.3%; 42.07% UDFs.
//! * 37.21% of Facebook queries amenable to closed forms; 43.21% of
//!   Facebook and 62.79% of Conviva queries are bootstrap-only.

use aqp_bench::{section, tsv_row, Args};
use aqp_workload::statquery::QueryCategory;
use aqp_workload::{qset1, qset2, Workload};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("queries").unwrap_or(20_000);
    let seed: u64 = args.get("seed").unwrap_or(1);

    println!("{}", section("§3 workload composition — synthetic vs published"));
    println!("TSV: workload\tcategory\tsynthetic_pct\tpublished_pct");
    let published_fb: &[(QueryCategory, f64)] = &[
        (QueryCategory::Min, 33.35),
        (QueryCategory::Count, 24.67),
        (QueryCategory::Avg, 12.20),
        (QueryCategory::Sum, 10.11),
        (QueryCategory::Max, 2.87),
        (QueryCategory::Udf, 11.01),
    ];
    let published_cv: &[(QueryCategory, f64)] = &[(QueryCategory::Udf, 42.07)];

    for (workload, published) in
        [(Workload::Facebook, published_fb), (Workload::Conviva, published_cv)]
    {
        let queries = workload.generate(n, seed);
        let mut counts: HashMap<QueryCategory, usize> = HashMap::new();
        for q in &queries {
            *counts.entry(q.category()).or_default() += 1;
        }
        let mut cats: Vec<(QueryCategory, usize)> = counts.into_iter().collect();
        cats.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for (cat, c) in &cats {
            let synth = 100.0 * *c as f64 / n as f64;
            let publ = published
                .iter()
                .find(|(p, _)| p == cat)
                .map(|(_, v)| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "{}",
                tsv_row(&[
                    format!("{workload:?}"),
                    format!("{cat:?}"),
                    format!("{synth:.2}"),
                    publ,
                ])
            );
        }
        let cf = queries.iter().filter(|q| q.closed_form_applicable()).count();
        println!(
            "# {workload:?}: closed-form-applicable {:.1}% (published FB: 37.21% incl. \
             multi-aggregate/nested exclusions, modeled at the SQL level)",
            100.0 * cf as f64 / n as f64
        );
        if workload == Workload::Conviva {
            let combined: f64 = queries
                .iter()
                .filter(|q| {
                    matches!(
                        q.category(),
                        QueryCategory::Avg
                            | QueryCategory::Count
                            | QueryCategory::Percentile
                            | QueryCategory::Max
                    )
                })
                .count() as f64
                / n as f64;
            println!(
                "# Conviva AVG+COUNT+PERCENTILE+MAX combined: {:.1}% (published: 32.3%)",
                100.0 * combined
            );
        }
    }

    println!("{}", section("QSet-1 / QSet-2 trace composition (§7)"));
    let q1 = qset1(100, seed);
    let q2 = qset2(100, seed);
    println!("QSet-1: {} queries, all closed-form-amenable", q1.len());
    println!(
        "QSet-2: {} queries — {} MIN/MAX, {} percentile, {} UDF, {} multi-aggregate, {} nested",
        q2.len(),
        q2.iter().filter(|q| q.sql.contains("MAX(") || q.sql.contains("MIN(")).count(),
        q2.iter().filter(|q| q.sql.contains("PERCENTILE")).count(),
        q2.iter().filter(|q| q.sql.contains("trimmed_mean")).count(),
        q2.iter().filter(|q| q.sql.matches(',').count() >= 2).count(),
        q2.iter().filter(|q| q.sql.contains("FROM (SELECT")).count(),
    );
    println!("\nsample QSet-1 queries:");
    for q in q1.iter().take(5) {
        println!("  {}", q.sql);
    }
    println!("sample QSet-2 queries:");
    for q in q2.iter().take(5) {
        println!("  {}", q.sql);
    }

    aqp_bench::maybe_write_metrics(&args);
}

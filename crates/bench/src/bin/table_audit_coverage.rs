//! §3's headline failure-rate tables, reproduced by *auditing* a live
//! synthetic workload trace instead of an offline study.
//!
//! Two phases run through a real `AqpSession` with the continuous
//! auditor on:
//!
//! * **well-calibrated** — closed-form AVG/SUM/COUNT over Conviva-like
//!   sessions with the diagnostic on: CI coverage should track the
//!   claimed 95% confidence and the confusion matrix should be
//!   TA-dominated;
//! * **miscalibrated** — bootstrap MAX/MIN over Pareto-tailed Facebook
//!   payloads with the diagnostic *off* (the paper's cautionary tale:
//!   error bars served unchecked on an extreme statistic). Coverage
//!   collapses and the auditor's threshold alert must fire.
//!
//! Fixed seed + one worker thread ⇒ the report on stdout is
//! bit-identical across runs (timings go to stderr/metrics only).

use aqp_audit::{AuditConfig, AuditLogConfig};
use aqp_bench::{section, tsv_row, Args};
use aqp_core::{AqpSession, SessionConfig};
use aqp_workload::{conviva_sessions_table, facebook_events_table};

fn session(seed: u64, run_diagnostics: bool, audit: AuditConfig) -> AqpSession {
    AqpSession::new(SessionConfig {
        seed,
        threads: 1, // determinism: a fixed scan/merge order
        bootstrap_k: 40,
        diagnostic_p: 50,
        run_diagnostics,
        audit: Some(audit),
        ..Default::default()
    })
}

fn main() {
    let args = Args::parse();
    let queries: usize = args.get("queries").unwrap_or(2_000);
    let seed: u64 = args.get("seed").unwrap_or(1);
    let rate: f64 = args.get("rate").unwrap_or(0.1);
    let rows: usize = args.get("population").unwrap_or(40_000);
    let sample: usize = args.get("sample").unwrap_or(8_000);
    let audit_log: Option<String> = args.get("audit-log");

    // 70% well-calibrated traffic, 30% miscalibrated.
    let good_queries = queries * 7 / 10;
    let bad_queries = queries - good_queries;

    println!(
        "{}",
        section("Audit coverage — failure rates from a continuously audited trace")
    );
    println!(
        "trace: {queries} queries ({good_queries} calibrated + {bad_queries} miscalibrated), \
         population {rows}, sample {sample}, audit rate {rate}, seed {seed}"
    );

    let audit_cfg = |families: &[(&str, &str)]| AuditConfig {
        sample_rate: rate,
        seed: seed ^ 0xA0D1,
        window: 200,
        coverage_alert_below: 0.90,
        min_window_for_alert: 30,
        log: audit_log.as_ref().map(AuditLogConfig::at),
        column_families: families
            .iter()
            .map(|&(c, f)| (c.to_string(), f.to_string()))
            .collect(),
    };

    // --- Phase 1: calibrated closed-form traffic. Mostly templates the
    // diagnostic accepts (AVG/SUM/COUNT over well-behaved columns); one
    // in five is a heavier-tailed AVG(bytes) the diagnostic rejects, so
    // the confusion matrix exercises the reject column too (those audits
    // reuse the fallback's exact run for truth). ---
    let clock = aqp_obs::Clock::real();
    let started = clock.now();
    let s1 = session(
        seed,
        true,
        audit_cfg(&[("time", "lognormal"), ("bytes", "heavy_tail"), ("*", "count")]),
    );
    s1.register_table(conviva_sessions_table(rows, 4, seed)).expect("register");
    s1.build_samples("sessions", &[sample], seed ^ 7).expect("samples");
    for i in 0..good_queries {
        let sql = match i % 5 {
            0 => "SELECT AVG(time) FROM sessions",
            1 => "SELECT SUM(time) FROM sessions",
            2 => "SELECT COUNT(*) FROM sessions WHERE is_mobile = true",
            3 => "SELECT AVG(bytes) FROM sessions",
            _ => "SELECT COUNT(*) FROM sessions",
        };
        s1.execute(sql).expect("calibrated query");
    }
    let r1 = s1.audit_report().expect("auditing is on");

    // --- Phase 2: miscalibrated traffic — extreme statistics over a
    // Pareto tail with the diagnostic disabled. Audited at 5× the base
    // rate (an operator probing a suspect config) so even short smoke
    // runs accumulate an alert-worthy window. ---
    let mut bad_audit = audit_cfg(&[("payload_kb", "pareto")]);
    bad_audit.sample_rate = (rate * 5.0).min(1.0);
    let s2 = session(seed ^ 0xBAD, false, bad_audit);
    s2.register_table(facebook_events_table(rows, 4, seed ^ 3)).expect("register");
    s2.build_samples("events", &[sample], seed ^ 11).expect("samples");
    let countries = ["'NYC'", "'LA'", "'SF'"];
    for i in 0..bad_queries {
        let sql = match i % 3 {
            0 | 1 => "SELECT MAX(payload_kb) FROM events".to_string(),
            _ => format!("SELECT MAX(payload_kb) FROM events WHERE country = {}", countries[i % 3]),
        };
        s2.execute(&sql).expect("miscalibrated query");
    }
    let r2 = s2.audit_report().expect("auditing is on");
    let elapsed = clock.now().duration_since(started);

    // --- The report (stdout, deterministic). ---
    for (label, r) in [("calibrated (diagnostic on)", &r1), ("miscalibrated (diagnostic off)", &r2)]
    {
        println!("\n--- {label} ---");
        print!("{}", r.render_table());
    }

    println!("\nTSV: phase\tkey\tscored\tcoverage_pct\tfailure_pct\tfp_rate\tfn_rate");
    for (phase, r) in [("calibrated", &r1), ("miscalibrated", &r2)] {
        for k in std::iter::once(&r.overall).chain(r.keys.iter()) {
            let cov = k.coverage.unwrap_or(f64::NAN) * 100.0;
            println!(
                "{}",
                tsv_row(&[
                    phase.to_string(),
                    k.key.clone(),
                    k.scored.to_string(),
                    format!("{cov:.1}"),
                    format!("{:.1}", 100.0 - cov),
                    k.confusion
                        .false_positive_rate()
                        .map(|r| format!("{r:.3}"))
                        .unwrap_or_else(|| "-".to_string()),
                    k.confusion
                        .false_negative_rate()
                        .map(|r| format!("{r:.3}"))
                        .unwrap_or_else(|| "-".to_string()),
                ])
            );
        }
    }

    let total_alerts = r1.alerts.len() + r2.alerts.len();
    println!(
        "\nHeadline: calibrated coverage {:.1}% (claimed 95%), miscalibrated coverage {:.1}% \
         — {total_alerts} coverage alert(s) fired.",
        r1.overall.coverage.unwrap_or(f64::NAN) * 100.0,
        r2.overall.coverage.unwrap_or(f64::NAN) * 100.0,
    );
    println!(
        "Paper: unchecked error bars on extreme statistics fail silently; the diagnostic \
         (or this auditor) is what surfaces it."
    );
    if r2.alerts.is_empty() {
        println!("WARNING: expected at least one alert on the miscalibrated phase");
    }
    eprintln!("wall clock: {:.2}s (excluded from stdout for determinism)", elapsed.as_secs_f64());
    if let Some(path) = &audit_log {
        eprintln!("audit log written to {path}");
    }

    aqp_bench::maybe_write_metrics(&args);
}

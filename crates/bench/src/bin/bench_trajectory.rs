//! The benchmark-trajectory harness: one fixed-seed, scaled-down
//! workload per headline experiment (Fig. 1 sample sizing, Fig. 7 naive
//! latency, Fig. 8 plan-optimization speedups, Fig. 9 optimized+tuned
//! latency, plus the audit-coverage bench and an operator-profile
//! smoke), collected into a single canonical `BENCH_aqp.json`.
//!
//! The file is **bit-stable** for a given seed: every latency comes from
//! the deterministic cluster simulator, every counter from fixed-seed
//! single-threaded execution, and the profile leg runs under a mock
//! clock. Running the binary twice must produce byte-identical output —
//! CI commits a baseline and `cargo xtask bench-compare` flags metric
//! drift beyond a threshold.
//!
//! Flags: `--seed N` (default 1), `--out PATH` (default
//! `BENCH_aqp.json`), `--queries N` (simulated queries per set,
//! default 50).

use aqp_audit::AuditConfig;
use aqp_bench::{percentile, section, Args};
use aqp_cluster::{simulate_query, ClusterConfig, PhysicalTuning, PlanMode};
use aqp_core::{
    required_sample_rows, AqpSession, ContProfConfig, ExplainMode, IntrospectConfig, SessionConfig,
};
use aqp_obs::json::{push_f64, push_str_lit};
use aqp_obs::{Clock, FlightRecorderConfig, ObsHandle};
use aqp_slo::SloConfig;
use aqp_stats::ci::Ci;
use aqp_stats::error_estimator::{ErrorEstimator, EstimationMethod};
use aqp_stats::estimator::{Aggregate, SampleContext};
use aqp_stats::rng::SeedStream;
use aqp_stats::sampling::{gather, with_replacement_indices};
use aqp_workload::statquery::{DataSpec, ThetaKind};
use aqp_workload::{conviva_sessions_table, facebook_events_table, qset1, qset2, Workload};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed").unwrap_or(1);
    let out: String = args.get("out").unwrap_or_else(|| "BENCH_aqp.json".to_string());
    let n_queries: usize = args.get("queries").unwrap_or(50);

    println!("{}", section("Benchmark trajectory — fixed-seed suite"));
    println!("seed {seed}, {n_queries} simulated queries per set, output {out}");

    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut put = |name: &str, value: f64| {
        println!("  {name} = {value}");
        metrics.push((name.to_string(), value));
    };

    // --- Fig. 1 leg: rows the closed form demands for an 8% target
    // error, extrapolated from a pilot via the √n law. ---
    let fig1 = fig1_mean_required_rows(8, 60_000, 4_000, seed);
    put("fig1.closed_form.mean_rows_err8", fig1);

    // --- Fig. 7 / 8 / 9 legs: the deterministic cluster simulator. ---
    let cfg = ClusterConfig::default();
    let untuned = PhysicalTuning::untuned(&cfg);
    let tuned = PhysicalTuning::tuned();
    for (set, queries) in [("qset1", qset1(n_queries, seed)), ("qset2", qset2(n_queries, seed))] {
        let mut naive = Vec::new();
        let mut optimized = Vec::new();
        let mut opt_tuned = Vec::new();
        let mut speedups = Vec::new();
        for q in &queries {
            let qseed = seed ^ q.id as u64;
            let n = simulate_query(&q.profile, PlanMode::Naive, &untuned, &cfg, qseed).total();
            let o = simulate_query(&q.profile, PlanMode::Optimized, &untuned, &cfg, qseed).total();
            let t = simulate_query(&q.profile, PlanMode::Optimized, &tuned, &cfg, qseed).total();
            naive.push(n);
            optimized.push(o);
            opt_tuned.push(t);
            if o > 0.0 {
                speedups.push(n / o);
            }
        }
        put(&format!("fig7.{set}.p50_s"), percentile(&naive, 0.5));
        put(&format!("fig7.{set}.p95_s"), percentile(&naive, 0.95));
        put(&format!("fig8.{set}.speedup_p50"), percentile(&speedups, 0.5));
        put(&format!("fig9.{set}.p50_s"), percentile(&opt_tuned, 0.5));
        put(&format!("fig9.{set}.p95_s"), percentile(&opt_tuned, 0.95));
    }

    // --- Audit-coverage leg: a short calibrated trace through a real
    // session with the continuous auditor on (threads: 1 ⇒ the scored
    // counts and coverage are bit-stable). ---
    let (scored, coverage_pct, alerts) = audit_leg(seed, 160);
    put("audit.scored", scored);
    put("audit.coverage_pct", coverage_pct);
    put("audit.alerts", alerts);

    // --- Operator-profile leg: the quickstart-shaped query under a mock
    // clock; counters (not wall times) land in the trajectory. The same
    // session runs with continuous profiling on, so the fleet-cumulative
    // profile's shape (classes × paths) and its peak per-operator byte
    // estimate — the deterministic memory proxy — are stamped too. ---
    let (ops, scan_rows, workers, cp_classes, cp_paths, cp_peak_bytes) = profile_leg(seed);
    put("profile.ops", ops);
    put("profile.scan_rows_out", scan_rows);
    put("profile.workers", workers);
    put("contprof.classes", cp_classes);
    put("contprof.paths", cp_paths);
    put("contprof.peak_op_bytes", cp_peak_bytes);

    // --- Throughput leg: a row-at-a-time scan baseline replayed on the
    // mock clock at a fixed nominal per-row cost, read back through the
    // profile's rows/s / bytes/s fields (the plumbing EXPLAIN ANALYZE
    // renders), so batched engines have a stamped baseline to beat. ---
    let (rows_per_sec, bytes_per_sec) = throughput_leg();
    put("profile.scan_rows_per_sec", rows_per_sec);
    put("profile.scan_bytes_per_sec", bytes_per_sec);

    // --- SLO leg: the two-phase healthy-then-miscalibrated replay with
    // the fleet SLO engine, drift detectors, and flight recorder on;
    // alert/drift/dump counts and the remaining budget are bit-stable
    // under the mock clock. ---
    let slo = slo_leg(seed);
    put("slo.page_alerts", slo.0);
    put("slo.warn_alerts", slo.1);
    put("slo.drift_signals", slo.2);
    put("slo.recorder_dumps", slo.3);
    put("slo.min_budget_pct", slo.4);

    // --- Introspect leg: a fixed-seed introspected replay under a mock
    // clock; stamps the telemetry volume folded per query as a nominal
    // ingest rate and overhead share (the real-clock <5% bound lives in
    // tests/introspect.rs), so `_telemetry.*` schema growth is drift. ---
    let (ingest_rows_per_s, overhead_pct) = introspect_leg(seed);
    put("introspect.ingest_rows_per_s", ingest_rows_per_s);
    put("introspect.overhead_pct", overhead_pct);

    let json = render_trajectory(seed, &metrics);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\ntrajectory written to {out} ({} metrics)", metrics.len()),
        Err(e) => {
            eprintln!("failed writing {out}: {e}");
            std::process::exit(1);
        }
    }

    aqp_bench::maybe_write_metrics(&args);
}

/// Mean rows the closed form needs for a `target_pct`% relative error,
/// over a small fixed-seed batch of Conviva-style AVG/SUM queries.
fn fig1_mean_required_rows(target_pct: u32, pop_rows: usize, pilot_rows: usize, seed: u64) -> f64 {
    let target = target_pct as f64 / 100.0;
    let queries: Vec<_> = Workload::Conviva
        .generate_closed_form(24, seed)
        .into_iter()
        .filter(|q| {
            matches!(q.theta, ThetaKind::Builtin(Aggregate::Avg | Aggregate::Sum))
                && matches!(
                    q.data,
                    DataSpec::Bounded { .. } | DataSpec::Normal { .. } | DataSpec::Exponential { .. }
                )
        })
        .take(12)
        .collect();
    let seeds = SeedStream::new(seed ^ 0xF16);
    let mut required = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        let population = q.population(pop_rows, seeds.seed(qi as u64));
        let owned = q.theta.instantiate();
        let theta = owned.as_theta();
        let ctx = SampleContext::new(pilot_rows, pop_rows);
        let mut srng = seeds.derive(1).rng(qi as u64);
        let idx = with_replacement_indices(&mut srng, pilot_rows, pop_rows);
        let sample = gather(&population, &idx);
        let ci: Option<Ci> = EstimationMethod::ClosedForm.confidence_interval(
            &mut seeds.derive(3).rng(qi as u64),
            &sample,
            &ctx,
            &theta,
            0.95,
        );
        if let Some(ci) = ci {
            if let Some(n) = required_sample_rows(&ci, pilot_rows, target) {
                required.push(n as f64);
            }
        }
    }
    aqp_bench::mean(&required)
}

/// A short audited calibrated trace; returns (scored, coverage %, alerts).
fn audit_leg(seed: u64, queries: usize) -> (f64, f64, f64) {
    let session = AqpSession::new(SessionConfig {
        seed,
        threads: 1,
        bootstrap_k: 40,
        diagnostic_p: 50,
        audit: Some(AuditConfig {
            sample_rate: 0.25,
            seed: seed ^ 0xA0D1,
            window: 100,
            coverage_alert_below: 0.90,
            min_window_for_alert: 30,
            log: None,
            column_families: vec![
                ("time".to_string(), "lognormal".to_string()),
                ("*".to_string(), "count".to_string()),
            ],
        }),
        ..Default::default()
    });
    session.register_table(conviva_sessions_table(30_000, 4, seed)).expect("register");
    session.build_samples("sessions", &[6_000], seed ^ 7).expect("samples");
    for i in 0..queries {
        let sql = match i % 3 {
            0 => "SELECT AVG(time) FROM sessions",
            1 => "SELECT SUM(time) FROM sessions",
            _ => "SELECT COUNT(*) FROM sessions WHERE is_mobile = true",
        };
        session.execute(sql).expect("audited query");
    }
    let report = session.audit_report().expect("auditing is on");
    (
        report.overall.scored as f64,
        report.overall.coverage.unwrap_or(f64::NAN) * 100.0,
        report.alerts.len() as f64,
    )
}

/// The two-phase SLO replay under an isolated mock clock: 60 healthy
/// AVG queries build the fleet baseline, then 30 unchecked bootstrap
/// `MAX(payload_kb)` queries over the Pareto tail collapse coverage.
/// Returns (page alerts, warn alerts, drift signals, recorder dumps,
/// min budget %). The session seed is `seed + 1` so the default
/// trajectory seed lands on the calibrated miscalibrated replay
/// (session seed 2) used by `tests/slo.rs` and the dashboards.
fn slo_leg(seed: u64) -> (f64, f64, f64, f64, f64) {
    let obs = ObsHandle::isolated(Clock::mock());
    let session = AqpSession::new(SessionConfig {
        seed: seed.wrapping_add(1),
        threads: 1,
        bootstrap_k: 40,
        run_diagnostics: false,
        obs: obs.clone(),
        audit: Some(AuditConfig {
            sample_rate: 1.0,
            seed: seed ^ 0x510,
            ..Default::default()
        }),
        slo: Some(
            SloConfig::new()
                .with_class("tail", "MAX(")
                .with_coverage(SloConfig::DEFAULT_CLASS, 0.95)
                .with_coverage("tail", 0.95)
                .with_recorder(FlightRecorderConfig { capacity: 8, path: None }),
        ),
        ..Default::default()
    });
    session.register_table(facebook_events_table(40_000, 8, 2)).expect("register");
    session.build_samples("events", &[8_000], 7).expect("samples");
    for _ in 0..60 {
        session.execute("SELECT AVG(payload_kb) FROM events").expect("healthy query");
    }
    for _ in 0..30 {
        session.execute("SELECT MAX(payload_kb) FROM events").expect("tail query");
    }
    let report = session.slo_report().expect("slo is on");
    let snap = obs.metrics.snapshot();
    let budget = report
        .objectives
        .iter()
        .map(|o| o.budget_remaining)
        .fold(1.0f64, f64::min);
    (
        snap.counter(aqp_obs::name::SLO_PAGE_ALERTS).unwrap_or(0) as f64,
        snap.counter(aqp_obs::name::SLO_WARN_ALERTS).unwrap_or(0) as f64,
        snap.counter(aqp_obs::name::SLO_DRIFT_SIGNALS).unwrap_or(0) as f64,
        snap.counter(aqp_obs::name::OBS_RECORDER_DUMPS).unwrap_or(0) as f64,
        budget * 100.0,
    )
}

/// One quickstart-shaped query under an isolated mock clock with
/// continuous profiling on, plus a GROUP BY query to populate a second
/// workload class; returns (operator count, scan output rows, workers
/// on the deepest operator, contprof classes, contprof paths, peak
/// per-operator byte estimate across cumulative-profile cells).
fn profile_leg(seed: u64) -> (f64, f64, f64, f64, f64, f64) {
    let session = AqpSession::new(SessionConfig {
        seed,
        threads: 2,
        bootstrap_k: 40,
        diagnostic_p: 50,
        obs: ObsHandle::isolated(Clock::mock()),
        explain: ExplainMode::Text,
        contprof: Some(ContProfConfig::new().with_class("dashboards", "GROUP BY")),
        ..Default::default()
    });
    session.register_table(conviva_sessions_table(40_000, 4, seed)).expect("register");
    session.build_samples("sessions", &[8_000], seed ^ 7).expect("samples");
    let answer = session
        .execute("SELECT AVG(time) FROM sessions WHERE city = 'NYC'")
        .expect("profiled query");
    session
        .execute("SELECT city, COUNT(*) FROM sessions GROUP BY city")
        .expect("grouped query");
    let cum = session.cumulative_profile().expect("contprof is on");
    let peak_op_bytes = cum.iter().map(|(_, _, c)| c.bytes).max().unwrap_or(0);
    let Some(profile) = &answer.profile else { return (0.0, 0.0, 0.0, 0.0, 0.0, 0.0) };
    let nodes = profile.nodes();
    let scan_rows = nodes
        .iter()
        .find(|n| n.name == "Scan")
        .map(|n| n.rows_out as f64)
        .unwrap_or(0.0);
    let workers = nodes.iter().map(|n| n.workers.len()).max().unwrap_or(0);
    (
        nodes.len() as f64,
        scan_rows,
        workers as f64,
        cum.classes() as f64,
        cum.paths() as f64,
        peak_op_bytes as f64,
    )
}

/// The introspect leg: 45 mixed queries with the self-hosted telemetry
/// pipeline on, closed by one introspection query that forces a catalog
/// sync. The mock clock keeps every counter bit-stable; wall-clock
/// overhead is enforced on a real clock by `tests/introspect.rs`. The
/// stamped figures model the *volume* side of that bound: telemetry
/// rows folded per query converted to an ingest rate and an overhead
/// share at a nominal 100 queries/s fleet and 500 ns per folded row, so
/// a schema or fold-path change that inflates per-query telemetry moves
/// both numbers. Returns (ingest rows/s, overhead %).
fn introspect_leg(seed: u64) -> (f64, f64) {
    const NOMINAL_QUERIES_PER_S: f64 = 100.0;
    const NOMINAL_FOLD_NS_PER_ROW: f64 = 500.0;
    let obs = ObsHandle::isolated(Clock::mock());
    let session = AqpSession::new(SessionConfig {
        seed,
        threads: 1,
        bootstrap_k: 40,
        diagnostic_p: 50,
        obs: obs.clone(),
        introspect: Some(IntrospectConfig::new().with_class("dashboards", "GROUP BY")),
        ..Default::default()
    });
    session.register_table(conviva_sessions_table(30_000, 4, seed)).expect("register");
    session.build_samples("sessions", &[6_000], seed ^ 7).expect("samples");
    for i in 0..45 {
        let sql = match i % 3 {
            0 => "SELECT AVG(time) FROM sessions",
            1 => "SELECT SUM(time) FROM sessions",
            _ => "SELECT city, COUNT(*) FROM sessions GROUP BY city",
        };
        session.execute(sql).expect("introspected query");
    }
    session.execute("SELECT COUNT(*) FROM _telemetry.spans").expect("introspection query");
    let snap = obs.metrics.snapshot();
    let rows = snap.counter(aqp_obs::name::INTROSPECT_ROWS_INGESTED).unwrap_or(0) as f64;
    let folded = snap.counter(aqp_obs::name::INTROSPECT_QUERIES_FOLDED).unwrap_or(0).max(1) as f64;
    let rows_per_query = rows / folded;
    let ingest_rows_per_s = rows_per_query * NOMINAL_QUERIES_PER_S;
    let nominal_query_ns = 1e9 / NOMINAL_QUERIES_PER_S;
    let overhead_pct = rows_per_query * NOMINAL_FOLD_NS_PER_ROW / nominal_query_ns * 100.0;
    (ingest_rows_per_s, overhead_pct)
}

/// The row-at-a-time scan baseline: `ROWS` rows replayed one batch per
/// row on the mock clock at a fixed nominal per-row cost, parsed
/// through [`aqp_core::OpProfile`] so the stamped figures exercise the
/// same `rows_per_s` / `bytes_per_s` plumbing `EXPLAIN ANALYZE`
/// renders. Returns (rows/s, bytes/s).
fn throughput_leg() -> (f64, f64) {
    use aqp_obs::TraceRecorder;
    const ROWS: u64 = 8_000;
    const BYTES_PER_ROW: u64 = 24; // three 8-byte columns
    const NS_PER_ROW: u64 = 250; // the nominal row-at-a-time cost
    let clock = Clock::mock();
    let rec = TraceRecorder::new(clock.clone());
    let stage = rec.start("scan_collect");
    let t0 = clock.now();
    clock.advance(std::time::Duration::from_nanos(ROWS * NS_PER_ROW));
    let sp = rec.record_span("op:Scan", t0, clock.now());
    rec.attr(sp, "node_id", 0usize);
    rec.attr(sp, "rows_in", ROWS);
    rec.attr(sp, "rows_out", ROWS);
    rec.attr(sp, "batches", ROWS);
    rec.attr(sp, "bytes", ROWS * BYTES_PER_ROW);
    rec.end(stage);
    let profile = aqp_core::OpProfile::from_trace(&rec.finish()).expect("profile");
    let nodes = profile.nodes();
    let scan = nodes.iter().find(|n| n.name == "Scan").expect("scan node");
    (scan.rows_per_s.unwrap_or(0.0), scan.bytes_per_s.unwrap_or(0.0))
}

/// Render the canonical trajectory document: schema tag, seed, and the
/// metrics sorted by name — one stable JSON object, trailing newline.
fn render_trajectory(seed: u64, metrics: &[(String, f64)]) -> String {
    let mut sorted: Vec<&(String, f64)> = metrics.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"aqp-bench-trajectory/v1\",\n  \"seed\": ");
    out.push_str(&seed.to_string());
    out.push_str(",\n  \"metrics\": {\n");
    for (i, (name, value)) in sorted.iter().enumerate() {
        out.push_str("    ");
        push_str_lit(&mut out, name);
        out.push_str(": ");
        push_f64(&mut out, *value);
        if i + 1 < sorted.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

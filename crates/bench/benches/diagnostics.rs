//! Diagnostic cost microbenches: the consolidated single-pass diagnostic
//! (exec engine) vs the naive per-subquery §5.2 strategy, at the
//! single-machine scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aqp_diagnostics::kleiner::run_diagnostic;
use aqp_diagnostics::DiagnosticConfig;
use aqp_exec::baseline::execute_baseline;
use aqp_exec::engine::{execute_approx, ApproxOptions, MethodChoice};
use aqp_exec::udf::UdfRegistry;
use aqp_sql::{parse_query, plan_query};
use aqp_stats::dist::sample_lognormal;
use aqp_stats::error_estimator::{EstimationMethod, Theta};
use aqp_stats::estimator::{Aggregate, SampleContext};
use aqp_stats::rng::{rng_from_seed, SeedStream};
use aqp_storage::Table;
use aqp_workload::conviva_sessions_table;

fn bench_stats_level_diagnostic(c: &mut Criterion) {
    let n = 20_000;
    let mut rng = rng_from_seed(1);
    let values: Vec<f64> = (0..n).map(|_| sample_lognormal(&mut rng, 1.0, 0.6)).collect();
    let ctx = SampleContext::new(n, n * 100);
    let cfg = DiagnosticConfig::scaled_to(n, 50);
    c.bench_function("diagnostic_closed_form_20k", |b| {
        b.iter(|| {
            black_box(run_diagnostic(
                &values,
                &ctx,
                &Theta::Builtin(Aggregate::Avg),
                &EstimationMethod::ClosedForm,
                &cfg,
                SeedStream::new(2),
            ))
        })
    });
    c.bench_function("diagnostic_bootstrap_k50_20k", |b| {
        b.iter(|| {
            black_box(run_diagnostic(
                &values,
                &ctx,
                &Theta::Builtin(Aggregate::Avg),
                &EstimationMethod::Bootstrap { k: 50 },
                &cfg,
                SeedStream::new(2),
            ))
        })
    });
}

fn engine_setup() -> (Table, Table) {
    use aqp_stats::sampling::without_replacement_indices;
    let pop = conviva_sessions_table(60_000, 4, 1);
    let mut rng = rng_from_seed(7);
    let idx = without_replacement_indices(&mut rng, 8_000, 60_000);
    let sbatch = pop.to_batch().unwrap().gather(&idx).unwrap();
    let sample = Table::from_batch("sessions", sbatch, 4).unwrap();
    (pop, sample)
}

fn bench_consolidated_vs_naive_pipeline(c: &mut Criterion) {
    let (pop, sample) = engine_setup();
    let registry = UdfRegistry::default();
    let q = parse_query("SELECT AVG(time) FROM sessions WHERE city = 'NYC'").unwrap();
    let plan = plan_query(&q, pop.schema()).unwrap();
    let opts = ApproxOptions {
        seed: 3,
        method: MethodChoice::Bootstrap,
        bootstrap_k: 40,
        threads: 1,
        diagnostic: Some(DiagnosticConfig::scaled_to(8_000, 16)),
        ..Default::default()
    };
    let mut group = c.benchmark_group("pipeline_8k_sample");
    group.sample_size(10);
    group.bench_function("consolidated_single_scan", |b| {
        b.iter(|| {
            black_box(execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap())
        })
    });
    group.bench_function("naive_rescan_per_subquery", |b| {
        b.iter(|| {
            black_box(
                execute_baseline(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stats_level_diagnostic, bench_consolidated_vs_naive_pipeline);
criterion_main!(benches);

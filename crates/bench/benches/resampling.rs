//! §5.1 microbenches: Poissonized vs exact resampling.
//!
//! The paper cites Pol & Jermaine's finding that exact with-replacement
//! resampling (Tuple Augmentation) ran 8–9× slower than the
//! non-bootstrapped query, while Poissonized resampling is "extremely
//! fast, embarrassingly parallel, and requires no extra memory".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use aqp_stats::dist::Poisson1;
use aqp_stats::resample::{exact_resample_counts, poisson_weights};
use aqp_stats::rng::rng_from_seed;

fn bench_poisson1_draws(c: &mut Criterion) {
    let p1 = Poisson1::new();
    let mut group = c.benchmark_group("poisson1_draw");
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("1M_draws", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(1);
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc += p1.sample(&mut rng) as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_poissonized_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("resample_generation");
    for n in [10_000usize, 100_000, 1_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("poissonized", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = rng_from_seed(2);
                black_box(poisson_weights(&mut rng, n))
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_multinomial", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = rng_from_seed(2);
                black_box(exact_resample_counts(&mut rng, n))
            })
        });
    }
    group.finish();
}

fn bench_scan_consolidated_weights(c: &mut Criterion) {
    // Cost of the full §5.3.1 weight complement per tuple: K=100 bootstrap
    // + 3×100 diagnostic weights, streamed row-at-a-time.
    let p1 = Poisson1::new();
    let mut group = c.benchmark_group("scan_consolidation");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("400_weights_per_row_10k_rows", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(3);
            let mut acc = 0u64;
            for _row in 0..10_000 {
                for _w in 0..400 {
                    acc += p1.sample(&mut rng) as u64;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_poisson1_draws,
    bench_poissonized_vs_exact,
    bench_scan_consolidated_weights
);
criterion_main!(benches);

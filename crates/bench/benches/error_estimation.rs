//! Error-estimation overhead microbenches: closed forms vs the bootstrap
//! (Fig. 7's "Error Estimation Overhead" at the single-machine scale),
//! plus the K sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use aqp_stats::bootstrap::bootstrap_ci;
use aqp_stats::closed_form::closed_form_ci;
use aqp_stats::dist::sample_lognormal;
use aqp_stats::estimator::{Aggregate, SampleContext};
use aqp_stats::rng::rng_from_seed;

fn sample(n: usize) -> Vec<f64> {
    let mut rng = rng_from_seed(1);
    (0..n).map(|_| sample_lognormal(&mut rng, 1.0, 0.6)).collect()
}

fn bench_closed_form_vs_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("error_estimation");
    for n in [10_000usize, 100_000] {
        let values = sample(n);
        let ctx = SampleContext::new(n, n * 100);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("closed_form_avg", n), &n, |b, _| {
            b.iter(|| black_box(closed_form_ci(&Aggregate::Avg, &values, &ctx, 0.95)))
        });
        group.bench_with_input(BenchmarkId::new("bootstrap_k100_avg", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = rng_from_seed(2);
                black_box(bootstrap_ci(&mut rng, &values, &ctx, &Aggregate::Avg, 100, 0.95))
            })
        });
    }
    group.finish();
}

fn bench_bootstrap_k_sweep(c: &mut Criterion) {
    let n = 50_000;
    let values = sample(n);
    let ctx = SampleContext::new(n, n * 100);
    let mut group = c.benchmark_group("bootstrap_k_sweep_50k");
    for k in [25usize, 50, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut rng = rng_from_seed(3);
                black_box(bootstrap_ci(&mut rng, &values, &ctx, &Aggregate::Sum, k, 0.95))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closed_form_vs_bootstrap, bench_bootstrap_k_sweep);
criterion_main!(benches);

//! §5.3.1 microbenches: aggregates operating directly on weighted tuples
//! vs physically duplicating rows ("alleviates the need for duplicating
//! the tuples before they were streamed into the aggregates").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use aqp_stats::estimator::{Aggregate, QueryEstimator, SampleContext, Udf};
use aqp_stats::resample::poisson_weights;
use aqp_stats::rng::rng_from_seed;

fn data(n: usize) -> (Vec<f64>, Vec<u32>) {
    let mut rng = rng_from_seed(1);
    let values: Vec<f64> =
        (0..n).map(|i| ((i * 2_654_435_761) % 1_000) as f64 / 10.0).collect();
    let weights = poisson_weights(&mut rng, n);
    (values, weights)
}

fn bench_weighted_vs_duplicated(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_avg_vs_duplication");
    for n in [10_000usize, 100_000] {
        let (values, weights) = data(n);
        let ctx = SampleContext::new(n, n * 100);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("weighted", n), &n, |b, _| {
            b.iter(|| black_box(Aggregate::Avg.estimate_weighted(&values, &weights, &ctx)))
        });
        group.bench_with_input(
            BenchmarkId::new("duplicate_then_aggregate", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let expanded = Udf::expand(&values, &weights);
                    black_box(Aggregate::Avg.estimate(&expanded, &ctx))
                })
            },
        );
    }
    group.finish();
}

fn bench_all_weighted_aggregates(c: &mut Criterion) {
    let n = 100_000;
    let (values, weights) = data(n);
    let ctx = SampleContext::new(n, n * 100);
    let mut group = c.benchmark_group("weighted_aggregates_100k");
    group.throughput(Throughput::Elements(n as u64));
    for agg in [
        Aggregate::Avg,
        Aggregate::Sum,
        Aggregate::Count,
        Aggregate::Variance,
        Aggregate::Max,
        Aggregate::Percentile(0.95),
    ] {
        group.bench_function(agg.name(), |b| {
            b.iter(|| black_box(agg.estimate_weighted(&values, &weights, &ctx)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weighted_vs_duplicated, bench_all_weighted_aggregates);
criterion_main!(benches);

//! Ablation benches for design choices DESIGN.md calls out:
//!
//! 1. **Size-centered vs raw Poissonized SUM** — the centered statistic's
//!    replicate variance must track the true binomial/CLT sampling
//!    variance where the raw statistic overdisperses (measured as a
//!    correctness ablation inside a bench harness, plus its runtime cost).
//! 2. **Operator pushdown** — collection cost with the resample operator
//!    above the scan vs pushed below the aggregate.
//! 3. **Diagnostic p sweep** — Algorithm 1 cost as p grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aqp_diagnostics::kleiner::run_diagnostic;
use aqp_diagnostics::DiagnosticConfig;
use aqp_stats::dist::sample_lognormal;
use aqp_stats::error_estimator::{EstimationMethod, Theta};
use aqp_stats::estimator::{Aggregate, QueryEstimator, SampleContext};
use aqp_stats::resample::poisson_weights;
use aqp_stats::rng::{rng_from_seed, SeedStream};

/// The raw (uncentered) Poissonized SUM, for the ablation.
fn raw_poisson_sum(values: &[f64], weights: &[u32], ctx: &SampleContext) -> f64 {
    values
        .iter()
        .zip(weights)
        .map(|(&x, &w)| x * w as f64)
        .sum::<f64>()
        * ctx.scale()
}

fn bench_centered_vs_raw_sum(c: &mut Criterion) {
    let n = 100_000;
    let mut rng = rng_from_seed(1);
    // 20% selectivity: zeros are the filtered-out rows.
    let values: Vec<f64> = (0..n)
        .map(|i| {
            if i % 5 == 0 {
                sample_lognormal(&mut rng, 1.0, 0.5)
            } else {
                0.0
            }
        })
        .collect();
    let ctx = SampleContext::new(n, n * 50);
    let weights = poisson_weights(&mut rng, n);

    let mut group = c.benchmark_group("sum_statistic_ablation");
    group.bench_function("raw_poissonized", |b| {
        b.iter(|| black_box(raw_poisson_sum(&values, &weights, &ctx)))
    });
    group.bench_function("size_centered", |b| {
        b.iter(|| black_box(Aggregate::Sum.estimate_weighted(&values, &weights, &ctx)))
    });
    group.finish();

    // Correctness ablation (printed once): replicate SD vs the CLT truth,
    // at two selectivities — the raw statistic's overdispersion grows as
    // selectivity → 1 (E[y²]/Var(y) → E[x²]/Var(x)), which is exactly why
    // the engine centers.
    for keep in [5usize, 1] {
        let mut rng = rng_from_seed(2);
        let values: Vec<f64> = (0..n)
            .map(|i| {
                if i % keep == 0 {
                    sample_lognormal(&mut rng, 1.0, 0.5)
                } else {
                    0.0
                }
            })
            .collect();
        let reps = 300;
        let point = Aggregate::Sum.estimate(&values, &ctx);
        let (mut raw_ss, mut cen_ss) = (0.0, 0.0);
        for _ in 0..reps {
            let w = poisson_weights(&mut rng, n);
            raw_ss += (raw_poisson_sum(&values, &w, &ctx) - point).powi(2);
            cen_ss += (Aggregate::Sum.estimate_weighted(&values, &w, &ctx) - point).powi(2);
        }
        let raw_sd = (raw_ss / reps as f64).sqrt();
        let centered_sd = (cen_ss / reps as f64).sqrt();
        // CLT truth: N·sd(y)/√n.
        let mean_y = values.iter().sum::<f64>() / n as f64;
        let var_y = values.iter().map(|y| (y - mean_y).powi(2)).sum::<f64>() / n as f64;
        let truth = ctx.population_rows as f64 * (var_y / n as f64).sqrt();
        println!(
            "\n[ablation] SUM replicate SD at selectivity {:.0}%: raw/truth {:.2}x, centered/truth {:.2}x \
             (raw {raw_sd:.0}, centered {centered_sd:.0}, truth {truth:.0})",
            100.0 / keep as f64,
            raw_sd / truth,
            centered_sd / truth
        );
    }
}

fn bench_diagnostic_p_sweep(c: &mut Criterion) {
    let n = 40_000;
    let mut rng = rng_from_seed(3);
    let values: Vec<f64> = (0..n).map(|_| sample_lognormal(&mut rng, 1.0, 0.6)).collect();
    let ctx = SampleContext::new(n, n * 100);
    let mut group = c.benchmark_group("diagnostic_p_sweep_40k");
    group.sample_size(10);
    for p in [25usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let cfg = DiagnosticConfig::scaled_to(n, p);
            b.iter(|| {
                black_box(run_diagnostic(
                    &values,
                    &ctx,
                    &Theta::Builtin(Aggregate::Avg),
                    &EstimationMethod::Bootstrap { k: 50 },
                    &cfg,
                    SeedStream::new(4),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_centered_vs_raw_sum, bench_diagnostic_p_sweep);
criterion_main!(benches);

//! Hand-written SQL lexer.

use crate::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively
    /// by the parser; the lexer stores the raw spelling).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// A punctuation/operator token.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `%`
    Percent,
    /// `;`
    Semi,
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                // `--` line comment.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Symbol(Sym::Minus));
                    i += 1;
                }
            }
            '/' => {
                tokens.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '%' => {
                tokens.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            ';' => {
                tokens.push(Token::Symbol(Sym::Semi));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::Ne));
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        position: i,
                        message: "unexpected '!' (did you mean '!='?)".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Symbol(Sym::Le));
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Symbol(Sym::Ne));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                position: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (b == 'e' || b == 'E')
                        && !saw_exp
                        && bytes
                            .get(i + 1)
                            .is_some_and(|&n| n.is_ascii_digit() || n == b'-' || n == b'+')
                    {
                        saw_exp = true;
                        i += 1;
                        if bytes[i] == b'-' || bytes[i] == b'+' {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if saw_dot || saw_exp {
                    let v = text.parse::<f64>().map_err(|e| SqlError::Lex {
                        position: start,
                        message: format!("bad float literal '{text}': {e}"),
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|e| SqlError::Lex {
                        position: start,
                        message: format!("bad int literal '{text}': {e}"),
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Word(input[start..i].to_owned()));
            }
            other => {
                return Err(SqlError::Lex {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_symbols() {
        let toks = tokenize("SELECT AVG(time) FROM sessions WHERE city = 'NYC'").unwrap();
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert_eq!(toks[1], Token::Word("AVG".into()));
        assert_eq!(toks[2], Token::Symbol(Sym::LParen));
        assert!(toks.contains(&Token::Str("NYC".into())));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1 2.5 1e3 1.5e-2 .5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Float(0.015),
                Token::Float(0.5),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("< <= > >= <> != =").unwrap();
        use Sym::*;
        assert_eq!(
            toks,
            vec![
                Token::Symbol(Lt),
                Token::Symbol(Le),
                Token::Symbol(Gt),
                Token::Symbol(Ge),
                Token::Symbol(Ne),
                Token::Symbol(Ne),
                Token::Symbol(Eq),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("'oops"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn line_comments_skipped() {
        let toks = tokenize("SELECT -- a comment\n 1").unwrap();
        assert_eq!(toks, vec![Token::Word("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn percent_and_semicolon() {
        let toks = tokenize("10% ;").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(10), Token::Symbol(Sym::Percent), Token::Symbol(Sym::Semi)]
        );
    }

    #[test]
    fn bad_char_errors_with_position() {
        match tokenize("SELECT #") {
            Err(SqlError::Lex { position, .. }) => assert_eq!(position, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
    }
}

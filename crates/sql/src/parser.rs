//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT items FROM table_ref [tablesample] [WHERE expr]
//!               [GROUP BY ident (',' ident)*] [HAVING expr]
//!               [ORDER BY ident [ASC|DESC]] [LIMIT n]
//!               [error_clause] [';']
//! items      := item (',' item)*
//! item       := agg '(' ('*' | expr [',' number]) ')' [AS ident] | ident
//! table_ref  := ident | '(' query ')'
//! tablesample:= TABLESAMPLE POISSONIZED '(' number ')'
//! error_clause := WITHIN number '%' ERROR [AT CONFIDENCE number '%']
//! expr       := or; or := and (OR and)*; and := not (AND not)*;
//! not        := [NOT] cmp; cmp := add [cmpop add];
//! add        := mul (('+'|'-') mul)*; mul := unary (('*'|'/') unary)*;
//! unary      := ['-'] primary;
//! primary    := number | string | ident ['(' expr (',' expr)* ')'] | '(' expr ')'
//! ```

use aqp_storage::Value;

use crate::ast::{
    AggExpr, AggFunc, BinOp, ErrorClause, Expr, Query, SelectItem, TableRef, TableSample,
};
use crate::lexer::{tokenize, Sym, Token};
use crate::{Result, SqlError};

/// Names recognized as built-in aggregates.
const AGG_NAMES: &[&str] =
    &["avg", "sum", "count", "min", "max", "variance", "var", "stddev", "stdev", "percentile"];

/// Scalar functions allowed inside expressions.
const SCALAR_FUNCS: &[&str] = &["log", "ln", "exp", "sqrt", "abs", "ifnull", "pow"];

/// Bump a well-known counter on the global metrics registry. The
/// handles are cached per name; steady-state cost is one atomic add.
pub(crate) fn count_one(name: &'static str) {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<&'static str, aqp_obs::Counter>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    map.entry(name)
        .or_insert_with(|| aqp_obs::MetricsRegistry::global().counter(name))
        .inc();
}

/// Parse one query from `input`.
pub fn parse_query(input: &str) -> Result<Query> {
    count_one(aqp_obs::name::SQL_QUERIES_PARSED);
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.consume_symbol_if(Sym::Semi);
    if !p.at_end() {
        return Err(p.error(format!("unexpected trailing tokens starting at {:?}", p.peek())));
    }
    Ok(q)
}

/// Parse a statement that may be prefixed with `EXPLAIN`.
///
/// Returns `(explain_requested, query)`.
pub fn parse_statement(input: &str) -> Result<(bool, Query)> {
    let trimmed = input.trim_start();
    if trimmed.len() >= 7 && trimmed[..7].eq_ignore_ascii_case("explain") {
        Ok((true, parse_query(&trimmed[7..])?))
    } else {
        Ok((false, parse_query(input)?))
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: String) -> SqlError {
        SqlError::Parse { message }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn consume_keyword(&mut self, kw: &str) -> Result<()> {
        if self.peek_keyword(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn consume_keyword_if(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn consume_symbol(&mut self, s: Sym) -> Result<()> {
        match self.peek() {
            Some(Token::Symbol(t)) if *t == s => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected {s:?}, found {other:?}"))),
        }
    }

    fn consume_symbol_if(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.advance() {
            Some(Token::Int(i)) => Ok(i as f64),
            Some(Token::Float(f)) => Ok(f),
            other => Err(self.error(format!("expected number, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.consume_keyword("select")?;
        let mut select = vec![self.select_item()?];
        while self.consume_symbol_if(Sym::Comma) {
            select.push(self.select_item()?);
        }
        self.consume_keyword("from")?;
        let from = if self.consume_symbol_if(Sym::LParen) {
            let inner = self.query()?;
            self.consume_symbol(Sym::RParen)?;
            TableRef::Subquery(Box::new(inner))
        } else {
            TableRef::Table(self.identifier()?)
        };

        let tablesample = if self.consume_keyword_if("tablesample") {
            self.consume_keyword("poissonized")?;
            self.consume_symbol(Sym::LParen)?;
            let rate100 = self.number()?;
            self.consume_symbol(Sym::RParen)?;
            Some(TableSample { rate: rate100 / 100.0 })
        } else {
            None
        };

        let where_clause =
            if self.consume_keyword_if("where") { Some(self.expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.consume_keyword_if("group") {
            self.consume_keyword("by")?;
            group_by.push(self.identifier()?);
            while self.consume_symbol_if(Sym::Comma) {
                group_by.push(self.identifier()?);
            }
        }

        let having = if self.consume_keyword_if("having") {
            Some(self.expr()?)
        } else {
            None
        };

        let order_by = if self.consume_keyword_if("order") {
            self.consume_keyword("by")?;
            let column = self.identifier()?;
            let descending = if self.consume_keyword_if("desc") {
                true
            } else {
                self.consume_keyword_if("asc");
                false
            };
            Some(crate::ast::OrderBy { column, descending })
        } else {
            None
        };

        let limit = if self.consume_keyword_if("limit") {
            let n = self.number()?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(self.error(format!("LIMIT must be a non-negative integer, got {n}")));
            }
            Some(n as usize)
        } else {
            None
        };

        let error_clause = if self.consume_keyword_if("within") {
            let rel = self.number()?;
            self.consume_symbol(Sym::Percent)?;
            self.consume_keyword("error")?;
            let confidence = if self.consume_keyword_if("at") {
                self.consume_keyword("confidence")?;
                let c = self.number()?;
                self.consume_symbol(Sym::Percent)?;
                c / 100.0
            } else {
                0.95
            };
            Some(ErrorClause { relative_error: rel / 100.0, confidence })
        } else {
            None
        };

        Ok(Query {
            select,
            from,
            tablesample,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            error_clause,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // Aggregate (built-in or UDF) iff word followed by '('; bare word
        // is a group-by column reference.
        let is_call = matches!(self.peek(), Some(Token::Word(_)))
            && matches!(self.peek2(), Some(Token::Symbol(Sym::LParen)));
        if !is_call {
            let name = self.identifier()?;
            return Ok(SelectItem::Column(name));
        }
        let name = self.identifier()?;
        let lname = name.to_ascii_lowercase();
        self.consume_symbol(Sym::LParen)?;

        let agg = if lname == "count" && self.consume_symbol_if(Sym::Star) {
            self.consume_symbol(Sym::RParen)?;
            AggExpr { func: AggFunc::Count, arg: None }
        } else {
            let arg = self.expr()?;
            let func = match lname.as_str() {
                "avg" => AggFunc::Avg,
                "sum" => AggFunc::Sum,
                "count" => AggFunc::Count,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                "variance" | "var" => AggFunc::Variance,
                "stddev" | "stdev" => AggFunc::StdDev,
                "percentile" => {
                    self.consume_symbol(Sym::Comma)?;
                    let q = self.number()?;
                    let q = if q > 1.0 { q / 100.0 } else { q };
                    if !(0.0..=1.0).contains(&q) {
                        return Err(self.error(format!("percentile level {q} out of range")));
                    }
                    AggFunc::Percentile(q)
                }
                _ => {
                    if SCALAR_FUNCS.contains(&lname.as_str()) {
                        return Err(self.error(format!(
                            "scalar function {name} cannot appear bare in SELECT; wrap it in an aggregate"
                        )));
                    }
                    AggFunc::Udf(lname.clone())
                }
            };
            self.consume_symbol(Sym::RParen)?;
            AggExpr { func, arg: Some(arg) }
        };

        let alias = if self.consume_keyword_if("as") { Some(self.identifier()?) } else { None };
        Ok(SelectItem::Agg(agg, alias))
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.consume_keyword_if("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.consume_keyword_if("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.consume_keyword_if("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::Ne)) => Some(BinOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            Ok(Expr::binary(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.consume_symbol_if(Sym::Minus) {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Word(w)) => {
                let lw = w.to_ascii_lowercase();
                if matches!(lw.as_str(), "true" | "false") {
                    return Ok(Expr::Literal(Value::Bool(lw == "true")));
                }
                if lw == "null" {
                    return Ok(Expr::Literal(Value::Null));
                }
                if matches!(self.peek(), Some(Token::Symbol(Sym::LParen))) {
                    if AGG_NAMES.contains(&lw.as_str()) {
                        return Err(self.error(format!(
                            "aggregate {w} not allowed inside a scalar expression"
                        )));
                    }
                    if !SCALAR_FUNCS.contains(&lw.as_str()) {
                        return Err(self.error(format!("unknown scalar function {w}")));
                    }
                    self.pos += 1; // '('
                    let mut args = vec![self.expr()?];
                    while self.consume_symbol_if(Sym::Comma) {
                        args.push(self.expr()?);
                    }
                    self.consume_symbol(Sym::RParen)?;
                    return Ok(Expr::Func { name: lw, args });
                }
                Ok(Expr::Column(w))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                let e = self.expr()?;
                self.consume_symbol(Sym::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_running_example() {
        let q = parse_query("SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'").unwrap();
        assert_eq!(q.select.len(), 1);
        match &q.select[0] {
            SelectItem::Agg(a, None) => {
                assert_eq!(a.func, AggFunc::Avg);
                assert_eq!(a.arg, Some(Expr::col("Time")));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(q.from, TableRef::Table("Sessions".into()));
        assert!(q.where_clause.is_some());
        assert!(q.error_clause.is_none());
    }

    #[test]
    fn parses_error_clause() {
        let q = parse_query(
            "SELECT SUM(bytes) FROM events WITHIN 10% ERROR AT CONFIDENCE 95%",
        )
        .unwrap();
        let e = q.error_clause.unwrap();
        assert!((e.relative_error - 0.10).abs() < 1e-12);
        assert!((e.confidence - 0.95).abs() < 1e-12);
    }

    #[test]
    fn error_clause_defaults_confidence() {
        let q = parse_query("SELECT COUNT(*) FROM t WITHIN 5% ERROR").unwrap();
        let e = q.error_clause.unwrap();
        assert!((e.confidence - 0.95).abs() < 1e-12);
    }

    #[test]
    fn parses_tablesample_poissonized() {
        let q = parse_query("SELECT COUNT(*) FROM t TABLESAMPLE POISSONIZED (100)").unwrap();
        assert!((q.tablesample.unwrap().rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parses_group_by_and_aliases() {
        let q = parse_query(
            "SELECT city, AVG(time) AS avg_time, COUNT(*) FROM s GROUP BY city",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["city".to_string()]);
        assert_eq!(q.select.len(), 3);
        match &q.select[1] {
            SelectItem::Agg(_, Some(alias)) => assert_eq!(alias, "avg_time"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_having() {
        let q = parse_query(
            "SELECT city, COUNT(*) AS c FROM s GROUP BY city HAVING c > 100",
        )
        .unwrap();
        assert_eq!(q.having.as_ref().unwrap().to_string(), "(c > 100)");
        // Round-trips through Display.
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn parse_statement_handles_explain_prefix() {
        let (explain, q) = parse_statement("EXPLAIN SELECT COUNT(*) FROM t").unwrap();
        assert!(explain);
        assert_eq!(q.aggregates().len(), 1);
        let (explain, _) = parse_statement("select count(*) from t").unwrap();
        assert!(!explain);
        assert!(parse_statement("EXPLAIN nonsense").is_err());
    }

    #[test]
    fn parses_order_by_and_limit() {
        let q = parse_query(
            "SELECT city, COUNT(*) AS c FROM s GROUP BY city ORDER BY c DESC LIMIT 5",
        )
        .unwrap();
        let o = q.order_by.as_ref().unwrap();
        assert_eq!(o.column, "c");
        assert!(o.descending);
        assert_eq!(q.limit, Some(5));
        // ASC and default direction.
        let q = parse_query("SELECT city, COUNT(*) AS c FROM s GROUP BY city ORDER BY city ASC")
            .unwrap();
        assert!(!q.order_by.unwrap().descending);
        // Round trip.
        let q = parse_query(
            "SELECT city, COUNT(*) AS c FROM s GROUP BY city HAVING c > 1 ORDER BY c DESC LIMIT 3 WITHIN 5% ERROR",
        )
        .unwrap();
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
        // Bad limits rejected.
        assert!(parse_query("SELECT COUNT(*) FROM s LIMIT 1.5").is_err());
        assert!(parse_query("SELECT COUNT(*) FROM s LIMIT -1").is_err());
    }

    #[test]
    fn parses_percentile_two_arg() {
        let q = parse_query("SELECT PERCENTILE(latency, 99) FROM t").unwrap();
        match &q.select[0] {
            SelectItem::Agg(a, _) => assert_eq!(a.func, AggFunc::Percentile(0.99)),
            other => panic!("{other:?}"),
        }
        let q = parse_query("SELECT PERCENTILE(latency, 0.5) FROM t").unwrap();
        match &q.select[0] {
            SelectItem::Agg(a, _) => assert_eq!(a.func, AggFunc::Percentile(0.5)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_udf_aggregate() {
        let q = parse_query("SELECT sessionize(time) FROM t").unwrap();
        match &q.select[0] {
            SelectItem::Agg(a, _) => assert_eq!(a.func, AggFunc::Udf("sessionize".into())),
            other => panic!("{other:?}"),
        }
        assert!(!q.closed_form_applicable());
    }

    #[test]
    fn parses_nested_subquery() {
        let q = parse_query(
            "SELECT AVG(s) FROM (SELECT SUM(bytes) AS s FROM events GROUP BY user_id)",
        )
        .unwrap();
        assert!(q.is_nested());
        match &q.from {
            TableRef::Subquery(inner) => assert_eq!(inner.group_by, vec!["user_id".to_string()]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_and_precedence() {
        let q = parse_query("SELECT AVG(a + b * 2) FROM t WHERE x > 1 AND y < 2 OR z = 3")
            .unwrap();
        match &q.select[0] {
            SelectItem::Agg(a, _) => {
                assert_eq!(a.arg.as_ref().unwrap().to_string(), "(a + (b * 2))");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            q.where_clause.unwrap().to_string(),
            "(((x > 1) AND (y < 2)) OR (z = 3))"
        );
    }

    #[test]
    fn parses_scalar_functions_in_args() {
        let q = parse_query("SELECT SUM(log(bytes)) FROM t WHERE abs(delta) < 5").unwrap();
        match &q.select[0] {
            SelectItem::Agg(a, _) => {
                assert_eq!(a.arg.as_ref().unwrap().to_string(), "LOG(bytes)");
            }
            other => panic!("{other:?}"),
        }
        let _ = q.where_clause.unwrap();
    }

    #[test]
    fn rejects_aggregates_in_scalar_position() {
        assert!(parse_query("SELECT AVG(SUM(x)) FROM t").is_err());
        assert!(parse_query("SELECT COUNT(*) FROM t WHERE AVG(x) > 1").is_err());
    }

    #[test]
    fn rejects_unknown_scalar_function_in_where() {
        assert!(parse_query("SELECT COUNT(*) FROM t WHERE frob(x) = 1").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("SELECT COUNT(*) FROM t garbage garbage").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let sql = "SELECT city, AVG(time) AS a FROM s WHERE city = 'SF' GROUP BY city WITHIN 10% ERROR AT CONFIDENCE 99%";
        let q1 = parse_query(sql).unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn count_star_round_trip() {
        let q = parse_query("SELECT COUNT(*) FROM t").unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn boolean_and_null_literals() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE flag = true AND other <> NULL")
            .unwrap();
        assert!(q.where_clause.is_some());
    }
}

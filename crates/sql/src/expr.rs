//! Vectorized expression evaluation over columnar batches.
//!
//! Used by filter and projection operators. Numeric operations run on
//! dense `f64` buffers with separate validity masks; string comparisons
//! compare dictionary codes where possible.

use aqp_storage::{Batch, Column, Value};

use crate::ast::{BinOp, Expr};
use crate::{Result, SqlError};

/// Evaluate `expr` over every row of `batch`, yielding a column of
/// `batch.num_rows()` values.
pub fn eval(expr: &Expr, batch: &Batch) -> Result<Column> {
    let n = batch.num_rows();
    match expr {
        Expr::Column(name) => batch
            .column_by_name(name)
            .cloned()
            .map_err(|e| SqlError::Plan { message: e.to_string() }),
        Expr::Literal(v) => Ok(broadcast(v, n)),
        Expr::Neg(e) => {
            let c = eval(e, batch)?;
            let (vals, mask) = to_f64_parts(&c);
            Ok(from_f64_parts(vals.into_iter().map(|x| -x).collect(), mask))
        }
        Expr::Not(e) => {
            let c = eval(e, batch)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..c.len() {
                out.push(bool_at(&c, i).map(|b| !b));
            }
            Ok(from_opt_bools(out))
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, batch)?;
            let r = eval(rhs, batch)?;
            eval_binary(*op, &l, &r)
        }
        Expr::Func { name, args } => {
            let cols: Vec<Column> =
                args.iter().map(|a| eval(a, batch)).collect::<Result<Vec<_>>>()?;
            eval_scalar_func(name, &cols, n)
        }
    }
}

/// Evaluate a predicate, mapping NULL ("unknown") to `false` — SQL filter
/// semantics.
pub fn eval_predicate(expr: &Expr, batch: &Batch) -> Result<Vec<bool>> {
    let c = eval(expr, batch)?;
    let mut out = Vec::with_capacity(c.len());
    for i in 0..c.len() {
        out.push(bool_at(&c, i).unwrap_or(false));
    }
    Ok(out)
}

fn broadcast(v: &Value, n: usize) -> Column {
    match v {
        Value::Int(i) => Column::from_i64s(vec![*i; n]),
        Value::Float(f) => Column::from_f64s(vec![*f; n]),
        Value::Bool(b) => Column::from_bools(vec![*b; n]),
        Value::Str(s) => Column::from_strs(&vec![s.as_str(); n]),
        Value::Null => Column::from_opt_f64s(vec![None; n]),
    }
}

/// Dense f64 view of a column plus validity (strings become NULLs).
fn to_f64_parts(c: &Column) -> (Vec<f64>, Option<Vec<bool>>) {
    let n = c.len();
    let mut vals = Vec::with_capacity(n);
    let mut mask = Vec::with_capacity(n);
    let mut any_null = false;
    for i in 0..n {
        match c.f64_at(i) {
            Some(x) => {
                vals.push(x);
                mask.push(true);
            }
            None => {
                vals.push(0.0);
                mask.push(false);
                any_null = true;
            }
        }
    }
    (vals, if any_null { Some(mask) } else { None })
}

fn from_f64_parts(vals: Vec<f64>, mask: Option<Vec<bool>>) -> Column {
    match mask {
        None => Column::from_f64s(vals),
        Some(m) => Column::from_opt_f64s(
            vals.into_iter().zip(m).map(|(v, ok)| ok.then_some(v)).collect(),
        ),
    }
}

fn from_opt_bools(vals: Vec<Option<bool>>) -> Column {
    // Encode through Float parts to reuse machinery? No — build directly.
    let mut out_vals = Vec::with_capacity(vals.len());
    let mut mask = Vec::with_capacity(vals.len());
    let mut any_null = false;
    for v in vals {
        match v {
            Some(b) => {
                out_vals.push(b);
                mask.push(true);
            }
            None => {
                out_vals.push(false);
                mask.push(false);
                any_null = true;
            }
        }
    }
    if any_null {
        Column::Bool { values: out_vals, validity: Some(mask) }
    } else {
        Column::from_bools(out_vals)
    }
}

fn bool_at(c: &Column, i: usize) -> Option<bool> {
    if c.is_null(i) {
        return None;
    }
    match c {
        Column::Bool { values, .. } => Some(values[i]),
        _ => c.f64_at(i).map(|x| x != 0.0),
    }
}

fn str_at(c: &Column, i: usize) -> Option<&str> {
    if c.is_null(i) {
        return None;
    }
    match c {
        Column::Str { dict, codes, .. } => Some(dict[codes[i] as usize].as_str()),
        _ => None,
    }
}

fn eval_binary(op: BinOp, l: &Column, r: &Column) -> Result<Column> {
    let n = l.len();
    if r.len() != n {
        return Err(SqlError::Plan {
            message: format!("binary operand length mismatch: {} vs {}", n, r.len()),
        });
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let (lv, lm) = to_f64_parts(l);
            let (rv, rm) = to_f64_parts(r);
            let mut vals = Vec::with_capacity(n);
            let mut mask = Vec::with_capacity(n);
            let mut any_null = false;
            for i in 0..n {
                let lok = lm.as_ref().is_none_or(|m| m[i]);
                let rok = rm.as_ref().is_none_or(|m| m[i]);
                if lok && rok {
                    let v = match op {
                        BinOp::Add => lv[i] + rv[i],
                        BinOp::Sub => lv[i] - rv[i],
                        BinOp::Mul => lv[i] * rv[i],
                        BinOp::Div => {
                            if rv[i] == 0.0 {
                                // SQL: division by zero → NULL (engine choice).
                                mask.push(false);
                                vals.push(0.0);
                                any_null = true;
                                continue;
                            }
                            lv[i] / rv[i]
                        }
                        _ => unreachable!(),
                    };
                    vals.push(v);
                    mask.push(true);
                } else {
                    vals.push(0.0);
                    mask.push(false);
                    any_null = true;
                }
            }
            Ok(from_f64_parts(vals, if any_null { Some(mask) } else { None }))
        }
        BinOp::And | BinOp::Or => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let a = bool_at(l, i);
                let b = bool_at(r, i);
                // Three-valued logic.
                let v = match op {
                    BinOp::And => match (a, b) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    },
                    BinOp::Or => match (a, b) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    },
                    _ => unreachable!(),
                };
                out.push(v);
            }
            Ok(from_opt_bools(out))
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            // String comparison when either side is a string column.
            let string_cmp = matches!(l, Column::Str { .. }) || matches!(r, Column::Str { .. });
            let mut out = Vec::with_capacity(n);
            if string_cmp {
                for i in 0..n {
                    let v = match (str_at(l, i), str_at(r, i)) {
                        (Some(a), Some(b)) => Some(apply_ord(op, a.cmp(b))),
                        _ => None,
                    };
                    out.push(v);
                }
            } else {
                let (lv, lm) = to_f64_parts(l);
                let (rv, rm) = to_f64_parts(r);
                for i in 0..n {
                    let lok = lm.as_ref().is_none_or(|m| m[i]);
                    let rok = rm.as_ref().is_none_or(|m| m[i]);
                    let v = if lok && rok {
                        lv[i].partial_cmp(&rv[i]).map(|o| apply_ord(op, o))
                    } else {
                        None
                    };
                    out.push(v);
                }
            }
            Ok(from_opt_bools(out))
        }
    }
}

fn apply_ord(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("apply_ord on non-comparison"),
    }
}

fn eval_scalar_func(name: &str, args: &[Column], n: usize) -> Result<Column> {
    let arity_err = |want: usize| SqlError::Plan {
        message: format!("{name} expects {want} argument(s), got {}", args.len()),
    };
    match name {
        "log" | "ln" | "exp" | "sqrt" | "abs" => {
            if args.len() != 1 {
                return Err(arity_err(1));
            }
            let (vals, mask) = to_f64_parts(&args[0]);
            let mut out_vals = Vec::with_capacity(n);
            let mut out_mask = Vec::with_capacity(n);
            let mut any_null = false;
            for i in 0..vals.len() {
                let ok = mask.as_ref().is_none_or(|m| m[i]);
                if !ok {
                    out_vals.push(0.0);
                    out_mask.push(false);
                    any_null = true;
                    continue;
                }
                let x = vals[i];
                let y = match name {
                    "log" | "ln" => {
                        if x <= 0.0 {
                            f64::NAN
                        } else {
                            x.ln()
                        }
                    }
                    "exp" => x.exp(),
                    "sqrt" => {
                        if x < 0.0 {
                            f64::NAN
                        } else {
                            x.sqrt()
                        }
                    }
                    "abs" => x.abs(),
                    _ => unreachable!(),
                };
                if y.is_nan() {
                    out_vals.push(0.0);
                    out_mask.push(false);
                    any_null = true;
                } else {
                    out_vals.push(y);
                    out_mask.push(true);
                }
            }
            Ok(from_f64_parts(out_vals, if any_null { Some(out_mask) } else { None }))
        }
        "pow" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            let (a, am) = to_f64_parts(&args[0]);
            let (b, bm) = to_f64_parts(&args[1]);
            let mut vals = Vec::with_capacity(n);
            let mut mask = Vec::with_capacity(n);
            let mut any_null = false;
            for i in 0..a.len() {
                let ok = am.as_ref().is_none_or(|m| m[i]) && bm.as_ref().is_none_or(|m| m[i]);
                if ok {
                    vals.push(a[i].powf(b[i]));
                    mask.push(true);
                } else {
                    vals.push(0.0);
                    mask.push(false);
                    any_null = true;
                }
            }
            Ok(from_f64_parts(vals, if any_null { Some(mask) } else { None }))
        }
        "ifnull" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            let (a, am) = to_f64_parts(&args[0]);
            let (b, bm) = to_f64_parts(&args[1]);
            let mut vals = Vec::with_capacity(n);
            let mut mask = Vec::with_capacity(n);
            let mut any_null = false;
            for i in 0..a.len() {
                let a_ok = am.as_ref().is_none_or(|m| m[i]);
                let b_ok = bm.as_ref().is_none_or(|m| m[i]);
                if a_ok {
                    vals.push(a[i]);
                    mask.push(true);
                } else if b_ok {
                    vals.push(b[i]);
                    mask.push(true);
                } else {
                    vals.push(0.0);
                    mask.push(false);
                    any_null = true;
                }
            }
            Ok(from_f64_parts(vals, if any_null { Some(mask) } else { None }))
        }
        other => Err(SqlError::Plan { message: format!("unknown scalar function {other}") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;
    use aqp_storage::{DataType, Field, Schema};

    fn batch() -> Batch {
        let schema = Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("time", DataType::Float),
            Field::nullable("bytes", DataType::Int),
        ])
        .unwrap();
        Batch::new(
            schema,
            vec![
                Column::from_strs(&["NYC", "SF", "NYC", "LA"]),
                Column::from_f64s(vec![10.0, 20.0, 30.0, 40.0]),
                Column::from_opt_i64s(vec![Some(1), None, Some(3), Some(4)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        let c = eval(&E::col("time"), &b).unwrap();
        assert_eq!(c.to_f64_vec(), vec![10.0, 20.0, 30.0, 40.0]);
        let l = eval(&E::lit(5i64), &b).unwrap();
        assert_eq!(l.len(), 4);
        assert_eq!(l.f64_at(2), Some(5.0));
    }

    #[test]
    fn arithmetic_with_null_propagation() {
        let b = batch();
        let e = E::binary(BinOp::Add, E::col("time"), E::col("bytes"));
        let c = eval(&e, &b).unwrap();
        assert_eq!(c.f64_at(0), Some(11.0));
        assert_eq!(c.f64_at(1), None); // NULL bytes
        assert_eq!(c.f64_at(3), Some(44.0));
    }

    #[test]
    fn division_by_zero_is_null() {
        let b = batch();
        let e = E::binary(BinOp::Div, E::col("time"), E::lit(0i64));
        let c = eval(&e, &b).unwrap();
        assert!(c.is_null(0));
    }

    #[test]
    fn string_equality_filter() {
        let b = batch();
        let e = E::binary(BinOp::Eq, E::col("city"), E::lit("NYC"));
        let mask = eval_predicate(&e, &b).unwrap();
        assert_eq!(mask, vec![true, false, true, false]);
    }

    #[test]
    fn numeric_comparisons() {
        let b = batch();
        let e = E::binary(BinOp::Ge, E::col("time"), E::lit(20.0));
        assert_eq!(eval_predicate(&e, &b).unwrap(), vec![false, true, true, true]);
        let e = E::binary(BinOp::Ne, E::col("time"), E::lit(20.0));
        assert_eq!(eval_predicate(&e, &b).unwrap(), vec![true, false, true, true]);
    }

    #[test]
    fn null_comparison_filters_out() {
        let b = batch();
        // bytes > 0: NULL row must NOT pass.
        let e = E::binary(BinOp::Gt, E::col("bytes"), E::lit(0i64));
        assert_eq!(eval_predicate(&e, &b).unwrap(), vec![true, false, true, true]);
    }

    #[test]
    fn three_valued_and_or() {
        let b = batch();
        // (bytes > 0) OR (time > 15): NULL OR true = true for row 1.
        let e = E::binary(
            BinOp::Or,
            E::binary(BinOp::Gt, E::col("bytes"), E::lit(0i64)),
            E::binary(BinOp::Gt, E::col("time"), E::lit(15.0)),
        );
        assert_eq!(eval_predicate(&e, &b).unwrap(), vec![true, true, true, true]);
        // (bytes > 0) AND (time > 15): NULL AND true = NULL → filtered.
        let e = E::binary(
            BinOp::And,
            E::binary(BinOp::Gt, E::col("bytes"), E::lit(0i64)),
            E::binary(BinOp::Gt, E::col("time"), E::lit(15.0)),
        );
        assert_eq!(eval_predicate(&e, &b).unwrap(), vec![false, false, true, true]);
    }

    #[test]
    fn not_and_neg() {
        let b = batch();
        let e = E::Not(Box::new(E::binary(BinOp::Eq, E::col("city"), E::lit("NYC"))));
        assert_eq!(eval_predicate(&e, &b).unwrap(), vec![false, true, false, true]);
        let e = E::Neg(Box::new(E::col("time")));
        assert_eq!(eval(&e, &b).unwrap().f64_at(0), Some(-10.0));
    }

    #[test]
    fn scalar_functions() {
        let b = batch();
        let e = E::Func { name: "sqrt".into(), args: vec![E::col("time")] };
        let c = eval(&e, &b).unwrap();
        assert!((c.f64_at(1).unwrap() - 20.0f64.sqrt()).abs() < 1e-12);

        let e = E::Func { name: "log".into(), args: vec![E::lit(-1.0)] };
        let c = eval(&e, &b).unwrap();
        assert!(c.is_null(0)); // log of non-positive → NULL

        let e = E::Func {
            name: "ifnull".into(),
            args: vec![E::col("bytes"), E::lit(0i64)],
        };
        let c = eval(&e, &b).unwrap();
        assert_eq!(c.f64_at(1), Some(0.0));
    }

    #[test]
    fn unknown_column_errors() {
        let b = batch();
        assert!(eval(&E::col("nope"), &b).is_err());
    }
}

//! The planner: validated AST → logical plan.
//!
//! Produces the *pre-rewrite* plan of Fig. 6(b) (left): scan → filter →
//! project → aggregate, with no resampling operator yet. The rewriter
//! (§5.3) decides where the resampling operator goes.

use aqp_storage::Schema;

use crate::ast::{AggFunc, Query, SelectItem, TableRef};
use crate::logical::LogicalPlan;
use crate::{Result, SqlError};

/// Plan a parsed query against the schema of its base table.
///
/// For nested queries the schema is that of the *innermost* table; the
/// inner block is planned first and the outer block consumes its output
/// columns (aggregate aliases and group keys).
pub fn plan_query(query: &Query, base_schema: &Schema) -> Result<LogicalPlan> {
    crate::parser::count_one(aqp_obs::name::SQL_PLANS_BUILT);
    match &query.from {
        TableRef::Table(name) => plan_block(query, name, base_schema),
        TableRef::Subquery(inner) => {
            let inner_plan = plan_query(inner, base_schema)?;
            // The outer block sees the inner block's output columns.
            let inner_cols = output_columns(inner);
            validate_outer_block(query, &inner_cols)?;
            plan_outer_block(query, inner_plan)
        }
    }
}

/// Names of the columns a query block emits.
fn output_columns(q: &Query) -> Vec<String> {
    let mut cols = Vec::new();
    for (i, item) in q.select.iter().enumerate() {
        match item {
            SelectItem::Column(c) => cols.push(c.clone()),
            SelectItem::Agg(_, alias) => {
                cols.push(alias.clone().unwrap_or_else(|| format!("agg{i}")));
            }
        }
    }
    cols
}

fn check_columns_exist(names: &[String], available: &[String], what: &str) -> Result<()> {
    for n in names {
        if !available.contains(n) {
            return Err(SqlError::Plan {
                message: format!("{what} references unknown column {n}"),
            });
        }
    }
    Ok(())
}

fn plan_block(query: &Query, table: &str, schema: &Schema) -> Result<LogicalPlan> {
    let available: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
    validate_block(query, &available)?;

    let mut plan = LogicalPlan::Scan { table: table.to_owned() };
    if let Some(ts) = &query.tablesample {
        plan = LogicalPlan::TableSample {
            input: Box::new(plan),
            rate: ts.rate,
            // Deterministic default stream; the session can re-plan with
            // its own seed if needed.
            seed: 0,
        };
    }
    if let Some(pred) = &query.where_clause {
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pred.clone() };
    }
    plan = LogicalPlan::Aggregate {
        input: Box::new(plan),
        group_by: query.group_by.clone(),
        aggs: query.aggregates().into_iter().cloned().collect(),
    };
    Ok(plan)
}

fn plan_outer_block(query: &Query, inner: LogicalPlan) -> Result<LogicalPlan> {
    let mut plan = inner;
    if let Some(pred) = &query.where_clause {
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pred.clone() };
    }
    plan = LogicalPlan::Aggregate {
        input: Box::new(plan),
        group_by: query.group_by.clone(),
        aggs: query.aggregates().into_iter().cloned().collect(),
    };
    Ok(plan)
}

fn validate_block(query: &Query, available: &[String]) -> Result<()> {
    // Aggregates present?
    if query.aggregates().is_empty() {
        return Err(SqlError::Plan {
            message: "query must contain at least one aggregate".into(),
        });
    }
    // WHERE columns exist?
    if let Some(pred) = &query.where_clause {
        let mut cols = Vec::new();
        pred.referenced_columns(&mut cols);
        check_columns_exist(&cols, available, "WHERE clause")?;
    }
    // GROUP BY columns exist?
    check_columns_exist(&query.group_by, available, "GROUP BY")?;
    // ORDER BY may reference SELECT aliases and group keys only.
    if let Some(o) = &query.order_by {
        let mut visible: Vec<String> = query.group_by.clone();
        for item in &query.select {
            if let SelectItem::Agg(_, Some(alias)) = item {
                visible.push(alias.clone());
            }
        }
        if !visible.contains(&o.column) {
            return Err(SqlError::Plan {
                message: format!(
                    "ORDER BY references {}; only GROUP BY keys and aggregate aliases are visible",
                    o.column
                ),
            });
        }
    }
    // HAVING may reference SELECT aliases and group keys only.
    if let Some(h) = &query.having {
        let mut visible: Vec<String> = query.group_by.clone();
        for item in &query.select {
            if let SelectItem::Agg(_, Some(alias)) = item {
                visible.push(alias.clone());
            }
        }
        let mut cols = Vec::new();
        h.referenced_columns(&mut cols);
        for c in &cols {
            if !visible.contains(c) {
                return Err(SqlError::Plan {
                    message: format!(
                        "HAVING references {c}; only GROUP BY keys and aggregate aliases are visible"
                    ),
                });
            }
        }
    }
    // Aggregate args reference known columns; non-COUNT aggregates need an
    // argument.
    for item in &query.select {
        match item {
            SelectItem::Agg(a, _) => {
                match (&a.func, &a.arg) {
                    (AggFunc::Count, _) => {}
                    (_, None) => {
                        return Err(SqlError::Plan {
                            message: format!("{} requires an argument", a.func.sql_name()),
                        })
                    }
                    (_, Some(arg)) => {
                        let mut cols = Vec::new();
                        arg.referenced_columns(&mut cols);
                        check_columns_exist(&cols, available, "aggregate argument")?;
                    }
                }
            }
            SelectItem::Column(c) => {
                // Bare columns must be GROUP BY keys.
                if !query.group_by.contains(c) {
                    return Err(SqlError::Plan {
                        message: format!(
                            "column {c} in SELECT must appear in GROUP BY"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

fn validate_outer_block(query: &Query, inner_cols: &[String]) -> Result<()> {
    validate_block(query, inner_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use aqp_storage::{DataType, Field};

    fn sessions_schema() -> Schema {
        Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("time", DataType::Float),
            Field::new("bytes", DataType::Int),
            Field::new("user_id", DataType::Int),
        ])
        .unwrap()
    }

    fn plan(sql: &str) -> Result<LogicalPlan> {
        let q = parse_query(sql).unwrap();
        plan_query(&q, &sessions_schema())
    }

    #[test]
    fn simple_query_plan_shape() {
        let p = plan("SELECT AVG(time) FROM sessions WHERE city = 'NYC'").unwrap();
        assert_eq!(
            p.explain(),
            "Aggregate[AVG(time)]\n  Filter[(city = 'NYC')]\n    Scan[sessions]\n"
        );
    }

    #[test]
    fn group_by_plan() {
        let p = plan("SELECT city, COUNT(*) FROM sessions GROUP BY city").unwrap();
        assert!(p.explain().contains("groups=[city]"));
    }

    #[test]
    fn nested_query_plan() {
        let p = plan(
            "SELECT AVG(s) FROM (SELECT SUM(bytes) AS s FROM sessions GROUP BY user_id)",
        )
        .unwrap();
        let text = p.explain();
        // Outer aggregate on top of inner aggregate.
        assert_eq!(text.matches("Aggregate").count(), 2);
        assert_eq!(p.leaf_table(), "sessions");
    }

    #[test]
    fn unknown_where_column_rejected() {
        assert!(plan("SELECT AVG(time) FROM sessions WHERE nope = 1").is_err());
    }

    #[test]
    fn unknown_agg_column_rejected() {
        assert!(plan("SELECT AVG(nope) FROM sessions").is_err());
    }

    #[test]
    fn bare_column_requires_group_by() {
        assert!(plan("SELECT city, AVG(time) FROM sessions").is_err());
        assert!(plan("SELECT city, AVG(time) FROM sessions GROUP BY city").is_ok());
    }

    #[test]
    fn aggregate_required() {
        assert!(plan("SELECT city FROM sessions GROUP BY city").is_err());
    }

    #[test]
    fn outer_block_sees_inner_aliases() {
        assert!(plan("SELECT AVG(s) FROM (SELECT SUM(bytes) AS s FROM sessions GROUP BY user_id)").is_ok());
        assert!(
            plan("SELECT AVG(t) FROM (SELECT SUM(bytes) AS s FROM sessions GROUP BY user_id)")
                .is_err()
        );
    }

    #[test]
    fn having_visibility_rules() {
        assert!(plan(
            "SELECT city, AVG(time) AS a FROM sessions GROUP BY city HAVING a > 10"
        )
        .is_ok());
        assert!(plan(
            "SELECT city, AVG(time) AS a FROM sessions GROUP BY city HAVING city = 'NYC'"
        )
        .is_ok());
        // Unaliased aggregates and base columns are not visible in HAVING.
        assert!(plan(
            "SELECT city, AVG(time) FROM sessions GROUP BY city HAVING time > 10"
        )
        .is_err());
    }

    #[test]
    fn min_requires_argument() {
        assert!(plan("SELECT MIN(time) FROM sessions").is_ok());
        // COUNT(*) is the only argument-less aggregate.
        let q = parse_query("SELECT COUNT(*) FROM sessions").unwrap();
        assert!(plan_query(&q, &sessions_schema()).is_ok());
    }
}

//! The logical query plan.
//!
//! Mirrors Fig. 5/6 of the paper: a query compiles into a plan with three
//! logical concerns — the approximate answer θ(S), the error estimate ξ̂,
//! and the diagnostic — all fed by one resampling operator after the
//! rewriter has run (§5.3).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ast::{AggExpr, Expr};

/// How many resamples the single consolidated scan must carry, and for
/// whom (Fig. 6(a): bootstrap weights S¹..S^K plus diagnostic weights
/// Dᵃ¹..Dᶜᵖ).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResampleSpec {
    /// Number of bootstrap resamples K (0 = no bootstrap weights).
    pub bootstrap_k: usize,
    /// Diagnostic weight groups: (subsample sizes b₁..b_k, subsamples per
    /// size p). `None` = no diagnostic weights.
    pub diagnostic: Option<DiagnosticWeights>,
    /// Seed for the Poisson weight streams.
    pub seed: u64,
}

/// The diagnostic part of a [`ResampleSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticWeights {
    /// Subsample sizes in pre-filter rows, increasing.
    pub subsample_rows: Vec<usize>,
    /// Subsamples per size (p).
    pub p: usize,
}

impl ResampleSpec {
    /// Bootstrap-only spec.
    pub fn bootstrap(k: usize, seed: u64) -> Self {
        ResampleSpec { bootstrap_k: k, diagnostic: None, seed }
    }

    /// Total number of weight columns this spec implies (the width cost
    /// of scan consolidation the paper discusses in §5.3.2).
    pub fn weight_columns(&self) -> usize {
        self.bootstrap_k
            + self
                .diagnostic
                .as_ref()
                .map(|d| d.subsample_rows.len() * d.p)
                .unwrap_or(0)
    }
}

/// Which error-estimation procedure the error operator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorMethod {
    /// Bootstrap over the resample aggregates.
    Bootstrap,
    /// Closed-form CLT estimate (no resamples needed).
    ClosedForm,
}

/// A node of the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a table (or a stored sample of one).
    Scan {
        /// Table name.
        table: String,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate (NULL = drop).
        predicate: Expr,
    },
    /// Per-row projection/derivation.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// (expression, output name) pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// The Poissonized resampling operator: augments each tuple with the
    /// weight columns described by `spec` (§5.2, extended for scan
    /// consolidation in §5.3.1).
    Resample {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Weight layout.
        spec: ResampleSpec,
    },
    /// A user-written `TABLESAMPLE POISSONIZED (rate·100)` (§5.2): each
    /// row is physically replicated `Poisson(rate)` times. One explicit
    /// resample — the building block the naive UNION-ALL rewrite stacks
    /// K times.
    TableSample {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Poisson rate λ.
        rate: f64,
        /// Weight-stream seed.
        seed: u64,
    },
    /// Aggregation. When a `Resample` appears below, the aggregate
    /// operator computes one accumulator per weight column in the same
    /// pass ("modifying all pre-existing aggregate functions to directly
    /// operate on weighted data").
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// GROUP BY column names.
        group_by: Vec<String>,
        /// Aggregate expressions.
        aggs: Vec<AggExpr>,
    },
    /// The bootstrap/closed-form error operator: consumes the point
    /// estimate plus the resample aggregates and emits a confidence
    /// interval.
    ErrorEstimate {
        /// Input plan (an `Aggregate`).
        input: Box<LogicalPlan>,
        /// Technique.
        method: ErrorMethod,
        /// Target coverage α.
        alpha: f64,
    },
    /// The diagnostic operator: consumes subsample estimates and emits
    /// the accept/reject verdict.
    Diagnostic {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// The child plan, if any.
    pub fn input(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => None,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Resample { input, .. }
            | LogicalPlan::TableSample { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::ErrorEstimate { input, .. }
            | LogicalPlan::Diagnostic { input } => Some(input),
        }
    }

    /// Is this operator *pass-through* in the §5.3.2 sense — i.e. does it
    /// preserve the statistical properties of the columns that are
    /// eventually aggregated? Scans, filters, and deterministic per-row
    /// projections are; aggregation and the estimation operators are not.
    pub fn is_pass_through(&self) -> bool {
        matches!(
            self,
            LogicalPlan::Scan { .. } | LogicalPlan::Filter { .. } | LogicalPlan::Project { .. }
        )
    }

    /// The table scanned at the leaf.
    pub fn leaf_table(&self) -> &str {
        match self {
            LogicalPlan::Scan { table } => table,
            other => other.input().expect("non-scan nodes have inputs").leaf_table(),
        }
    }

    /// Depth-first search for a node matching `pred`.
    pub fn find(&self, pred: &dyn Fn(&LogicalPlan) -> bool) -> Option<&LogicalPlan> {
        if pred(self) {
            return Some(self);
        }
        self.input().and_then(|i| i.find(pred))
    }

    /// The bare operator name, without parameters (`"Scan"`, `"Filter"`,
    /// …). Stable identifiers for the profiling layer's `op:<name>`
    /// spans.
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Resample { .. } => "Resample",
            LogicalPlan::TableSample { .. } => "TableSample",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::ErrorEstimate { .. } => "ErrorEstimate",
            LogicalPlan::Diagnostic { .. } => "Diagnostic",
        }
    }

    /// One-line description of this node alone (the `explain()` line
    /// without indentation or children).
    pub fn describe(&self) -> String {
        match self {
            LogicalPlan::Scan { table } => format!("Scan[{table}]"),
            LogicalPlan::Filter { predicate, .. } => format!("Filter[{predicate}]"),
            LogicalPlan::Project { exprs, .. } => {
                let items: Vec<String> =
                    exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("Project[{}]", items.join(", "))
            }
            LogicalPlan::Resample { spec, .. } => {
                let diag = spec
                    .diagnostic
                    .as_ref()
                    .map(|d| format!(", diag={}x{}", d.subsample_rows.len(), d.p))
                    .unwrap_or_default();
                format!("Resample[K={}{diag}, seed={}]", spec.bootstrap_k, spec.seed)
            }
            LogicalPlan::TableSample { rate, seed, .. } => {
                format!("TableSamplePoissonized[rate={rate}, seed={seed}]")
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let items: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                if group_by.is_empty() {
                    format!("Aggregate[{}]", items.join(", "))
                } else {
                    format!("Aggregate[{}] groups=[{}]", items.join(", "), group_by.join(", "))
                }
            }
            LogicalPlan::ErrorEstimate { method, alpha, .. } => {
                format!("ErrorEstimate[{method:?}, alpha={alpha}]")
            }
            LogicalPlan::Diagnostic { .. } => "Diagnostic[]".to_string(),
        }
    }

    /// Preorder node id of this node within the plan rooted at `root`:
    /// the root is 0, its input 1, and so on down the (linear) chain.
    /// Returns `None` when `self` is not a node of `root`.
    ///
    /// Plans are linear chains, so the preorder id doubles as the depth.
    /// The profiling layer (`aqp-prof`) uses these ids to stitch operator
    /// spans back into a plan-shaped tree.
    pub fn node_id_in(&self, root: &LogicalPlan) -> Option<usize> {
        let mut id = 0usize;
        let mut cur = Some(root);
        while let Some(node) = cur {
            if std::ptr::eq(node, self) {
                return Some(id);
            }
            id += 1;
            cur = node.input();
        }
        None
    }

    /// Every node of the plan paired with its preorder id, root first.
    pub fn nodes_preorder(&self) -> Vec<(usize, &LogicalPlan)> {
        let mut out = Vec::new();
        let mut cur = Some(self);
        while let Some(node) = cur {
            out.push((out.len(), node));
            cur = node.input();
        }
        out
    }

    /// Render the plan as an indented EXPLAIN tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.describe());
        out.push('\n');
        if let Some(i) = self.input() {
            i.explain_into(out, depth + 1);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, BinOp, Expr as E};

    fn sample_plan() -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(LogicalPlan::Scan { table: "sessions".into() }),
                predicate: E::binary(BinOp::Eq, E::col("city"), E::lit("NYC")),
            }),
            group_by: vec![],
            aggs: vec![AggExpr { func: AggFunc::Avg, arg: Some(E::col("time")) }],
        }
    }

    #[test]
    fn explain_shape() {
        let plan = sample_plan();
        let text = plan.explain();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "Aggregate[AVG(time)]");
        assert!(lines[1].trim_start().starts_with("Filter["));
        assert!(lines[2].trim_start().starts_with("Scan[sessions]"));
    }

    #[test]
    fn pass_through_classification() {
        assert!(LogicalPlan::Scan { table: "t".into() }.is_pass_through());
        let plan = sample_plan();
        assert!(!plan.is_pass_through()); // Aggregate
        assert!(plan.input().unwrap().is_pass_through()); // Filter
    }

    #[test]
    fn leaf_table_traversal() {
        assert_eq!(sample_plan().leaf_table(), "sessions");
    }

    #[test]
    fn weight_column_accounting() {
        let spec = ResampleSpec {
            bootstrap_k: 100,
            diagnostic: Some(DiagnosticWeights { subsample_rows: vec![10, 20, 40], p: 100 }),
            seed: 1,
        };
        // Fig. 6(a): 100 bootstrap + 3 × 100 diagnostic weight columns.
        assert_eq!(spec.weight_columns(), 400);
        assert_eq!(ResampleSpec::bootstrap(100, 1).weight_columns(), 100);
    }

    #[test]
    fn find_locates_nodes() {
        let plan = sample_plan();
        assert!(plan.find(&|p| matches!(p, LogicalPlan::Filter { .. })).is_some());
        assert!(plan.find(&|p| matches!(p, LogicalPlan::Resample { .. })).is_none());
    }

    #[test]
    fn preorder_ids_follow_the_chain() {
        let plan = sample_plan();
        let nodes = plan.nodes_preorder();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0].1.op_name(), "Aggregate");
        assert_eq!(nodes[1].1.op_name(), "Filter");
        assert_eq!(nodes[2].1.op_name(), "Scan");
        for (id, node) in &nodes {
            assert_eq!(node.node_id_in(&plan), Some(*id));
        }
        let other = LogicalPlan::Scan { table: "other".into() };
        assert_eq!(other.node_id_in(&plan), None);
    }

    #[test]
    fn describe_matches_explain_lines() {
        let plan = sample_plan();
        let rendered = plan.explain();
        let lines: Vec<&str> = rendered.lines().map(str::trim_start).collect();
        let descs: Vec<String> =
            plan.nodes_preorder().iter().map(|(_, n)| n.describe()).collect();
        assert_eq!(lines, descs);
    }
}

//! # aqp-sql
//!
//! A from-scratch SQL subset front end for `reliable-aqp`, covering the
//! query class the paper evaluates:
//!
//! * single-block aggregation queries — `SELECT agg(expr), … FROM t
//!   [WHERE …] [GROUP BY …]` — with the aggregates of §3 (AVG, SUM,
//!   COUNT, MIN, MAX, VARIANCE, STDDEV, PERCENTILE) plus named aggregate
//!   UDFs,
//! * one level of nested subqueries in FROM (the shape that puts queries
//!   into QSet-2),
//! * the `TABLESAMPLE POISSONIZED (rate)` operator of §5.2, and
//! * BlinkDB-style error-bound clauses: `WITHIN n% ERROR AT CONFIDENCE
//!   c%`, plus `HAVING`, `ORDER BY`, `LIMIT`, and an `EXPLAIN` prefix
//!   ([`parser::parse_statement`]).
//!
//! Beyond parsing ([`lexer`], [`parser`], [`ast`]), the crate provides
//! vectorized expression evaluation over columnar batches ([`expr`]), the
//! logical plan ([`logical`]), the planner ([`planner`]), and — the part
//! the paper §5.3 is about — the plan **rewriter** ([`rewriter`]) that
//! performs *scan consolidation* (one resample operator carrying all
//! bootstrap + diagnostic weight groups) and *operator pushdown* (the
//! resample operator sinks below the longest pass-through prefix).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod expr;
pub mod lexer;
pub mod logical;
pub mod parser;
pub mod planner;
pub mod rewriter;

pub use ast::{AggExpr, AggFunc, ErrorClause, Expr, Query, SelectItem, TableRef};
pub use logical::{LogicalPlan, ResampleSpec};
pub use parser::{parse_query, parse_statement};
pub use planner::plan_query;
pub use rewriter::rewrite_for_error_estimation;

/// Errors from parsing and planning.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte position in the input.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error.
    Parse {
        /// What went wrong, with token context.
        message: String,
    },
    /// Semantic/planning error (unknown column, bad aggregate arg, …).
    Plan {
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse { message } => write!(f, "parse error: {message}"),
            SqlError::Plan { message } => write!(f, "plan error: {message}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SqlError>;

//! Abstract syntax for the supported SQL subset.

use std::fmt;

use aqp_storage::Value;
use serde::{Deserialize, Serialize};

/// Binary operators, in precedence classes (see the parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// Whether the result is boolean.
    pub fn is_predicate(self) -> bool {
        !matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

/// Scalar (per-row) expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Scalar function call (`LOG(x)`, `ABS(x)`, `SQRT(x)`, `IFNULL(x, y)`).
    Func {
        /// Function name, lowercased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Column names referenced anywhere in the expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.referenced_columns(out);
                rhs.referenced_columns(out);
            }
            Expr::Neg(e) | Expr::Not(e) => e.referenced_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// Shorthand column expression.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Shorthand literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand binary op.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { op, lhs, rhs } => {
                write!(f, "({lhs} {} {rhs})", op.symbol())
            }
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Func { name, args } => {
                write!(f, "{}(", name.to_uppercase())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Aggregate function names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `AVG`
    Avg,
    /// `SUM`
    Sum,
    /// `COUNT`
    Count,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `VARIANCE`
    Variance,
    /// `STDDEV`
    StdDev,
    /// `PERCENTILE(expr, q)`
    Percentile(
        /// Quantile level in (0, 1).
        f64,
    ),
    /// A named aggregate UDF, resolved at execution time.
    Udf(
        /// Registry name, lowercased.
        String,
    ),
}

impl AggFunc {
    /// Whether a closed-form error estimate exists (§2.3.2).
    pub fn closed_form_applicable(&self) -> bool {
        matches!(
            self,
            AggFunc::Avg | AggFunc::Sum | AggFunc::Count | AggFunc::Variance | AggFunc::StdDev
        )
    }

    /// Upper-case SQL name.
    pub fn sql_name(&self) -> String {
        match self {
            AggFunc::Avg => "AVG".into(),
            AggFunc::Sum => "SUM".into(),
            AggFunc::Count => "COUNT".into(),
            AggFunc::Min => "MIN".into(),
            AggFunc::Max => "MAX".into(),
            AggFunc::Variance => "VARIANCE".into(),
            AggFunc::StdDev => "STDDEV".into(),
            AggFunc::Percentile(q) => format!("PERCENTILE[{q}]"),
            AggFunc::Udf(name) => name.to_uppercase(),
        }
    }
}

/// One aggregate expression, e.g. `AVG(time / 60)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The argument; `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(f, "{}({a})", self.func.sql_name()),
            None => write!(f, "{}(*)", self.func.sql_name()),
        }
    }
}

/// A SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// An aggregate, with optional alias.
    Agg(AggExpr, Option<String>),
    /// A bare column (must be a GROUP BY key).
    Column(String),
}

/// FROM target.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table.
    Table(String),
    /// A parenthesized subquery (one nesting level; puts the query in
    /// QSet-2 territory).
    Subquery(Box<Query>),
}

/// BlinkDB-style error bound: `WITHIN 10% ERROR AT CONFIDENCE 95%`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorClause {
    /// Maximum relative error (0.1 = 10%).
    pub relative_error: f64,
    /// Interval confidence (0.95 = 95%).
    pub confidence: f64,
}

/// The explicit Poissonized-resampling operator of §5.2:
/// `TABLESAMPLE POISSONIZED (100)` — the parenthesized number is the
/// Poisson rate × 100.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableSample {
    /// The Poisson rate λ (1.0 for the standard bootstrap resample).
    pub rate: f64,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM target.
    pub from: TableRef,
    /// Explicit `TABLESAMPLE POISSONIZED` on the FROM target.
    pub tablesample: Option<TableSample>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY column names.
    pub group_by: Vec<String>,
    /// HAVING predicate over SELECT aliases and group keys (applied to
    /// the per-group results after aggregation).
    pub having: Option<Expr>,
    /// ORDER BY over a SELECT alias or group key.
    pub order_by: Option<OrderBy>,
    /// LIMIT on output groups.
    pub limit: Option<usize>,
    /// Error-bound clause.
    pub error_clause: Option<ErrorClause>,
}

/// An ORDER BY item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderBy {
    /// The alias or group-key column to sort on.
    pub column: String,
    /// Descending order?
    pub descending: bool,
}

impl Query {
    /// All aggregate expressions in the SELECT list.
    pub fn aggregates(&self) -> Vec<&AggExpr> {
        self.select
            .iter()
            .filter_map(|s| match s {
                SelectItem::Agg(a, _) => Some(a),
                SelectItem::Column(_) => None,
            })
            .collect()
    }

    /// Whether this query can use closed-form error estimation for every
    /// aggregate (the QSet-1 membership test): single block, no UDF/MIN/
    /// MAX/percentile aggregates.
    pub fn closed_form_applicable(&self) -> bool {
        matches!(self.from, TableRef::Table(_))
            && !self.aggregates().is_empty()
            && self.aggregates().iter().all(|a| a.func.closed_form_applicable())
    }

    /// Whether the query is nested (FROM contains a subquery).
    pub fn is_nested(&self) -> bool {
        matches!(self.from, TableRef::Subquery(_))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Agg(a, Some(alias)) => write!(f, "{a} AS {alias}")?,
                SelectItem::Agg(a, None) => write!(f, "{a}")?,
                SelectItem::Column(c) => write!(f, "{c}")?,
            }
        }
        match &self.from {
            TableRef::Table(t) => write!(f, " FROM {t}")?,
            TableRef::Subquery(q) => write!(f, " FROM ({q})")?,
        }
        if let Some(ts) = &self.tablesample {
            write!(f, " TABLESAMPLE POISSONIZED ({})", ts.rate * 100.0)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if let Some(o) = &self.order_by {
            write!(f, " ORDER BY {}{}", o.column, if o.descending { " DESC" } else { "" })?;
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(e) = &self.error_clause {
            write!(
                f,
                " WITHIN {}% ERROR AT CONFIDENCE {}%",
                e.relative_error * 100.0,
                e.confidence * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::col("a"),
            Expr::binary(BinOp::Mul, Expr::col("a"), Expr::col("b")),
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn display_round_trippable_shapes() {
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Eq, Expr::col("city"), Expr::lit("NYC")),
            Expr::binary(BinOp::Gt, Expr::col("time"), Expr::lit(10i64)),
        );
        assert_eq!(e.to_string(), "((city = 'NYC') AND (time > 10))");
    }

    #[test]
    fn closed_form_applicability() {
        let q = Query {
            select: vec![SelectItem::Agg(
                AggExpr { func: AggFunc::Avg, arg: Some(Expr::col("t")) },
                None,
            )],
            from: TableRef::Table("s".into()),
            tablesample: None,
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: None,
            limit: None,
            error_clause: None,
        };
        assert!(q.closed_form_applicable());

        let mut q2 = q.clone();
        q2.select = vec![SelectItem::Agg(
            AggExpr { func: AggFunc::Max, arg: Some(Expr::col("t")) },
            None,
        )];
        assert!(!q2.closed_form_applicable());

        let mut q3 = q.clone();
        q3.from = TableRef::Subquery(Box::new(q.clone()));
        assert!(!q3.closed_form_applicable());
        assert!(q3.is_nested());
    }

    #[test]
    fn agg_display() {
        let a = AggExpr { func: AggFunc::Count, arg: None };
        assert_eq!(a.to_string(), "COUNT(*)");
        let a = AggExpr { func: AggFunc::Percentile(0.99), arg: Some(Expr::col("t")) };
        assert_eq!(a.to_string(), "PERCENTILE[0.99](t)");
    }
}

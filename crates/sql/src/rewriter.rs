//! The logical-plan rewriter of §5.3.
//!
//! Two rewrites:
//!
//! 1. **Scan consolidation** (§5.3.1): instead of one subquery per
//!    bootstrap resample and per diagnostic subsample (the §5.2 baseline's
//!    UNION ALL of hundreds of subqueries), a single [`ResampleSpec`]
//!    carries *all* weight groups — K bootstrap weights plus k × p
//!    diagnostic weights — so one scan feeds the answer, the error
//!    estimate, and the diagnostic.
//! 2. **Operator pushdown** (§5.3.2): the resampling operator is inserted
//!    immediately *above* the longest chain of consecutive pass-through
//!    operators (scan, filter, project), i.e. just below the first
//!    non-pass-through operator — so weights are only generated for tuples
//!    that survive filtering. The naive placement (directly above the
//!    scan) is retained for the ablation benchmarks.

use crate::logical::{ErrorMethod, LogicalPlan, ResampleSpec};

/// Where to put the resampling operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResamplePlacement {
    /// Directly above the scan (the naive Fig. 6(b)-left position).
    AboveScan,
    /// Below the first non-pass-through operator (the optimized
    /// Fig. 6(b)-right position).
    PushedDown,
}

/// Rewrite `plan` for single-scan error estimation + diagnostics:
/// inserts one consolidated `Resample` at the requested placement and
/// wraps the plan in the error-estimate and diagnostic operators.
pub fn rewrite_for_error_estimation(
    plan: LogicalPlan,
    spec: ResampleSpec,
    method: ErrorMethod,
    alpha: f64,
    placement: ResamplePlacement,
) -> LogicalPlan {
    crate::parser::count_one(aqp_obs::name::SQL_PLANS_REWRITTEN);
    let with_resample = match placement {
        ResamplePlacement::AboveScan => insert_above_scan(plan, &spec),
        ResamplePlacement::PushedDown => insert_pushed_down(plan, &spec),
    };
    let with_error = LogicalPlan::ErrorEstimate {
        input: Box::new(with_resample),
        method,
        alpha,
    };
    if spec.diagnostic.is_some() {
        LogicalPlan::Diagnostic { input: Box::new(with_error) }
    } else {
        with_error
    }
}

/// Insert `Resample` directly above every `Scan` (naive placement).
pub fn insert_above_scan(plan: LogicalPlan, spec: &ResampleSpec) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { table } => LogicalPlan::Resample {
            input: Box::new(LogicalPlan::Scan { table }),
            spec: spec.clone(),
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(insert_above_scan(*input, spec)),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(insert_above_scan(*input, spec)),
            exprs,
        },
        LogicalPlan::Aggregate { input, group_by, aggs } => LogicalPlan::Aggregate {
            input: Box::new(insert_above_scan(*input, spec)),
            group_by,
            aggs,
        },
        other => other,
    }
}

/// Insert `Resample` just below the first (deepest-path) non-pass-through
/// operator: walk down from the root; when the current node is *not*
/// pass-through but its input chain is, the resample goes between them.
///
/// For nested plans (aggregate over aggregate), the resample sinks below
/// the *innermost* aggregate — resampling must happen at the level of the
/// base sample's rows, since those are the units of the sampling
/// distribution.
pub fn insert_pushed_down(plan: LogicalPlan, spec: &ResampleSpec) -> LogicalPlan {
    match plan {
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            // Sink into nested aggregates first.
            let has_inner_agg = input
                .find(&|p| matches!(p, LogicalPlan::Aggregate { .. }))
                .is_some();
            let new_input = if has_inner_agg || !input.is_pass_through_chain() {
                insert_pushed_down(*input, spec)
            } else {
                LogicalPlan::Resample { input, spec: spec.clone() }
            };
            LogicalPlan::Aggregate { input: Box::new(new_input), group_by, aggs }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(insert_pushed_down(*input, spec)),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(insert_pushed_down(*input, spec)),
            exprs,
        },
        LogicalPlan::Scan { table } => LogicalPlan::Resample {
            input: Box::new(LogicalPlan::Scan { table }),
            spec: spec.clone(),
        },
        other => other,
    }
}

impl LogicalPlan {
    /// Whether this plan is a chain of pass-through operators all the way
    /// to the scan.
    pub fn is_pass_through_chain(&self) -> bool {
        if !self.is_pass_through() {
            return false;
        }
        match self.input() {
            None => true,
            Some(i) => i.is_pass_through_chain(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggExpr, AggFunc, BinOp, Expr as E};
    use crate::logical::DiagnosticWeights;

    fn filter_agg_plan() -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(LogicalPlan::Scan { table: "s".into() }),
                predicate: E::binary(BinOp::Eq, E::col("city"), E::lit("NYC")),
            }),
            group_by: vec![],
            aggs: vec![AggExpr { func: AggFunc::Avg, arg: Some(E::col("time")) }],
        }
    }

    fn spec() -> ResampleSpec {
        ResampleSpec {
            bootstrap_k: 100,
            diagnostic: Some(DiagnosticWeights { subsample_rows: vec![10, 20, 40], p: 100 }),
            seed: 7,
        }
    }

    #[test]
    fn pushdown_places_resample_below_aggregate_above_filter() {
        let rewritten = insert_pushed_down(filter_agg_plan(), &spec());
        let text = rewritten.explain();
        let lines: Vec<&str> = text.lines().map(|l| l.trim_start()).collect();
        assert_eq!(lines[0], "Aggregate[AVG(time)]");
        assert!(lines[1].starts_with("Resample["), "{text}");
        assert!(lines[2].starts_with("Filter["), "{text}");
        assert!(lines[3].starts_with("Scan["), "{text}");
    }

    #[test]
    fn naive_places_resample_above_scan() {
        let rewritten = insert_above_scan(filter_agg_plan(), &spec());
        let text = rewritten.explain();
        let lines: Vec<&str> = text.lines().map(|l| l.trim_start()).collect();
        assert_eq!(lines[0], "Aggregate[AVG(time)]");
        assert!(lines[1].starts_with("Filter["), "{text}");
        assert!(lines[2].starts_with("Resample["), "{text}");
        assert!(lines[3].starts_with("Scan["), "{text}");
    }

    #[test]
    fn full_rewrite_wraps_error_and_diagnostic_operators() {
        let p = rewrite_for_error_estimation(
            filter_agg_plan(),
            spec(),
            ErrorMethod::Bootstrap,
            0.95,
            ResamplePlacement::PushedDown,
        );
        let text = p.explain();
        let lines: Vec<&str> = text.lines().map(|l| l.trim_start()).collect();
        assert!(lines[0].starts_with("Diagnostic["), "{text}");
        assert!(lines[1].starts_with("ErrorEstimate[Bootstrap"), "{text}");
        assert!(lines[2].starts_with("Aggregate["), "{text}");
    }

    #[test]
    fn no_diagnostic_weights_no_diagnostic_operator() {
        let p = rewrite_for_error_estimation(
            filter_agg_plan(),
            ResampleSpec::bootstrap(100, 1),
            ErrorMethod::Bootstrap,
            0.95,
            ResamplePlacement::PushedDown,
        );
        assert!(!p.explain().contains("Diagnostic"));
    }

    #[test]
    fn nested_aggregate_sinks_resample_to_innermost() {
        let nested = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Aggregate {
                input: Box::new(LogicalPlan::Scan { table: "s".into() }),
                group_by: vec!["user".into()],
                aggs: vec![AggExpr { func: AggFunc::Sum, arg: Some(E::col("bytes")) }],
            }),
            group_by: vec![],
            aggs: vec![AggExpr { func: AggFunc::Avg, arg: Some(E::col("agg0")) }],
        };
        let rewritten = insert_pushed_down(nested, &ResampleSpec::bootstrap(10, 1));
        let text = rewritten.explain();
        let lines: Vec<&str> = text.lines().map(|l| l.trim_start()).collect();
        assert!(lines[0].starts_with("Aggregate["));
        assert!(lines[1].starts_with("Aggregate["), "{text}");
        assert!(lines[2].starts_with("Resample["), "{text}");
        assert!(lines[3].starts_with("Scan["), "{text}");
    }

    #[test]
    fn pass_through_chain_detection() {
        let chain = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan { table: "t".into() }),
            predicate: E::lit(true),
        };
        assert!(chain.is_pass_through_chain());
        assert!(!filter_agg_plan().is_pass_through_chain());
    }
}

//! Synthetic columnar tables.
//!
//! Two table shapes cover the paper's workload domains:
//!
//! * [`conviva_sessions_table`] — media-access sessions (the Conviva
//!   trace's domain: "0.5 billion records of media accesses by Conviva
//!   users"): Zipf-skewed city/site, lognormal session time, Pareto
//!   buffering, lognormal bytes.
//! * [`facebook_events_table`] — generic events with columns spanning the
//!   tail-weight spectrum, from bounded (dwell fraction) through
//!   lognormal (latency) to infinite-variance Pareto (payload), so every
//!   error-estimation failure mode of §3 is reachable.

use aqp_stats::dist::{sample_exponential, sample_lognormal, sample_normal, sample_pareto, Zipf};
use aqp_stats::rng::rng_from_seed;
use aqp_storage::{Batch, Column, DataType, Field, Schema, Table};
use rand::{Rng, RngExt};

/// US cities weighted by a Zipf law (rank 1 = NYC).
const CITIES: &[&str] = &[
    "NYC", "LA", "Chicago", "Houston", "Phoenix", "Philadelphia", "SanAntonio", "SanDiego",
    "Dallas", "Austin", "SF", "Seattle", "Denver", "Boston", "Portland", "Miami",
];

/// Content-delivery sites, Zipf-ranked.
const SITES: &[&str] = &[
    "cdn-east", "cdn-west", "cdn-eu", "cdn-apac", "origin-1", "origin-2", "edge-9", "edge-17",
];

fn city_column<R: Rng>(rng: &mut R, rows: usize) -> Column {
    let z = Zipf::new(CITIES.len() as u64, 1.1);
    let vals: Vec<&str> = (0..rows).map(|_| CITIES[(z.sample(rng) - 1) as usize]).collect();
    Column::from_strs(&vals)
}

/// The Conviva-style sessions table.
///
/// Columns:
/// * `city` (string, Zipf) — the paper's running-example filter column,
/// * `site` (string, Zipf),
/// * `time` (float) — session seconds, lognormal (benign-moderate tail),
/// * `buffer_ratio` (float) — Pareto α=2.5 (heavy but finite variance),
/// * `bytes` (float) — lognormal with a fat tail (σ=1.5),
/// * `bitrate` (float) — normal, clamped positive (benign),
/// * `user_id` (int) — Zipf over `rows/50` users,
/// * `is_mobile` (bool).
pub fn conviva_sessions_table(rows: usize, partitions: usize, seed: u64) -> Table {
    let mut rng = rng_from_seed(seed);
    let site_z = Zipf::new(SITES.len() as u64, 1.3);
    let user_z = Zipf::new(((rows / 50).max(10)) as u64, 1.05);

    let city = city_column(&mut rng, rows);
    let site_vals: Vec<&str> =
        (0..rows).map(|_| SITES[(site_z.sample(&mut rng) - 1) as usize]).collect();
    let time: Vec<f64> = (0..rows).map(|_| sample_lognormal(&mut rng, 4.0, 0.8)).collect();
    let buffer_ratio: Vec<f64> =
        (0..rows).map(|_| sample_pareto(&mut rng, 0.01, 2.5).min(1.0)).collect();
    let bytes: Vec<f64> = (0..rows).map(|_| sample_lognormal(&mut rng, 13.0, 1.5)).collect();
    let bitrate: Vec<f64> =
        (0..rows).map(|_| sample_normal(&mut rng, 2500.0, 600.0).max(100.0)).collect();
    let user_id: Vec<i64> = (0..rows).map(|_| user_z.sample(&mut rng) as i64).collect();
    let is_mobile: Vec<bool> = (0..rows).map(|_| rng.random::<f64>() < 0.41).collect();

    let schema = Schema::new(vec![
        Field::new("city", DataType::Str),
        Field::new("site", DataType::Str),
        Field::new("time", DataType::Float),
        Field::new("buffer_ratio", DataType::Float),
        Field::new("bytes", DataType::Float),
        Field::new("bitrate", DataType::Float),
        Field::new("user_id", DataType::Int),
        Field::new("is_mobile", DataType::Bool),
    ])
    .expect("static schema is valid");
    let batch = Batch::new(
        schema,
        vec![
            city,
            Column::from_strs(&site_vals),
            Column::from_f64s(time),
            Column::from_f64s(buffer_ratio),
            Column::from_f64s(bytes),
            Column::from_f64s(bitrate),
            Column::from_i64s(user_id),
            Column::from_bools(is_mobile),
        ],
    )
    .expect("columns match schema");
    Table::from_batch("sessions", batch, partitions).expect("partitioning valid")
}

/// The Facebook-style events table.
///
/// Columns sweep the tail spectrum:
/// * `dwell_frac` (float in \[0,1\]) — bounded; every technique behaves,
/// * `latency_ms` (float) — lognormal σ=1.0 (moderate),
/// * `payload_kb` (float) — Pareto α=1.3: infinite variance — MIN/MAX and
///   even mean-estimation get hard,
/// * `score` (float) — normal (benign),
/// * `wait_s` (float) — exponential,
/// * `age_days` (int) — uniform recency,
/// * `country` (string, Zipf),
/// * `user_id` (int, Zipf).
pub fn facebook_events_table(rows: usize, partitions: usize, seed: u64) -> Table {
    let mut rng = rng_from_seed(seed);
    let country_z = Zipf::new(CITIES.len() as u64, 1.4);
    let user_z = Zipf::new(((rows / 40).max(10)) as u64, 1.1);

    let dwell: Vec<f64> = (0..rows)
        .map(|_| {
            let x: f64 = rng.random::<f64>();
            x * x // skewed toward 0 but bounded
        })
        .collect();
    let latency: Vec<f64> = (0..rows).map(|_| sample_lognormal(&mut rng, 3.0, 1.0)).collect();
    let payload: Vec<f64> = (0..rows).map(|_| sample_pareto(&mut rng, 1.0, 1.3)).collect();
    let score: Vec<f64> = (0..rows).map(|_| sample_normal(&mut rng, 50.0, 12.0)).collect();
    let wait: Vec<f64> = (0..rows).map(|_| sample_exponential(&mut rng, 0.2)).collect();
    let age: Vec<i64> = (0..rows).map(|_| rng.random_range(0..365)).collect();
    let country_vals: Vec<&str> =
        (0..rows).map(|_| CITIES[(country_z.sample(&mut rng) - 1) as usize]).collect();
    let user_id: Vec<i64> = (0..rows).map(|_| user_z.sample(&mut rng) as i64).collect();

    let schema = Schema::new(vec![
        Field::new("dwell_frac", DataType::Float),
        Field::new("latency_ms", DataType::Float),
        Field::new("payload_kb", DataType::Float),
        Field::new("score", DataType::Float),
        Field::new("wait_s", DataType::Float),
        Field::new("age_days", DataType::Int),
        Field::new("country", DataType::Str),
        Field::new("user_id", DataType::Int),
    ])
    .expect("static schema is valid");
    let batch = Batch::new(
        schema,
        vec![
            Column::from_f64s(dwell),
            Column::from_f64s(latency),
            Column::from_f64s(payload),
            Column::from_f64s(score),
            Column::from_f64s(wait),
            Column::from_i64s(age),
            Column::from_strs(&country_vals),
            Column::from_i64s(user_id),
        ],
    )
    .expect("columns match schema");
    Table::from_batch("events", batch, partitions).expect("partitioning valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_shape_and_determinism() {
        let t = conviva_sessions_table(5_000, 4, 1);
        assert_eq!(t.num_rows(), 5_000);
        assert_eq!(t.num_partitions(), 4);
        assert_eq!(t.schema().len(), 8);
        let t2 = conviva_sessions_table(5_000, 4, 1);
        assert_eq!(
            t.to_batch().unwrap().column_by_name("time").unwrap().to_f64_vec(),
            t2.to_batch().unwrap().column_by_name("time").unwrap().to_f64_vec()
        );
    }

    #[test]
    fn sessions_city_skew() {
        let t = conviva_sessions_table(20_000, 2, 2);
        let b = t.to_batch().unwrap();
        let (dict, codes) = b.column_by_name("city").unwrap().str_codes().unwrap();
        let nyc_code = dict.iter().position(|c| c == "NYC").unwrap() as u32;
        let nyc_frac =
            codes.iter().filter(|&&c| c == nyc_code).count() as f64 / codes.len() as f64;
        // Zipf rank 1 dominates.
        assert!(nyc_frac > 0.15, "NYC fraction {nyc_frac}");
    }

    #[test]
    fn buffer_ratio_bounded() {
        let t = conviva_sessions_table(10_000, 2, 3);
        let b = t.to_batch().unwrap();
        let vals = b.column_by_name("buffer_ratio").unwrap().to_f64_vec();
        assert!(vals.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn events_payload_is_heavy_tailed() {
        let t = facebook_events_table(50_000, 2, 4);
        let b = t.to_batch().unwrap();
        let payload = b.column_by_name("payload_kb").unwrap().to_f64_vec();
        let mean = payload.iter().sum::<f64>() / payload.len() as f64;
        let max = payload.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Pareto(1.3): max dwarfs the mean.
        assert!(max > 50.0 * mean, "max {max} vs mean {mean}");
        assert!(payload.iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn events_dwell_bounded() {
        let t = facebook_events_table(5_000, 2, 5);
        let b = t.to_batch().unwrap();
        let vals = b.column_by_name("dwell_frac").unwrap().to_f64_vec();
        assert!(vals.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn different_seeds_differ() {
        let a = conviva_sessions_table(100, 1, 10);
        let b = conviva_sessions_table(100, 1, 11);
        assert_ne!(
            a.to_batch().unwrap().column_by_name("time").unwrap().to_f64_vec(),
            b.to_batch().unwrap().column_by_name("time").unwrap().to_f64_vec()
        );
    }
}

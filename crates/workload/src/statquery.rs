//! Stats-level query workloads for the Fig. 1/3/4 experiments.
//!
//! Each [`StatQuery`] is a (θ, population) pair: an aggregate (or UDF)
//! plus a data-generation spec for the values column it aggregates. The
//! per-workload aggregate mixes are the published §3 numbers; the data
//! palette spans the tail-weight spectrum so that error estimation
//! succeeds and fails at rates comparable to the paper's.

use aqp_stats::dist::{
    sample_exponential, sample_lognormal, sample_normal, sample_pareto,
};
use aqp_stats::error_estimator::Theta;
use aqp_stats::estimator::{udfs, Aggregate, Udf};
use aqp_stats::rng::{rng_from_seed, SeedStream};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Which production trace a workload mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// The Facebook trace mix (§3): MIN 33.35%, COUNT 24.67%, AVG 12.20%,
    /// SUM 10.11%, MAX 2.87%, UDF 11.01%, remainder VAR/STDDEV/percentiles.
    Facebook,
    /// The Conviva trace mix (§3): AVG/COUNT/PERCENTILE/MAX ≈ 32.3%
    /// combined, UDF 42.07%, remainder SUM/MIN/VAR/STDDEV.
    Conviva,
}

/// Aggregate family of a generated query (reporting buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryCategory {
    /// AVG
    Avg,
    /// SUM
    Sum,
    /// COUNT
    Count,
    /// MIN
    Min,
    /// MAX
    Max,
    /// VARIANCE or STDDEV
    Variance,
    /// PERCENTILE
    Percentile,
    /// User-defined aggregate
    Udf,
}

/// Named UDF shapes (matching the `aqp-stats` library).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UdfKind {
    /// Central-band trimmed mean (smooth).
    TrimmedMean,
    /// Mean of the top decile (MAX-like sensitivity).
    TopDecileMean,
    /// Geometric mean (smooth nonlinearity).
    GeoMean,
    /// Coefficient of variation (smooth ratio).
    Cov,
    /// Fraction above a threshold (Bernoulli-smooth).
    FracAbove(
        /// The threshold.
        f64,
    ),
}

/// The θ of a generated query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThetaKind {
    /// A built-in aggregate.
    Builtin(Aggregate),
    /// A UDF aggregate.
    Udf(UdfKind),
}

/// An owned θ ready to be viewed as [`Theta`].
pub enum OwnedTheta {
    /// Built-in.
    Builtin(Aggregate),
    /// Instantiated UDF.
    Udf(Udf),
}

impl OwnedTheta {
    /// Borrow as the stats-level `Theta`.
    pub fn as_theta(&self) -> Theta<'_> {
        match self {
            OwnedTheta::Builtin(a) => Theta::Builtin(*a),
            OwnedTheta::Udf(u) => Theta::Opaque(u),
        }
    }
}

impl ThetaKind {
    /// Instantiate the estimator.
    ///
    /// COUNT is instantiated as SUM over the 0/1 filter-indicator encoding
    /// (identical estimator and closed form: `COUNT = Σ 1(pass) · N/n`).
    pub fn instantiate(&self) -> OwnedTheta {
        match self {
            ThetaKind::Builtin(Aggregate::Count) => OwnedTheta::Builtin(Aggregate::Sum),
            ThetaKind::Builtin(a) => OwnedTheta::Builtin(*a),
            ThetaKind::Udf(UdfKind::TrimmedMean) => OwnedTheta::Udf(udfs::trimmed_mean(0.1, 0.9)),
            ThetaKind::Udf(UdfKind::TopDecileMean) => {
                OwnedTheta::Udf(udfs::top_fraction_mean(0.1))
            }
            ThetaKind::Udf(UdfKind::GeoMean) => OwnedTheta::Udf(udfs::geometric_mean()),
            ThetaKind::Udf(UdfKind::Cov) => OwnedTheta::Udf(udfs::coeff_of_variation()),
            ThetaKind::Udf(UdfKind::FracAbove(t)) => OwnedTheta::Udf(udfs::frac_above(*t)),
        }
    }

    /// The reporting bucket.
    pub fn category(&self) -> QueryCategory {
        match self {
            ThetaKind::Builtin(Aggregate::Avg) => QueryCategory::Avg,
            ThetaKind::Builtin(Aggregate::Sum) => QueryCategory::Sum,
            ThetaKind::Builtin(Aggregate::Count) => QueryCategory::Count,
            ThetaKind::Builtin(Aggregate::Min) => QueryCategory::Min,
            ThetaKind::Builtin(Aggregate::Max) => QueryCategory::Max,
            ThetaKind::Builtin(Aggregate::Variance | Aggregate::StdDev) => {
                QueryCategory::Variance
            }
            ThetaKind::Builtin(Aggregate::Percentile(_)) => QueryCategory::Percentile,
            ThetaKind::Udf(_) => QueryCategory::Udf,
        }
    }
}

/// Data-generation spec for a query's values column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DataSpec {
    /// Benign: normal.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        sd: f64,
    },
    /// Moderate tail: lognormal.
    Lognormal {
        /// Log-mean.
        mu: f64,
        /// Log-sd.
        sigma: f64,
    },
    /// Heavy tail: Pareto (α ≤ 2 ⇒ infinite variance).
    Pareto {
        /// Shape.
        alpha: f64,
    },
    /// Exponential.
    Exponential {
        /// Rate.
        rate: f64,
    },
    /// Bounded in \[0, hi\] (uniform squared — skewed but bounded).
    Bounded {
        /// Upper bound.
        hi: f64,
    },
    /// Lognormal with a point mass at zero — gives MIN queries an
    /// atom that sampling finds almost surely (the regime where extreme
    /// aggregates *are* estimable).
    ZeroInflatedLognormal {
        /// Probability of an exact zero.
        zero_frac: f64,
        /// Log-sd of the continuous part.
        sigma: f64,
    },
}

impl DataSpec {
    /// Generate a population of `n` values.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(seed);
        (0..n)
            .map(|_| match self {
                DataSpec::Normal { mean, sd } => sample_normal(&mut rng, *mean, *sd),
                DataSpec::Lognormal { mu, sigma } => sample_lognormal(&mut rng, *mu, *sigma),
                DataSpec::Pareto { alpha } => sample_pareto(&mut rng, 1.0, *alpha),
                DataSpec::Exponential { rate } => sample_exponential(&mut rng, *rate),
                DataSpec::Bounded { hi } => {
                    let u: f64 = rng.random::<f64>();
                    u * u * hi
                }
                DataSpec::ZeroInflatedLognormal { zero_frac, sigma } => {
                    if rng.random::<f64>() < *zero_frac {
                        0.0
                    } else {
                        sample_lognormal(&mut rng, 1.0, *sigma)
                    }
                }
            })
            .collect()
    }

    /// Whether the spec has a heavy (infinite-variance-like) tail.
    pub fn heavy_tailed(&self) -> bool {
        matches!(self, DataSpec::Pareto { alpha } if *alpha <= 2.0)
    }

    /// An approximate median of the distribution — used to set
    /// data-adaptive UDF thresholds (a fixed threshold degenerates to
    /// p ≈ 0 or 1 on most specs, which is not what production
    /// "fraction-above" UDFs look like).
    pub fn typical(&self) -> f64 {
        match self {
            DataSpec::Normal { mean, .. } => *mean,
            DataSpec::Lognormal { mu, .. } => mu.exp(),
            DataSpec::Pareto { alpha } => 2f64.powf(1.0 / alpha),
            DataSpec::Exponential { rate } => std::f64::consts::LN_2 / rate,
            DataSpec::Bounded { hi } => 0.25 * hi, // median of U² · hi
            DataSpec::ZeroInflatedLognormal { .. } => std::f64::consts::E,
        }
    }
}

/// One generated stats-level query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatQuery {
    /// Stable id within its workload.
    pub id: usize,
    /// Human-readable label (aggregate + data shape).
    pub name: String,
    /// The aggregate.
    pub theta: ThetaKind,
    /// The population generator.
    pub data: DataSpec,
    /// Filter selectivity. For SUM/COUNT queries the filtered-out rows
    /// contribute zeros to the per-row value vector (the y-encoding of
    /// `aqp_stats::closed_form`); for location-type aggregates the filter
    /// is immaterial at the stats level and selectivity stays 1.
    pub selectivity: f64,
}

impl StatQuery {
    /// Generate the population *value vector* this query aggregates:
    /// the per-row contribution y (zeros where the filter drops the row).
    pub fn population(&self, n: usize, seed: u64) -> Vec<f64> {
        // COUNT aggregates the filter indicator itself.
        let mut values = if matches!(self.theta, ThetaKind::Builtin(Aggregate::Count)) {
            vec![1.0; n]
        } else {
            self.data.generate(n, seed)
        };
        if self.selectivity < 1.0 {
            let mut rng = rng_from_seed(seed ^ 0x5E1);
            for v in &mut values {
                if rng.random::<f64>() >= self.selectivity {
                    *v = 0.0;
                }
            }
        }
        values
    }

    /// Reporting bucket.
    pub fn category(&self) -> QueryCategory {
        self.theta.category()
    }

    /// Whether closed-form estimation applies.
    pub fn closed_form_applicable(&self) -> bool {
        matches!(
            self.theta,
            ThetaKind::Builtin(
                Aggregate::Avg
                    | Aggregate::Sum
                    | Aggregate::Count
                    | Aggregate::Variance
                    | Aggregate::StdDev
            )
        )
    }
}

impl Workload {
    /// The aggregate mix as (category, cumulative-probability) thresholds.
    fn theta_palette(&self) -> Vec<(f64, ThetaKind)> {
        use Aggregate::*;
        match self {
            // Published Facebook shares; the unlisted 5.79% split between
            // VARIANCE and percentiles.
            Workload::Facebook => vec![
                (0.3335, ThetaKind::Builtin(Min)),
                (0.2467, ThetaKind::Builtin(Count)),
                (0.1220, ThetaKind::Builtin(Avg)),
                (0.1011, ThetaKind::Builtin(Sum)),
                (0.0287, ThetaKind::Builtin(Max)),
                (0.1101, ThetaKind::Udf(UdfKind::TrimmedMean)),
                (0.0300, ThetaKind::Builtin(Variance)),
                (0.0279, ThetaKind::Builtin(Percentile(0.95))),
            ],
            // Conviva: AVG/COUNT/PERCENTILE/MAX combined 32.3%, UDFs
            // 42.07%, remainder SUM/MIN/VARIANCE.
            Workload::Conviva => vec![
                (0.10, ThetaKind::Builtin(Avg)),
                (0.09, ThetaKind::Builtin(Count)),
                (0.083, ThetaKind::Builtin(Percentile(0.99))),
                (0.05, ThetaKind::Builtin(Max)),
                (0.4207, ThetaKind::Udf(UdfKind::TrimmedMean)),
                (0.12, ThetaKind::Builtin(Sum)),
                (0.08, ThetaKind::Builtin(Min)),
                (0.0563, ThetaKind::Builtin(Variance)),
            ],
        }
    }

    /// Sample a UDF variant (the palette key only marks "a UDF"; the
    /// concrete shape varies per query). Production UDFs are mostly
    /// smooth sessionization/ratio logic; extreme-value-like UDFs exist
    /// but are the minority (the paper measures 23.19% bootstrap failure
    /// on UDFs, far below MIN/MAX's 86%).
    fn udf_variant<R: Rng>(rng: &mut R) -> UdfKind {
        match rng.random_range(0..8) {
            0 | 1 => UdfKind::TrimmedMean,
            2 | 3 => UdfKind::GeoMean,
            4 => UdfKind::Cov,
            5 => UdfKind::TopDecileMean,
            _ => UdfKind::FracAbove(10.0),
        }
    }

    /// Sample a data spec; heavy tails appear with workload-tuned
    /// probability.
    fn data_palette<R: Rng>(&self, rng: &mut R, theta: &ThetaKind) -> DataSpec {
        // Extreme-value aggregates: mostly unbounded data (where
        // estimation fails, matching the 86.17% failure share), sometimes
        // atom-at-minimum data (where MIN is trivially estimable).
        if matches!(theta, ThetaKind::Builtin(Aggregate::Min)) && rng.random::<f64>() < 0.15 {
            return DataSpec::ZeroInflatedLognormal { zero_frac: 0.05, sigma: 1.0 };
        }
        let mut heavy_frac = match self {
            Workload::Facebook => 0.12,
            Workload::Conviva => 0.10,
        };
        // Production UDFs and variance aggregates run over session-time /
        // engagement columns, which are rarely the infinite-variance
        // payload columns; pairing them with Pareto data at the generic
        // rate would overstate their failure share far past §3's numbers.
        if matches!(
            theta,
            ThetaKind::Udf(_) | ThetaKind::Builtin(Aggregate::Variance | Aggregate::StdDev)
        ) {
            heavy_frac *= 0.3;
        }
        let x: f64 = rng.random::<f64>();
        if x < heavy_frac {
            DataSpec::Pareto { alpha: 1.1 + rng.random::<f64>() * 0.8 }
        } else if x < heavy_frac + 0.35 {
            DataSpec::Lognormal { mu: 1.0, sigma: 0.4 + rng.random::<f64>() * 0.6 }
        } else if x < heavy_frac + 0.58 {
            DataSpec::Normal { mean: 50.0, sd: 5.0 + rng.random::<f64>() * 15.0 }
        } else if x < heavy_frac + 0.70 {
            DataSpec::Exponential { rate: 0.1 + rng.random::<f64>() }
        } else {
            DataSpec::Bounded { hi: 100.0 }
        }
    }

    /// Generate `n` queries with this workload's mix.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<StatQuery> {
        let seeds = SeedStream::new(seed);
        let mut rng = seeds.rng(0);
        let palette = self.theta_palette();
        (0..n)
            .map(|id| {
                let mut x: f64 = rng.random::<f64>();
                let mut theta = palette.last().expect("non-empty palette").1;
                for (share, t) in &palette {
                    if x < *share {
                        theta = *t;
                        break;
                    }
                    x -= share;
                }
                // Concrete UDF shape varies.
                if matches!(theta, ThetaKind::Udf(_)) {
                    theta = ThetaKind::Udf(Self::udf_variant(&mut rng));
                }
                // SUM/COUNT carry a filter; the per-row encoding zeroes the
                // filtered-out rows (keeping the Poissonized bootstrap's
                // size-variance term at its production magnitude).
                let (data, selectivity) = match theta {
                    ThetaKind::Builtin(Aggregate::Count) => (
                        DataSpec::Bounded { hi: 1.0 },
                        0.02 + rng.random::<f64>() * 0.38,
                    ),
                    ThetaKind::Builtin(Aggregate::Sum) => (
                        self.data_palette(&mut rng, &theta),
                        0.05 + rng.random::<f64>() * 0.45,
                    ),
                    _ => (self.data_palette(&mut rng, &theta), 1.0),
                };
                // Fraction-above UDFs threshold near the data's median.
                if matches!(theta, ThetaKind::Udf(UdfKind::FracAbove(_))) {
                    theta = ThetaKind::Udf(UdfKind::FracAbove(
                        data.typical() * (0.6 + rng.random::<f64>() * 0.8),
                    ));
                }
                let name = format!("{:?}#{id}:{:?}/{:?}", self, theta.category(), data);
                StatQuery { id, name, theta, data, selectivity }
            })
            .collect()
    }

    /// Generate only queries amenable to closed forms (the Fig. 4(b)
    /// "AVG, COUNT, SUM, or VARIANCE" sets).
    pub fn generate_closed_form(&self, n: usize, seed: u64) -> Vec<StatQuery> {
        let mut out = Vec::with_capacity(n);
        let mut s = seed;
        while out.len() < n {
            for q in self.generate(n * 2, s) {
                if q.closed_form_applicable() && out.len() < n {
                    out.push(q);
                }
            }
            s += 1;
        }
        for (i, q) in out.iter_mut().enumerate() {
            q.id = i;
        }
        out
    }

    /// Generate only bootstrap-only queries (the Fig. 4(c) "complex
    /// aggregates" sets).
    pub fn generate_bootstrap_only(&self, n: usize, seed: u64) -> Vec<StatQuery> {
        let mut out = Vec::with_capacity(n);
        let mut s = seed.wrapping_add(7_777);
        while out.len() < n {
            for q in self.generate(n * 2, s) {
                if !q.closed_form_applicable() && out.len() < n {
                    out.push(q);
                }
            }
            s += 1;
        }
        for (i, q) in out.iter_mut().enumerate() {
            q.id = i;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn shares(qs: &[StatQuery]) -> HashMap<QueryCategory, f64> {
        let mut m: HashMap<QueryCategory, usize> = HashMap::new();
        for q in qs {
            *m.entry(q.category()).or_default() += 1;
        }
        m.into_iter().map(|(k, v)| (k, v as f64 / qs.len() as f64)).collect()
    }

    #[test]
    fn facebook_mix_matches_published_shares() {
        let qs = Workload::Facebook.generate(20_000, 1);
        let s = shares(&qs);
        // ±2.5 percentage points of the §3 numbers.
        assert!((s[&QueryCategory::Min] - 0.3335).abs() < 0.025, "{s:?}");
        assert!((s[&QueryCategory::Count] - 0.2467).abs() < 0.025, "{s:?}");
        assert!((s[&QueryCategory::Avg] - 0.1220).abs() < 0.025, "{s:?}");
        assert!((s[&QueryCategory::Sum] - 0.1011).abs() < 0.025, "{s:?}");
        assert!((s[&QueryCategory::Max] - 0.0287).abs() < 0.02, "{s:?}");
        assert!((s[&QueryCategory::Udf] - 0.1101).abs() < 0.025, "{s:?}");
    }

    #[test]
    fn conviva_mix_has_heavy_udf_share() {
        let qs = Workload::Conviva.generate(20_000, 2);
        let s = shares(&qs);
        assert!((s[&QueryCategory::Udf] - 0.4207).abs() < 0.03, "{s:?}");
        let combined = s.get(&QueryCategory::Avg).unwrap_or(&0.0)
            + s.get(&QueryCategory::Count).unwrap_or(&0.0)
            + s.get(&QueryCategory::Percentile).unwrap_or(&0.0)
            + s.get(&QueryCategory::Max).unwrap_or(&0.0);
        assert!((combined - 0.323).abs() < 0.03, "combined {combined}");
    }

    #[test]
    fn closed_form_share_near_published() {
        // §3: 37.21% of Facebook queries amenable to closed forms
        // (COUNT + AVG + SUM + VARIANCE-family minus those inside UDFs).
        let qs = Workload::Facebook.generate(20_000, 3);
        let frac =
            qs.iter().filter(|q| q.closed_form_applicable()).count() as f64 / qs.len() as f64;
        assert!((frac - 0.50).abs() < 0.04, "closed-form share {frac}");
        // (Our share is higher than 37.21% because the published figure
        // also excludes multi-aggregate and nested queries, which the
        // stats-level workload does not model; the SQL-level traces do.)
    }

    #[test]
    fn filtered_generators_filter() {
        let cf = Workload::Conviva.generate_closed_form(100, 4);
        assert_eq!(cf.len(), 100);
        assert!(cf.iter().all(|q| q.closed_form_applicable()));
        let bo = Workload::Conviva.generate_bootstrap_only(250, 5);
        assert_eq!(bo.len(), 250);
        assert!(bo.iter().all(|q| !q.closed_form_applicable()));
    }

    #[test]
    fn data_specs_generate_expected_shapes() {
        let xs = DataSpec::Bounded { hi: 10.0 }.generate(1000, 1);
        assert!(xs.iter().all(|&x| (0.0..=10.0).contains(&x)));
        let xs = DataSpec::Pareto { alpha: 1.2 }.generate(1000, 2);
        assert!(xs.iter().all(|&x| x >= 1.0));
        assert!(DataSpec::Pareto { alpha: 1.2 }.heavy_tailed());
        assert!(!DataSpec::Pareto { alpha: 2.5 }.heavy_tailed());
        let xs = DataSpec::ZeroInflatedLognormal { zero_frac: 0.5, sigma: 1.0 }.generate(1000, 3);
        let zeros = xs.iter().filter(|&&x| x == 0.0).count();
        assert!(zeros > 400 && zeros < 600, "zeros {zeros}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::Facebook.generate(50, 9);
        let b = Workload::Facebook.generate(50, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn theta_instantiation_works() {
        for q in Workload::Conviva.generate(200, 10) {
            let owned = q.theta.instantiate();
            let theta = owned.as_theta();
            let est = theta.as_estimator();
            let ctx = aqp_stats::estimator::SampleContext::population(100);
            let vals: Vec<f64> = (1..=100).map(|i| i as f64).collect();
            let v = est.estimate(&vals, &ctx);
            assert!(v.is_finite(), "{} produced {v}", q.name);
        }
    }
}

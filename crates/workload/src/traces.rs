//! SQL-level query traces and cluster profiles: QSet-1 and QSet-2 (§7).
//!
//! * **QSet-1** — "100 queries for which error bars can be calculated
//!   using closed forms (simple AVG, COUNT, SUM, STDEV, VARIANCE
//!   aggregates)".
//! * **QSet-2** — "100 queries for which error bars could only be
//!   approximated using the bootstrap (multiple aggregate operators,
//!   nested subqueries, or UDFs)".
//!
//! Each [`TraceQuery`] carries both an executable SQL string (against the
//! [`crate::datagen`] tables) and the [`QueryProfile`] the cluster
//! simulator uses to regenerate Figs. 7–9.

use aqp_cluster::QueryProfile;
use aqp_stats::rng::SeedStream;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// One trace query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceQuery {
    /// Stable id within its set.
    pub id: usize,
    /// Executable SQL against the `sessions` table.
    pub sql: String,
    /// Cost profile for the cluster simulator.
    pub profile: QueryProfile,
}

const FILTER_CITIES: &[&str] = &["NYC", "LA", "Chicago", "SF", "Seattle"];

fn filter_clause<R: Rng>(rng: &mut R) -> (String, f64) {
    // Returns (SQL predicate, approximate selectivity on the Zipf-skewed
    // sessions table). Production OLAP filters are selective — §5.3.2:
    // "more often than not, the actual data used by the Poissonized
    // resampling operator ... is just a tiny fraction of the input sample
    // size" — so the palette stays in the 1-25% selectivity range.
    match rng.random_range(0..4) {
        0 => {
            let city = FILTER_CITIES[rng.random_range(0..FILTER_CITIES.len())];
            let sel = match city {
                "NYC" => 0.10,
                "LA" => 0.06,
                _ => 0.03,
            };
            (format!("WHERE city = '{city}'"), sel)
        }
        1 => {
            let city = FILTER_CITIES[rng.random_range(1..FILTER_CITIES.len())];
            (format!("WHERE is_mobile = true AND city = '{city}'"), 0.03)
        }
        2 => {
            let t = 150 + rng.random_range(0..400);
            // time is lognormal(4, 0.8): the tail above 150-550 s.
            let sel = (0.15 - ((t as f64) / 550.0) * 0.13).clamp(0.01, 0.15);
            (format!("WHERE time > {t}"), sel)
        }
        _ => {
            let site = ["origin-1", "origin-2", "edge-9", "edge-17"][rng.random_range(0..4)];
            (format!("WHERE site = '{site}'"), 0.05)
        }
    }
}

fn base_profile<R: Rng>(rng: &mut R, selectivity: f64, closed_form: bool, agg_cost: f64) -> QueryProfile {
    QueryProfile {
        sample_mb: 4_000.0 + rng.random::<f64>() * 16_000.0, // ≤ 20 GB samples (§7)
        selectivity,
        scan_cpu_ms_per_mb: 0.4 + rng.random::<f64>() * 0.4,
        agg_cpu_ms_per_mb: agg_cost,
        closed_form,
        bootstrap_k: 100,
        diag_p: 100,
        diag_subsample_mb: vec![50.0, 100.0, 200.0],
    }
}

/// Generate the QSet-1 trace: `n` closed-form-amenable queries.
pub fn qset1(n: usize, seed: u64) -> Vec<TraceQuery> {
    let seeds = SeedStream::new(seed);
    let mut rng = seeds.rng(1);
    (0..n)
        .map(|id| {
            let (filter, sel) = filter_clause(&mut rng);
            let (agg, cost) = match rng.random_range(0..5) {
                0 => ("AVG(time)", 1.0),
                1 => ("SUM(bytes)", 1.0),
                2 => ("COUNT(*)", 0.8),
                3 => ("VARIANCE(bitrate)", 1.3),
                _ => ("STDDEV(time)", 1.3),
            };
            let sql = format!("SELECT {agg} FROM sessions {filter}").trim().to_string();
            TraceQuery { id, sql, profile: base_profile(&mut rng, sel, true, cost) }
        })
        .collect()
}

/// Generate the QSet-2 trace: `n` bootstrap-only queries.
pub fn qset2(n: usize, seed: u64) -> Vec<TraceQuery> {
    let seeds = SeedStream::new(seed);
    let mut rng = seeds.rng(2);
    (0..n)
        .map(|id| {
            let (filter, sel) = filter_clause(&mut rng);
            let (select, cost, nested) = match rng.random_range(0..6) {
                0 => ("MAX(bytes)".to_string(), 1.2, false),
                1 => ("MIN(time)".to_string(), 1.2, false),
                2 => (format!("PERCENTILE(time, {})", [50, 90, 95, 99][rng.random_range(0..4)]), 2.0, false),
                3 => ("trimmed_mean(time)".to_string(), 2.2, false),
                4 => ("AVG(time), MAX(time), COUNT(*)".to_string(), 1.8, false),
                _ => ("AVG(s)".to_string(), 2.5, true),
            };
            let sql = if nested {
                format!(
                    "SELECT {select} FROM (SELECT SUM(bytes) AS s FROM sessions {filter} GROUP BY user_id)",
                )
                .replace("  ", " ")
            } else {
                format!("SELECT {select} FROM sessions {filter}").trim().to_string()
            };
            TraceQuery { id, sql, profile: base_profile(&mut rng, sel, false, cost) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_sql::parse_query;

    #[test]
    fn qset1_parses_and_is_closed_form() {
        for q in qset1(100, 1) {
            let parsed = parse_query(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.sql));
            assert!(parsed.closed_form_applicable(), "{}", q.sql);
            assert!(q.profile.closed_form);
        }
    }

    #[test]
    fn qset2_parses_and_is_bootstrap_only() {
        for q in qset2(100, 2) {
            let parsed = parse_query(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.sql));
            assert!(!parsed.closed_form_applicable(), "{}", q.sql);
            assert!(!q.profile.closed_form);
        }
    }

    #[test]
    fn qset2_includes_nested_and_udf_queries() {
        let qs = qset2(200, 3);
        assert!(qs.iter().any(|q| q.sql.contains("FROM (SELECT")), "no nested queries");
        assert!(qs.iter().any(|q| q.sql.contains("trimmed_mean")), "no UDF queries");
        assert!(qs.iter().any(|q| q.sql.contains("PERCENTILE")), "no percentile queries");
    }

    #[test]
    fn profiles_are_within_paper_ranges() {
        for q in qset1(100, 4).into_iter().chain(qset2(100, 5)) {
            assert!(q.profile.sample_mb <= 20_000.0 && q.profile.sample_mb >= 4_000.0);
            assert!(q.profile.selectivity > 0.0 && q.profile.selectivity <= 1.0);
            assert_eq!(q.profile.bootstrap_k, 100);
            assert_eq!(q.profile.diag_p, 100);
            assert_eq!(q.profile.diag_subsample_mb, vec![50.0, 100.0, 200.0]);
        }
    }

    #[test]
    fn deterministic() {
        let a = qset1(10, 7);
        let b = qset1(10, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
        }
    }

    #[test]
    fn queries_vary() {
        let qs = qset1(50, 8);
        let distinct: std::collections::HashSet<&str> =
            qs.iter().map(|q| q.sql.as_str()).collect();
        assert!(distinct.len() > 10, "only {} distinct queries", distinct.len());
    }
}

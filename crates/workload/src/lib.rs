//! # aqp-workload
//!
//! Synthetic data and query-trace generators calibrated to the *published*
//! statistics of the paper's proprietary workloads (§3):
//!
//! * **Facebook**: 69,438 Hive queries — MIN 33.35%, COUNT 24.67%,
//!   AVG 12.20%, SUM 10.11%, MAX 2.87%; 11.01% of queries contain UDFs;
//!   37.21% amenable to closed forms.
//! * **Conviva**: 18,321 Hive queries — AVG, COUNT, PERCENTILE, MAX with a
//!   combined 32.3% share; 42.07% contain UDFs.
//!
//! The paper could not release the traces and instead published a
//! synthetic benchmark; this crate plays that role here (see DESIGN.md's
//! substitution table). Error-estimation failure modes are driven by the
//! aggregate's outlier sensitivity and the data's tail weight, so the
//! generators control exactly those: heavy-tailed value distributions
//! (lognormal / Pareto mixtures), Zipf-skewed categories, and the
//! calibrated aggregate mix.
//!
//! Three product surfaces:
//!
//! * [`datagen`] — columnar tables (`sessions`, `events`) for the engine,
//! * [`statquery`] — stats-level (θ, population) pairs for the Fig. 1/3/4
//!   experiments,
//! * [`traces`] — SQL query traces + cluster [`aqp_cluster::QueryProfile`]s
//!   for QSet-1/QSet-2 and the Fig. 7–9 simulations.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod datagen;
pub mod statquery;
pub mod traces;

pub use datagen::{conviva_sessions_table, facebook_events_table};
pub use statquery::{StatQuery, Workload};
pub use traces::{qset1, qset2, TraceQuery};

//! Fault-injection and recovery configuration.
//!
//! A [`FaultConfig`] is the single knob a caller flips: it carries the
//! injection probabilities (what goes wrong) and a [`RecoveryPolicy`]
//! (what the executor does about it). Everything is seed-deterministic —
//! the same config and seed always produce the same fault timeline.

use std::time::Duration;

/// Shape of the delay injected when a straggler fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StragglerDelay {
    /// Every straggler is slowed by exactly this much.
    Fixed(Duration),
    /// Heavy-tail (lognormal) delay, matching the paper's straggler
    /// model: `mean_ms` is the mean of the distribution in milliseconds
    /// and `sigma` the log-space standard deviation.
    HeavyTail {
        /// Mean delay in milliseconds.
        mean_ms: f64,
        /// Log-space standard deviation (0.6 matches `cluster::sim`).
        sigma: f64,
    },
}

impl Default for StragglerDelay {
    fn default() -> Self {
        StragglerDelay::Fixed(Duration::from_millis(50))
    }
}

/// What the executor does when an injected fault fires.
///
/// The recovery state machine (DESIGN §12): each task attempt may fail
/// (death / transient error / corruption) or time out (straggler delay
/// beyond `task_timeout`). Failed attempts are retried after bounded
/// exponential backoff, up to `max_retries` retries; `blacklist_after`
/// consecutive failures blacklist the partition early. A task that
/// exhausts its retries is *lost* and the query degrades gracefully —
/// unless more than `max_lost_fraction` of partitions are lost, in
/// which case the executor refuses to answer approximately.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries allowed after the first attempt (0 = fail fast).
    pub max_retries: usize,
    /// First backoff delay; doubles each retry.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff delay.
    pub backoff_max: Duration,
    /// An attempt whose injected delay exceeds this is abandoned and
    /// retried (per-task timeout).
    pub task_timeout: Duration,
    /// Launch a speculative clone of straggler-delayed attempts; the
    /// faster of the pair wins (paper §ProcOpt straggler mitigation).
    pub speculative: bool,
    /// Blacklist a partition after this many consecutive failed
    /// attempts, abandoning it even if retries remain.
    pub blacklist_after: usize,
    /// Maximum fraction of partitions that may be lost before the
    /// executor returns `Degraded` instead of a widened answer.
    pub max_lost_fraction: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            task_timeout: Duration::from_secs(5),
            speculative: true,
            blacklist_after: 4,
            max_lost_fraction: 0.5,
        }
    }
}

/// Complete fault-injection configuration for one session or query.
///
/// All probabilities are per task *attempt* and independently drawn;
/// out-of-range values are clamped to `[0, 1]` at draw time. With the
/// default config (all probabilities zero) the injector never fires and
/// the pipeline is byte-identical to running without one.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Root seed for the fault plan (independent of the query seed).
    pub seed: u64,
    /// Probability a worker dies mid-task (attempt fails).
    pub worker_death_prob: f64,
    /// Probability of a transient scan error (attempt fails, retry
    /// usually succeeds).
    pub transient_error_prob: f64,
    /// Probability a partition read returns corrupt data (attempt
    /// fails; the partition must be re-read).
    pub corruption_prob: f64,
    /// Probability a partition is truncated: the scan succeeds but only
    /// a prefix of the rows survives (degraded success).
    pub truncation_prob: f64,
    /// Fraction of rows KEPT when a truncation fires (clamped so at
    /// least one row survives).
    pub truncation_keep: f64,
    /// Probability an attempt is straggler-delayed.
    pub straggler_prob: f64,
    /// Delay distribution for straggler faults.
    pub straggler_delay: StragglerDelay,
    /// Recovery machinery exercised by the injected faults.
    pub recovery: RecoveryPolicy,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            worker_death_prob: 0.0,
            transient_error_prob: 0.0,
            corruption_prob: 0.0,
            truncation_prob: 0.0,
            truncation_keep: 0.5,
            straggler_prob: 0.0,
            straggler_delay: StragglerDelay::default(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl FaultConfig {
    /// A config that injects nothing but still runs the recovery
    /// scaffolding — useful for verifying the no-fault path is
    /// bit-identical.
    pub fn quiescent(seed: u64) -> Self {
        FaultConfig { seed, ..FaultConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_quiet() {
        let cfg = FaultConfig::default();
        assert_eq!(cfg.worker_death_prob, 0.0);
        assert_eq!(cfg.straggler_prob, 0.0);
        assert_eq!(cfg.recovery.max_retries, 2);
    }

    #[test]
    fn quiescent_keeps_seed() {
        assert_eq!(FaultConfig::quiescent(42).seed, 42);
    }
}

//! # aqp-faults
//!
//! Deterministic fault injection and recovery for the AQP execution
//! pipeline: worker death, transient scan errors, partition corruption
//! and truncation, and fixed/heavy-tail straggler delay, all drawn from
//! a seed-keyed [`FaultPlan`] so an injected run replays bit-for-bit.
//!
//! The recovery side mirrors what a production engine would do — per
//! task timeouts, bounded exponential backoff retries, speculative
//! re-execution of stragglers, partition blacklisting — and when
//! recovery runs out, the query *degrades gracefully*: it completes
//! from the surviving partitions with error bars re-derived from the
//! effective sample and conservatively widened (never narrowed; see
//! [`ScanFaultSummary::widen_factor`]).
//!
//! Delay is charged to the observability [`aqp_obs::Clock`], never to
//! `thread::sleep`, so injected runs are fast and mock-clock
//! deterministic. The crate is std-only and sits below `exec` and
//! `cluster`, both of which consume it.
//!
//! ```
//! use aqp_faults::{FaultConfig, FaultInjector};
//!
//! let mut cfg = FaultConfig::quiescent(7);
//! cfg.transient_error_prob = 0.2;
//! let injector = FaultInjector::new(&cfg);
//! let clock = aqp_obs::Clock::mock();
//! let report = injector.run_task(0, &clock);
//! assert!(!report.lost || report.attempts > 0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod plan;
pub mod recovery;

pub use config::{FaultConfig, RecoveryPolicy, StragglerDelay};
pub use plan::{AttemptPlan, FaultKind, FaultPlan};
pub use recovery::{
    backoff_for, resolve, DegradedInfo, EventKind, FaultEvent, FaultInjector, ScanFaultSummary,
    TaskReport,
};

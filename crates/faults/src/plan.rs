//! The deterministic fault plan.
//!
//! A [`FaultPlan`] is a pure function from `(task, attempt)` to the
//! faults that attempt experiences, keyed off the config's seed via the
//! workspace [`SeedStream`] discipline. No state is kept: the same
//! `(seed, task, attempt)` triple always yields the same draw, which is
//! what makes retries, speculative clones, and whole reruns replayable
//! bit-for-bit.

use std::time::Duration;

use rand::RngExt;

use aqp_stats::dist::sample_lognormal;
use aqp_stats::rng::SeedStream;

use crate::config::{FaultConfig, StragglerDelay};

/// The kinds of fault the injector can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker executing the task dies; the attempt is lost.
    WorkerDeath,
    /// A transient scan error; a retry usually succeeds.
    TransientError,
    /// The partition read returned corrupt data; the attempt fails.
    Corruption,
    /// The partition is truncated: the attempt succeeds but only a
    /// prefix of its rows survives.
    Truncation,
    /// The attempt is delayed by a straggling worker.
    Straggler,
}

impl FaultKind {
    /// Stable lower-case label used in trace span names and logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::WorkerDeath => "worker_death",
            FaultKind::TransientError => "transient_error",
            FaultKind::Corruption => "corruption",
            FaultKind::Truncation => "truncation",
            FaultKind::Straggler => "straggler",
        }
    }
}

/// The faults one `(task, attempt)` pair experiences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptPlan {
    /// A failure that aborts the attempt, if one fired (first of
    /// worker death, transient error, corruption in draw order).
    pub failure: Option<FaultKind>,
    /// `Some(keep_fraction)` when a truncation fired: on success only
    /// this fraction of the partition's rows survives.
    pub truncate_keep: Option<f64>,
    /// Straggler delay for the primary attempt (zero when none fired).
    pub delay: Duration,
    /// Delay the speculative clone would experience, drawn whenever a
    /// straggler fires so plans are independent of the recovery policy.
    pub speculative_delay: Option<Duration>,
}

impl AttemptPlan {
    /// An attempt with no faults at all.
    pub fn clean() -> Self {
        AttemptPlan { failure: None, truncate_keep: None, delay: Duration::ZERO, speculative_delay: None }
    }
}

/// Seed-deterministic fault plan: a pure map from `(task, attempt)` to
/// an [`AttemptPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    seeds: SeedStream,
}

/// Convert a (possibly unreasonable) delay in milliseconds to a
/// `Duration`, clamping non-finite and negative values to zero and
/// capping at one hour so arithmetic downstream can never overflow.
fn delay_from_ms(ms: f64) -> Duration {
    const MAX_MS: f64 = 3_600_000.0;
    if ms.is_finite() && ms > 0.0 {
        Duration::from_nanos((ms.min(MAX_MS) * 1e6) as u64)
    } else {
        Duration::ZERO
    }
}

fn prob(p: f64) -> f64 {
    if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

impl FaultPlan {
    /// Build a plan for `cfg`. The plan is stateless; tasks and
    /// attempts are drawn on demand.
    pub fn new(cfg: FaultConfig) -> Self {
        let seeds = SeedStream::new(cfg.seed);
        FaultPlan { cfg, seeds }
    }

    /// The config the plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Draw the faults for attempt `attempt` of task `task`.
    ///
    /// Draws happen in a fixed order (death, transient, corruption,
    /// truncation, straggler, straggler delay, speculative delay) so a
    /// config change to one probability never perturbs the others'
    /// stream positions within an attempt.
    pub fn attempt(&self, task: usize, attempt: usize) -> AttemptPlan {
        let mut rng = self.seeds.derive(task as u64).rng(attempt as u64);
        let death = rng.random::<f64>() < prob(self.cfg.worker_death_prob);
        let transient = rng.random::<f64>() < prob(self.cfg.transient_error_prob);
        let corrupt = rng.random::<f64>() < prob(self.cfg.corruption_prob);
        let truncate = rng.random::<f64>() < prob(self.cfg.truncation_prob);
        let straggle = rng.random::<f64>() < prob(self.cfg.straggler_prob);

        let draw_delay = |rng: &mut aqp_stats::rng::Rng| match self.cfg.straggler_delay {
            StragglerDelay::Fixed(d) => d,
            StragglerDelay::HeavyTail { mean_ms, sigma } => {
                let mean = if mean_ms.is_finite() { mean_ms.clamp(0.1, 3.6e6) } else { 50.0 };
                let sigma = if sigma.is_finite() { sigma.clamp(0.0, 4.0) } else { 0.6 };
                let mu = mean.ln() - 0.5 * sigma * sigma;
                delay_from_ms(sample_lognormal(rng, mu, sigma))
            }
        };
        let (delay, speculative_delay) = if straggle {
            let primary = draw_delay(&mut rng);
            let clone = draw_delay(&mut rng);
            (primary, Some(clone))
        } else {
            (Duration::ZERO, None)
        };

        let failure = if death {
            Some(FaultKind::WorkerDeath)
        } else if transient {
            Some(FaultKind::TransientError)
        } else if corrupt {
            Some(FaultKind::Corruption)
        } else {
            None
        };
        let truncate_keep = if truncate {
            let keep = self.cfg.truncation_keep;
            let keep = if keep.is_finite() { keep.clamp(0.01, 1.0) } else { 0.5 };
            Some(keep)
        } else {
            None
        };
        AttemptPlan { failure, truncate_keep, delay, speculative_delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecoveryPolicy;

    fn noisy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            worker_death_prob: 0.3,
            transient_error_prob: 0.3,
            corruption_prob: 0.2,
            truncation_prob: 0.4,
            straggler_prob: 0.5,
            straggler_delay: StragglerDelay::HeavyTail { mean_ms: 20.0, sigma: 0.6 },
            recovery: RecoveryPolicy::default(),
            ..FaultConfig::default()
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let a = FaultPlan::new(noisy(7));
        let b = FaultPlan::new(noisy(7));
        for task in 0..16 {
            for attempt in 0..4 {
                assert_eq!(a.attempt(task, attempt), b.attempt(task, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(noisy(1));
        let b = FaultPlan::new(noisy(2));
        let differs = (0..32).any(|t| a.attempt(t, 0) != b.attempt(t, 0));
        assert!(differs, "independent seeds produced identical plans");
    }

    #[test]
    fn zero_probability_plan_is_clean() {
        let plan = FaultPlan::new(FaultConfig::quiescent(9));
        for task in 0..64 {
            assert_eq!(plan.attempt(task, 0), AttemptPlan::clean());
        }
    }

    #[test]
    fn pathological_delays_are_clamped() {
        let mut cfg = noisy(3);
        cfg.straggler_prob = 1.0;
        cfg.straggler_delay = StragglerDelay::HeavyTail { mean_ms: f64::INFINITY, sigma: f64::NAN };
        let plan = FaultPlan::new(cfg);
        for task in 0..16 {
            let ap = plan.attempt(task, 0);
            assert!(ap.delay <= Duration::from_secs(3600));
        }
    }

    #[test]
    fn truncation_keep_is_clamped_positive() {
        let mut cfg = FaultConfig::quiescent(5);
        cfg.truncation_prob = 1.0;
        cfg.truncation_keep = -2.0;
        let plan = FaultPlan::new(cfg);
        let keep = plan.attempt(0, 0).truncate_keep.expect("truncation must fire at p=1");
        assert!(keep > 0.0 && keep <= 1.0);
    }
}

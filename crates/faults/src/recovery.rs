//! The recovery state machine: retries, backoff, speculation,
//! blacklisting, and the degraded-answer bookkeeping.
//!
//! [`resolve`] is a pure function — given a plan, a policy, and a task
//! index it replays the task's attempt timeline and returns a
//! [`TaskReport`] describing what happened and how much injected delay
//! was charged. [`FaultInjector`] wraps it with a [`Clock`] so the
//! delay is *simulated* (mock clocks advance, the real clock ignores
//! it): no fault ever calls `thread::sleep`, which is what keeps the
//! whole subsystem deterministic and fast.

use std::time::Duration;

use aqp_obs::Clock;

use crate::config::{FaultConfig, RecoveryPolicy};
use crate::plan::{FaultKind, FaultPlan};

/// One observable event in a task's fault timeline, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Task (partition) index.
    pub task: usize,
    /// Attempt number the event belongs to (0 = first attempt).
    pub attempt: usize,
    /// What happened.
    pub kind: EventKind,
    /// Injected delay charged by this event (zero for instant events).
    pub delay: Duration,
}

/// Discriminates [`FaultEvent`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An injected fault fired.
    Injected(FaultKind),
    /// A speculative clone was launched for a straggling attempt;
    /// `won` is true when the clone finished first.
    SpeculativeLaunch {
        /// True when the clone beat the straggling primary.
        won: bool,
    },
    /// The attempt's (post-speculation) delay exceeded the task
    /// timeout and the attempt was abandoned.
    TimedOut,
    /// Backoff before the next attempt.
    Retry,
    /// The partition was blacklisted after repeated failures.
    Blacklisted,
    /// All recovery options exhausted; the partition's data is lost.
    Lost,
    /// The attempt succeeded after at least one earlier failure.
    Recovered,
}

impl EventKind {
    /// Span name used when the event is rendered into a query trace.
    pub fn span_name(&self) -> String {
        match self {
            EventKind::Injected(kind) => format!("fault:{}", kind.label()),
            EventKind::SpeculativeLaunch { .. } => "speculative:clone".to_string(),
            EventKind::TimedOut => "fault:timeout".to_string(),
            EventKind::Retry => "retry:backoff".to_string(),
            EventKind::Blacklisted => "fault:blacklisted".to_string(),
            EventKind::Lost => "fault:lost".to_string(),
            EventKind::Recovered => "retry:recovered".to_string(),
        }
    }
}

/// Outcome of resolving one task against the plan and policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskReport {
    /// Task (partition) index.
    pub task: usize,
    /// True when every recovery option failed and the partition's rows
    /// are gone from the effective sample.
    pub lost: bool,
    /// True when the partition was blacklisted before retries ran out.
    pub blacklisted: bool,
    /// Attempts consumed (1 = clean first attempt).
    pub attempts: usize,
    /// Keep-fraction of the surviving rows when the successful attempt
    /// was truncated.
    pub truncate_keep: Option<f64>,
    /// Total injected delay (straggler waits + backoffs).
    pub total_delay: Duration,
    /// Ordered event timeline.
    pub events: Vec<FaultEvent>,
}

impl TaskReport {
    /// A report for a task that experienced no faults.
    pub fn clean(task: usize) -> Self {
        TaskReport {
            task,
            lost: false,
            blacklisted: false,
            attempts: 1,
            truncate_keep: None,
            total_delay: Duration::ZERO,
            events: Vec::new(),
        }
    }

    /// True when any fault was injected into this task.
    pub fn faulted(&self) -> bool {
        !self.events.is_empty()
    }
}

/// Exponential backoff before retry `attempt + 1`, bounded by the
/// policy's `backoff_max`.
pub fn backoff_for(policy: &RecoveryPolicy, attempt: usize) -> Duration {
    let shift = attempt.min(32) as u32;
    let mult = 1u64.checked_shl(shift).unwrap_or(u64::MAX);
    policy.backoff_base.saturating_mul(mult.min(u32::MAX as u64) as u32).min(policy.backoff_max)
}

/// Replay task `task` against `plan` under `policy`.
///
/// Pure and total: always returns, never sleeps, never panics. The
/// attempt loop is bounded by `policy.max_retries` so liveness holds by
/// construction.
pub fn resolve(plan: &FaultPlan, policy: &RecoveryPolicy, task: usize) -> TaskReport {
    let mut events: Vec<FaultEvent> = Vec::new();
    let mut total_delay = Duration::ZERO;
    let mut failures = 0usize;

    for attempt in 0..=policy.max_retries {
        let ap = plan.attempt(task, attempt);

        // Straggler delay, possibly cut short by a speculative clone.
        let mut delay = ap.delay;
        if !ap.delay.is_zero() {
            events.push(FaultEvent {
                task,
                attempt,
                kind: EventKind::Injected(FaultKind::Straggler),
                delay: ap.delay,
            });
            if policy.speculative {
                if let Some(clone) = ap.speculative_delay {
                    let won = clone < ap.delay;
                    events.push(FaultEvent {
                        task,
                        attempt,
                        kind: EventKind::SpeculativeLaunch { won },
                        delay: clone.min(ap.delay),
                    });
                    delay = delay.min(clone);
                }
            }
        }
        total_delay = total_delay.saturating_add(delay);

        // Did the attempt fail?
        let failed = if delay > policy.task_timeout {
            events.push(FaultEvent { task, attempt, kind: EventKind::TimedOut, delay: Duration::ZERO });
            true
        } else if let Some(kind) = ap.failure {
            events.push(FaultEvent {
                task,
                attempt,
                kind: EventKind::Injected(kind),
                delay: Duration::ZERO,
            });
            true
        } else {
            false
        };

        if !failed {
            if let Some(keep) = ap.truncate_keep {
                events.push(FaultEvent {
                    task,
                    attempt,
                    kind: EventKind::Injected(FaultKind::Truncation),
                    delay: Duration::ZERO,
                });
                if failures > 0 {
                    events.push(FaultEvent { task, attempt, kind: EventKind::Recovered, delay: Duration::ZERO });
                }
                return TaskReport {
                    task,
                    lost: false,
                    blacklisted: false,
                    attempts: attempt + 1,
                    truncate_keep: Some(keep),
                    total_delay,
                    events,
                };
            }
            if failures > 0 {
                events.push(FaultEvent { task, attempt, kind: EventKind::Recovered, delay: Duration::ZERO });
            }
            return TaskReport {
                task,
                lost: false,
                blacklisted: false,
                attempts: attempt + 1,
                truncate_keep: None,
                total_delay,
                events,
            };
        }

        failures += 1;
        if failures >= policy.blacklist_after {
            events.push(FaultEvent { task, attempt, kind: EventKind::Blacklisted, delay: Duration::ZERO });
            events.push(FaultEvent { task, attempt, kind: EventKind::Lost, delay: Duration::ZERO });
            return TaskReport {
                task,
                lost: true,
                blacklisted: true,
                attempts: attempt + 1,
                truncate_keep: None,
                total_delay,
                events,
            };
        }
        if attempt == policy.max_retries {
            events.push(FaultEvent { task, attempt, kind: EventKind::Lost, delay: Duration::ZERO });
            return TaskReport {
                task,
                lost: true,
                blacklisted: false,
                attempts: attempt + 1,
                truncate_keep: None,
                total_delay,
                events,
            };
        }
        let backoff = backoff_for(policy, attempt);
        events.push(FaultEvent { task, attempt, kind: EventKind::Retry, delay: backoff });
        total_delay = total_delay.saturating_add(backoff);
    }

    // Unreachable: every loop iteration returns on success, blacklist,
    // or final retry. Kept total for panic-freedom.
    TaskReport {
        task,
        lost: true,
        blacklisted: false,
        attempts: policy.max_retries + 1,
        truncate_keep: None,
        total_delay,
        events,
    }
}

/// Aggregate view of one scan's fault activity, built from the
/// per-task reports by the executor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanFaultSummary {
    /// Partitions the scan planned to read.
    pub total_partitions: usize,
    /// Partitions whose data was lost after recovery ran out.
    pub lost_partitions: usize,
    /// Partitions abandoned early by blacklisting (subset of lost).
    pub blacklisted_partitions: usize,
    /// Rows the scan would have read fault-free.
    pub planned_rows: usize,
    /// Rows that actually entered the effective sample.
    pub effective_rows: usize,
    /// Injected fault events (all kinds).
    pub injected: usize,
    /// Retry (backoff) events.
    pub retries: usize,
    /// Attempts abandoned by the per-task timeout.
    pub timeouts: usize,
    /// Speculative clones launched.
    pub speculative_launched: usize,
    /// Speculative clones that beat their straggling primary.
    pub speculative_wins: usize,
    /// Total injected delay across all tasks.
    pub total_delay: Duration,
    /// Per-task reports, in task order, for tasks that saw any fault.
    pub reports: Vec<TaskReport>,
}

impl ScanFaultSummary {
    /// Rows lost to dead or truncated partitions.
    pub fn rows_lost(&self) -> usize {
        self.planned_rows.saturating_sub(self.effective_rows)
    }

    /// True when the effective sample is smaller than planned.
    pub fn degraded(&self) -> bool {
        self.effective_rows < self.planned_rows
    }

    /// The conservative CI widening factor `planned / effective`
    /// (≥ 1): error bars from a degraded sample are scaled up by this,
    /// which dominates the natural `sqrt(planned / effective)` growth
    /// of the standard error, so degraded CIs can never be narrower
    /// than honest ones.
    pub fn widen_factor(&self) -> f64 {
        if self.effective_rows == 0 || !self.degraded() {
            1.0
        } else {
            self.planned_rows as f64 / self.effective_rows as f64
        }
    }

    /// Fold one task's outcome into the summary. `planned` /
    /// `effective` are the partition's planned and surviving row
    /// counts.
    pub fn absorb(&mut self, report: &TaskReport, planned: usize, effective: usize) {
        self.total_partitions += 1;
        self.planned_rows += planned;
        self.effective_rows += effective;
        if report.lost {
            self.lost_partitions += 1;
        }
        if report.blacklisted {
            self.blacklisted_partitions += 1;
        }
        self.total_delay = self.total_delay.saturating_add(report.total_delay);
        for ev in &report.events {
            match &ev.kind {
                EventKind::Injected(_) => self.injected += 1,
                EventKind::Retry => self.retries += 1,
                EventKind::TimedOut => self.timeouts += 1,
                EventKind::SpeculativeLaunch { won } => {
                    self.speculative_launched += 1;
                    if *won {
                        self.speculative_wins += 1;
                    }
                }
                _ => {}
            }
        }
        if report.faulted() {
            self.reports.push(report.clone());
        }
    }
}

/// Degradation metadata carried on a query answer so downstream layers
/// (reliability gate, audit, callers) can see the reduced sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedInfo {
    /// Rows the scan planned to read.
    pub planned_rows: usize,
    /// Rows that survived injection and recovery.
    pub effective_rows: usize,
    /// Partitions lost outright.
    pub lost_partitions: usize,
    /// Partitions the scan planned to read.
    pub total_partitions: usize,
    /// Factor every CI half-width was multiplied by (≥ 1).
    pub widen_factor: f64,
}

/// Stateless per-query injector: a [`FaultPlan`] plus the recovery
/// policy, charging injected delay to the supplied [`Clock`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    policy: RecoveryPolicy,
}

impl FaultInjector {
    /// Build an injector for `cfg`.
    pub fn new(cfg: &FaultConfig) -> Self {
        FaultInjector { plan: FaultPlan::new(cfg.clone()), policy: cfg.recovery.clone() }
    }

    /// The recovery policy in force.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Resolve task `task`, charging its injected delay to `clock`
    /// (mock clocks advance; the real clock treats it as a no-op so
    /// injection never slows a live query down).
    pub fn run_task(&self, task: usize, clock: &Clock) -> TaskReport {
        let report = resolve(&self.plan, &self.policy, task);
        clock.advance(report.total_delay);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StragglerDelay;

    fn cfg(seed: u64) -> FaultConfig {
        FaultConfig { seed, ..FaultConfig::default() }
    }

    #[test]
    fn clean_plan_resolves_clean() {
        let plan = FaultPlan::new(cfg(1));
        let policy = RecoveryPolicy::default();
        for task in 0..32 {
            assert_eq!(resolve(&plan, &policy, task), TaskReport::clean(task));
        }
    }

    #[test]
    fn certain_death_loses_the_task_after_retries() {
        let mut c = cfg(2);
        c.worker_death_prob = 1.0;
        let policy = c.recovery.clone();
        let plan = FaultPlan::new(c);
        let r = resolve(&plan, &policy, 0);
        assert!(r.lost);
        assert_eq!(r.attempts, policy.max_retries + 1);
        assert!(r.events.iter().any(|e| e.kind == EventKind::Lost));
        let retries = r.events.iter().filter(|e| e.kind == EventKind::Retry).count();
        assert_eq!(retries, policy.max_retries);
    }

    #[test]
    fn blacklist_fires_before_retries_run_out() {
        let mut c = cfg(3);
        c.worker_death_prob = 1.0;
        c.recovery.max_retries = 10;
        c.recovery.blacklist_after = 2;
        let policy = c.recovery.clone();
        let plan = FaultPlan::new(c);
        let r = resolve(&plan, &policy, 0);
        assert!(r.lost && r.blacklisted);
        assert_eq!(r.attempts, 2);
        assert!(r.events.iter().any(|e| e.kind == EventKind::Blacklisted));
    }

    #[test]
    fn transient_error_recovers_on_retry() {
        let mut c = cfg(4);
        c.transient_error_prob = 0.5;
        let policy = c.recovery.clone();
        let plan = FaultPlan::new(c);
        // Find a task whose first attempt fails but that recovers.
        let recovered = (0..256).map(|t| resolve(&plan, &policy, t)).find(|r| !r.lost && r.attempts > 1);
        let r = recovered.expect("with p=0.5 over 256 tasks some task must fail once then recover");
        assert!(r.events.iter().any(|e| e.kind == EventKind::Recovered));
        assert!(r.total_delay >= backoff_for(&policy, 0));
    }

    #[test]
    fn backoff_is_bounded_and_monotone() {
        let policy = RecoveryPolicy::default();
        let mut prev = Duration::ZERO;
        for attempt in 0..64 {
            let b = backoff_for(&policy, attempt);
            assert!(b >= prev && b <= policy.backoff_max);
            prev = b;
        }
    }

    #[test]
    fn speculation_caps_straggler_delay() {
        let mut c = cfg(5);
        c.straggler_prob = 1.0;
        c.straggler_delay = StragglerDelay::HeavyTail { mean_ms: 100.0, sigma: 1.0 };
        let mut with = c.clone();
        with.recovery.speculative = true;
        let mut without = c.clone();
        without.recovery.speculative = false;
        let pw = FaultPlan::new(with.clone());
        let pwo = FaultPlan::new(without.clone());
        for task in 0..64 {
            let rw = resolve(&pw, &with.recovery, task);
            let rwo = resolve(&pwo, &without.recovery, task);
            assert!(rw.total_delay <= rwo.total_delay, "speculation made task {task} slower");
        }
    }

    #[test]
    fn timeout_converts_stragglers_into_retries() {
        let mut c = cfg(6);
        c.straggler_prob = 1.0;
        c.straggler_delay = StragglerDelay::Fixed(Duration::from_secs(60));
        c.recovery.task_timeout = Duration::from_millis(100);
        c.recovery.speculative = false;
        let policy = c.recovery.clone();
        let plan = FaultPlan::new(c);
        let r = resolve(&plan, &policy, 0);
        assert!(r.lost, "every attempt straggles past the timeout");
        assert!(r.events.iter().any(|e| e.kind == EventKind::TimedOut));
    }

    #[test]
    fn injector_charges_mock_clock() {
        let mut c = cfg(7);
        c.straggler_prob = 1.0;
        c.straggler_delay = StragglerDelay::Fixed(Duration::from_millis(30));
        c.recovery.speculative = false;
        let inj = FaultInjector::new(&c);
        let clock = Clock::mock();
        let before = clock.now();
        let r = inj.run_task(0, &clock);
        assert_eq!(clock.now().duration_since(before), r.total_delay);
        assert!(r.total_delay >= Duration::from_millis(30));
    }

    #[test]
    fn summary_absorbs_reports() {
        let mut c = cfg(8);
        c.worker_death_prob = 1.0;
        c.recovery.max_retries = 1;
        let policy = c.recovery.clone();
        let plan = FaultPlan::new(c);
        let mut sum = ScanFaultSummary::default();
        for task in 0..4 {
            let r = resolve(&plan, &policy, task);
            sum.absorb(&r, 100, if r.lost { 0 } else { 100 });
        }
        assert_eq!(sum.total_partitions, 4);
        assert_eq!(sum.lost_partitions, 4);
        assert_eq!(sum.planned_rows, 400);
        assert_eq!(sum.effective_rows, 0);
        assert_eq!(sum.rows_lost(), 400);
        assert!(sum.degraded());
        assert_eq!(sum.retries, 4);
    }

    #[test]
    fn widen_factor_never_narrows() {
        let sum = ScanFaultSummary {
            planned_rows: 1000,
            effective_rows: 250,
            ..ScanFaultSummary::default()
        };
        assert_eq!(sum.widen_factor(), 4.0);
        let clean = ScanFaultSummary {
            planned_rows: 1000,
            effective_rows: 1000,
            ..ScanFaultSummary::default()
        };
        assert_eq!(clean.widen_factor(), 1.0);
    }
}

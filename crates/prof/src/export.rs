//! Bit-stable telemetry exporters in formats standard tooling consumes:
//! chrome://tracing trace-event JSON from a [`QueryTrace`], pprof-style
//! folded stacks (flamegraph-ready text) from a
//! [`CumulativeProfile`](crate::contprof::CumulativeProfile), and
//! Prometheus text exposition from a [`MetricsSnapshot`].
//!
//! Determinism: every exporter is a pure function of its input — span
//! order is the trace's recording order, folded stacks follow the
//! cumulative profile's `BTreeMap` order, and the metrics snapshot is
//! already name-sorted — so two processes observing the same mock-clock
//! workload emit byte-identical artifacts (CI diffs them in the
//! `profile-smoke` job).

use aqp_obs::json::{push_f64, push_str_lit};
use aqp_obs::{MetricsSnapshot, QueryTrace};

use crate::contprof::CumulativeProfile;

/// Render `trace` as chrome://tracing trace-event JSON (the "JSON array
/// format" with complete `"ph":"X"` events; load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>).
///
/// Timestamps and durations are microseconds (fractional, preserving
/// the clock's nanosecond resolution). Stage and operator spans share
/// `tid` 1 and nest by time containment; each `worker` span gets its
/// own tid (`2 + worker index`) so parallel workers render as separate
/// rows instead of overlapping. Span attributes become `args`.
pub fn chrome_trace(trace: &QueryTrace) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = if span.name == "worker" {
            2 + span
                .attrs
                .iter()
                .find(|(k, _)| k == "worker")
                .and_then(|(_, v)| v.parse::<u64>().ok())
                .unwrap_or(0)
        } else {
            1
        };
        out.push_str("{\"name\":");
        push_str_lit(&mut out, &span.name);
        out.push_str(",\"ph\":\"X\",\"ts\":");
        push_f64(&mut out, span.start_ns as f64 / 1e3);
        out.push_str(",\"dur\":");
        push_f64(&mut out, span.duration().as_nanos() as f64 / 1e3);
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        if !span.attrs.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in span.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_str_lit(&mut out, k);
                out.push(':');
                push_str_lit(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Render the cumulative profile as pprof-style folded stacks — one
/// `class;Op;Op;... <self_ns>` line per `(class, path)` cell, in
/// deterministic `(class, path)` order — the input format of
/// `flamegraph.pl` and every inferno-compatible renderer. The workload
/// class is the root frame, so one flamegraph slices the whole fleet by
/// class.
pub fn folded_stacks(cum: &CumulativeProfile) -> String {
    let mut out = String::new();
    for (class, path, counters) in cum.iter() {
        out.push_str(class);
        out.push(';');
        out.push_str(path);
        out.push(' ');
        out.push_str(&counters.self_ns.to_string());
        out.push('\n');
    }
    out
}

/// Sanitize a dotted metric name for Prometheus (`aqp.core.query_ms` →
/// `aqp_core_query_ms`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// A finite `le` bound, or `+Inf` for the overflow bucket.
fn prom_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else {
        let mut s = String::new();
        push_f64(&mut s, le);
        s
    }
}

/// Render `snapshot` in the Prometheus text exposition format
/// (`# TYPE` headers, `_bucket`/`_sum`/`_count` histogram series with
/// cumulative `le` buckets). The snapshot is name-sorted, so the output
/// is deterministic.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        out.push_str(&n);
        out.push(' ');
        push_f64(&mut out, *value);
        out.push('\n');
    }
    for (name, h) in &snapshot.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        // The snapshot stores per-bucket counts; Prometheus wants
        // cumulative counts per upper bound.
        let mut cumulative = 0u64;
        for (le, count) in &h.buckets {
            cumulative = cumulative.saturating_add(*count);
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cumulative}", prom_le(*le));
        }
        out.push_str(&n);
        out.push_str("_sum ");
        push_f64(&mut out, h.sum_ms);
        out.push('\n');
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contprof::CumulativeProfile;
    use crate::OpProfile;
    use aqp_obs::{Clock, MetricsRegistry, TraceRecorder};
    use std::time::Duration;

    fn sample_trace() -> QueryTrace {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        let stage = rec.start("scan_collect");
        let t0 = clock.now();
        clock.advance(Duration::from_millis(3));
        let sp = rec.record_span("op:Scan", t0, clock.now());
        rec.attr(sp, "node_id", 1);
        rec.attr(sp, "rows_in", 10);
        rec.attr(sp, "rows_out", 10);
        let w = rec.record_span("worker", t0, clock.now());
        rec.attr(w, "worker", 3);
        rec.end(stage);
        rec.finish()
    }

    #[test]
    fn chrome_trace_is_valid_shaped_and_deterministic() {
        let trace = sample_trace();
        let a = chrome_trace(&trace);
        assert_eq!(a, chrome_trace(&trace));
        assert!(a.starts_with("{\"traceEvents\":[{"));
        assert!(a.ends_with("]}\n"));
        assert!(a.contains("\"name\":\"scan_collect\""));
        assert!(a.contains("\"ph\":\"X\""));
        // op:Scan: 3ms → 3000µs on tid 1; the worker rides tid 2+3.
        assert!(a.contains("\"dur\":3000,\"pid\":1,\"tid\":1"), "{a}");
        assert!(a.contains("\"tid\":5"), "{a}");
        assert!(a.contains("\"args\":{\"node_id\":\"1\""), "{a}");
    }

    #[test]
    fn folded_stacks_are_sorted_class_rooted_lines() {
        let clock = Clock::mock();
        let mut cum = CumulativeProfile::new();
        let forest = |ms: u64| {
            let rec = TraceRecorder::new(clock.clone());
            let stage = rec.start("scan_collect");
            let t = clock.now();
            clock.advance(Duration::from_millis(ms));
            let sp = rec.record_span("op:Scan", t, clock.now());
            rec.attr(sp, "node_id", 0);
            rec.end(stage);
            vec![OpProfile::from_trace(&rec.finish()).expect("tree")]
        };
        cum.observe("zeta", &forest(2));
        cum.observe("alpha", &forest(1));
        let folded = folded_stacks(&cum);
        assert_eq!(folded, "alpha;Scan 1000000\nzeta;Scan 2000000\n");
    }

    #[test]
    fn prometheus_text_covers_all_three_kinds_with_cumulative_buckets() {
        let m = MetricsRegistry::new();
        m.counter("aqp.test.prom_hits").add(7);
        m.gauge("aqp.test.prom_level").set(2.5);
        let h = m.histogram_with("aqp.test.prom_ms", &[1.0, 10.0]);
        h.record_ms(0.5);
        h.record_ms(5.0);
        h.record_ms(50.0);
        let text = prometheus_text(&m.snapshot());
        assert_eq!(text, prometheus_text(&m.snapshot()));
        assert!(text.contains("# TYPE aqp_test_prom_hits counter\naqp_test_prom_hits 7\n"));
        assert!(text.contains("# TYPE aqp_test_prom_level gauge\naqp_test_prom_level 2.5\n"));
        assert!(text.contains("aqp_test_prom_ms_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("aqp_test_prom_ms_bucket{le=\"10\"} 2\n"), "{text}");
        assert!(text.contains("aqp_test_prom_ms_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("aqp_test_prom_ms_sum 55.5\n"), "{text}");
        assert!(text.contains("aqp_test_prom_ms_count 3\n"), "{text}");
    }
}

//! Continuous profiling: fold per-query [`OpProfile`] forests into a
//! fleet-cumulative profile keyed by *workload class × operator path*.
//!
//! A single `EXPLAIN ANALYZE` tree dies with its query; a fleet answers
//! "where does the time go" only in aggregate. [`CumulativeProfile`]
//! accumulates every operator of every observed query into per-path
//! counters (wall and self time, rows, bytes, resamples, worker
//! busy/idle), bucketed by a workload class assigned from the query
//! text by [`ContProfConfig::classify`] — the same substring routing
//! the SLO engine uses, so profiles and objectives slice the fleet the
//! same way.
//!
//! # Merge algebra
//!
//! Cross-process shards combine with [`CumulativeProfile::merge`]. The
//! state is a map from `(class, path)` to saturating-sum counters, so
//! the merge is **associative** and **commutative** by construction:
//! every counter is a sum, map union is order-insensitive, and the map
//! is a `BTreeMap`, so any merge order of the same shards yields the
//! same bytes from [`CumulativeProfile::to_json`] and the folded-stack
//! exporter ([`crate::export::folded_stacks`]). `tests/contprof.rs`
//! asserts both properties with proptest and a cross-process byte diff.

use std::collections::BTreeMap;

use aqp_obs::json::push_str_lit;

use crate::OpProfile;

/// The class assigned to queries no [`ContProfConfig`] rule matches.
pub const DEFAULT_CLASS: &str = aqp_obs::router::DEFAULT_CLASS;

/// Separator between operator names in a cumulative profile path
/// (root-first: `ErrorEstimate;Filter;Scan`), matching the folded
/// flamegraph stack syntax.
pub const PATH_SEPARATOR: char = ';';

/// Configuration for the session's continuous profiler: workload
/// classes routed by SQL substring through the shared
/// [`aqp_obs::router::ClassRouter`], first match wins — the same
/// routing the SLO engine and the introspection pipeline use.
#[derive(Debug, Clone, Default)]
pub struct ContProfConfig {
    /// Routing rules, in priority order.
    classes: aqp_obs::router::ClassRouter,
}

impl ContProfConfig {
    /// An empty config: every query lands in [`DEFAULT_CLASS`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Route queries whose SQL contains `sql_contains` to `class`.
    /// Rules are tried in registration order; the first match wins.
    pub fn with_class(mut self, class: &str, sql_contains: &str) -> Self {
        self.classes.push_rule(class, sql_contains);
        self
    }

    /// The workload class for `sql`: the first matching rule's class,
    /// else [`DEFAULT_CLASS`].
    pub fn classify<'a>(&'a self, sql: &str) -> &'a str {
        self.classes.classify(sql)
    }
}

/// Saturating-sum counters for one `(class, operator path)` cell of the
/// cumulative profile. Every field is additive, which is what makes the
/// shard merge associative and order-insensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounters {
    /// How many times this operator path was observed.
    pub executions: u64,
    /// Total wall time attributed to the operator, nanoseconds.
    pub wall_ns: u64,
    /// Total self time (wall minus direct children's wall, saturating),
    /// nanoseconds — the quantity a flamegraph draws.
    pub self_ns: u64,
    /// Total rows entering the operator.
    pub rows_in: u64,
    /// Total rows leaving the operator.
    pub rows_out: u64,
    /// Total batches processed.
    pub batches: u64,
    /// Total estimated bytes moved.
    pub bytes: u64,
    /// Total bootstrap/diagnostic resamples attributed here.
    pub resamples: u64,
    /// Total worker busy time under this operator, nanoseconds.
    pub worker_busy_ns: u64,
    /// Total worker idle time under this operator, nanoseconds.
    pub worker_idle_ns: u64,
}

impl OpCounters {
    /// Componentwise saturating sum — the merge operator.
    fn absorb(&mut self, other: &OpCounters) {
        self.executions = self.executions.saturating_add(other.executions);
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
        self.self_ns = self.self_ns.saturating_add(other.self_ns);
        self.rows_in = self.rows_in.saturating_add(other.rows_in);
        self.rows_out = self.rows_out.saturating_add(other.rows_out);
        self.batches = self.batches.saturating_add(other.batches);
        self.bytes = self.bytes.saturating_add(other.bytes);
        self.resamples = self.resamples.saturating_add(other.resamples);
        self.worker_busy_ns = self.worker_busy_ns.saturating_add(other.worker_busy_ns);
        self.worker_idle_ns = self.worker_idle_ns.saturating_add(other.worker_idle_ns);
    }

    /// Cumulative output throughput in rows per second (`None` when no
    /// wall time has accumulated).
    pub fn rows_per_s(&self) -> Option<f64> {
        (self.wall_ns > 0).then(|| self.rows_out as f64 / (self.wall_ns as f64 / 1e9))
    }

    /// Cumulative data throughput in bytes per second (`None` when no
    /// wall time has accumulated).
    pub fn bytes_per_s(&self) -> Option<f64> {
        (self.wall_ns > 0).then(|| self.bytes as f64 / (self.wall_ns as f64 / 1e9))
    }

    /// One operator node folded into counters: wall, self time (wall
    /// minus direct children, saturating), rows, bytes, resamples,
    /// worker splits.
    fn from_node(node: &OpProfile) -> OpCounters {
        let wall_ns = node.wall.as_nanos() as u64;
        let children_ns: u64 = node
            .children
            .iter()
            .map(|c| c.wall.as_nanos() as u64)
            .fold(0u64, u64::saturating_add);
        OpCounters {
            executions: 1,
            wall_ns,
            self_ns: wall_ns.saturating_sub(children_ns),
            rows_in: node.rows_in,
            rows_out: node.rows_out,
            batches: node.batches,
            bytes: node.bytes,
            resamples: node.resamples.unwrap_or(0),
            worker_busy_ns: node
                .workers
                .iter()
                .map(|w| w.busy.as_nanos() as u64)
                .fold(0u64, u64::saturating_add),
            worker_idle_ns: node
                .workers
                .iter()
                .map(|w| w.idle.as_nanos() as u64)
                .fold(0u64, u64::saturating_add),
        }
    }
}

/// The fleet-cumulative operator profile: per-`(class, path)` counters
/// plus per-class query counts. Deterministically ordered (`BTreeMap`),
/// associatively mergeable, and exportable as canonical JSON or folded
/// flamegraph stacks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CumulativeProfile {
    /// `(class, root-first ';'-joined operator path)` → counters.
    entries: BTreeMap<(String, String), OpCounters>,
    /// Queries observed per class.
    queries: BTreeMap<String, u64>,
}

impl CumulativeProfile {
    /// An empty cumulative profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one query's operator forest (see [`OpProfile::forest`])
    /// into the profile under `class`.
    pub fn observe(&mut self, class: &str, forest: &[OpProfile]) {
        let n = self.queries.entry(class.to_string()).or_insert(0);
        *n = n.saturating_add(1);
        for tree in forest {
            self.observe_node(class, "", tree);
        }
    }

    fn observe_node(&mut self, class: &str, prefix: &str, node: &OpProfile) {
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            let mut p = String::with_capacity(prefix.len() + 1 + node.name.len());
            p.push_str(prefix);
            p.push(PATH_SEPARATOR);
            p.push_str(&node.name);
            p
        };
        self.entries
            .entry((class.to_string(), path.clone()))
            .or_default()
            .absorb(&OpCounters::from_node(node));
        for child in &node.children {
            self.observe_node(class, &path, child);
        }
    }

    /// Merge another shard into this one. Associative and
    /// order-insensitive: counters sum, query counts sum, map union.
    pub fn merge(&mut self, other: &CumulativeProfile) {
        for (key, counters) in &other.entries {
            self.entries.entry(key.clone()).or_default().absorb(counters);
        }
        for (class, n) in &other.queries {
            let q = self.queries.entry(class.clone()).or_insert(0);
            *q = q.saturating_add(*n);
        }
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.queries.is_empty()
    }

    /// Number of distinct `(class, path)` cells.
    pub fn paths(&self) -> usize {
        self.entries.len()
    }

    /// Number of distinct workload classes observed.
    pub fn classes(&self) -> usize {
        self.queries.len()
    }

    /// Total queries observed across all classes.
    pub fn queries_observed(&self) -> u64 {
        self.queries.values().fold(0u64, |a, &n| a.saturating_add(n))
    }

    /// Total operator self time across all cells, nanoseconds.
    pub fn total_self_ns(&self) -> u64 {
        self.entries
            .values()
            .fold(0u64, |a, c| a.saturating_add(c.self_ns))
    }

    /// The counters for `(class, path)`, if observed.
    pub fn get(&self, class: &str, path: &str) -> Option<&OpCounters> {
        self.entries.get(&(class.to_string(), path.to_string()))
    }

    /// Iterate cells in deterministic `(class, path)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &OpCounters)> {
        self.entries
            .iter()
            .map(|((class, path), c)| (class.as_str(), path.as_str(), c))
    }

    /// Canonical single-line-per-cell JSONL (deterministic key order),
    /// one header line with the schema and per-class query counts, then
    /// one line per `(class, path)` cell.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("{\"contprof\":\"aqp-contprof/v1\",\"classes\":{");
        for (i, (class, n)) in self.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_lit(&mut out, class);
            let _ = write!(out, ":{n}");
        }
        out.push_str("}}\n");
        for ((class, path), c) in &self.entries {
            out.push_str("{\"class\":");
            push_str_lit(&mut out, class);
            out.push_str(",\"path\":");
            push_str_lit(&mut out, path);
            let _ = write!(
                out,
                ",\"executions\":{},\"wall_ns\":{},\"self_ns\":{},\"rows_in\":{},\
                 \"rows_out\":{},\"batches\":{},\"bytes\":{},\"resamples\":{},\
                 \"worker_busy_ns\":{},\"worker_idle_ns\":{}}}",
                c.executions,
                c.wall_ns,
                c.self_ns,
                c.rows_in,
                c.rows_out,
                c.batches,
                c.bytes,
                c.resamples,
                c.worker_busy_ns,
                c.worker_idle_ns,
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_obs::{Clock, Timestamp, TraceRecorder};
    use std::time::Duration;

    /// A 3-op tree with nested walls: Scan (1×`ms_each`) inside Filter
    /// (2×) inside Aggregate (3×), so every op's self time is exactly
    /// `ms_each`.
    fn tree(clock: &Clock, ms_each: u64) -> OpProfile {
        let rec = TraceRecorder::new(clock.clone());
        let stage = rec.start("scan_collect");
        let t0 = clock.now();
        clock.advance(Duration::from_millis(3 * ms_each));
        for (name, id, walls) in
            [("op:Scan", 2usize, 1u64), ("op:Filter", 1, 2), ("op:Aggregate", 0, 3)]
        {
            let end = Timestamp::from_nanos(t0.nanos() + walls * ms_each * 1_000_000);
            let sp = rec.record_span(name, t0, end);
            rec.attr(sp, "node_id", id);
            rec.attr(sp, "rows_in", 100);
            rec.attr(sp, "rows_out", 80);
            rec.attr(sp, "batches", 1);
            rec.attr(sp, "bytes", 640);
        }
        rec.end(stage);
        OpProfile::from_trace(&rec.finish()).expect("tree")
    }

    #[test]
    fn classify_routes_first_match_then_default() {
        let cfg = ContProfConfig::new()
            .with_class("dashboards", "FROM sessions")
            .with_class("reports", "FROM events");
        assert_eq!(cfg.classify("SELECT AVG(time) FROM sessions"), "dashboards");
        assert_eq!(cfg.classify("SELECT COUNT(*) FROM events"), "reports");
        assert_eq!(cfg.classify("SELECT 1 FROM other"), DEFAULT_CLASS);
        assert_eq!(ContProfConfig::new().classify("anything"), DEFAULT_CLASS);
    }

    #[test]
    fn observe_accumulates_paths_and_self_times() {
        let clock = Clock::mock();
        let mut cum = CumulativeProfile::new();
        cum.observe("c", &[tree(&clock, 2)]);
        cum.observe("c", &[tree(&clock, 2)]);
        assert_eq!(cum.classes(), 1);
        assert_eq!(cum.queries_observed(), 2);
        assert_eq!(cum.paths(), 3);
        let root = cum.get("c", "Aggregate").expect("root cell");
        assert_eq!(root.executions, 2);
        // Each tree: Aggregate wall 6ms, Filter child wall 4ms → self 2ms.
        assert_eq!(root.wall_ns, 12_000_000);
        assert_eq!(root.self_ns, 4_000_000);
        let leaf = cum.get("c", "Aggregate;Filter;Scan").expect("leaf cell");
        assert_eq!(leaf.self_ns, 4_000_000);
        assert_eq!(leaf.rows_out, 160);
        assert_eq!(leaf.rows_per_s(), Some(160.0 / 0.004));
        assert_eq!(cum.total_self_ns(), 12_000_000);
    }

    #[test]
    fn merge_is_associative_and_order_insensitive() {
        let clock = Clock::mock();
        let shard = |class: &str, n: u64| {
            let mut c = CumulativeProfile::new();
            for _ in 0..n {
                c.observe(class, &[tree(&clock, 1)]);
            }
            c
        };
        let (a, b, c) = (shard("x", 1), shard("y", 2), shard("x", 3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.to_json(), right.to_json());
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(left, rev, "merge must be order-insensitive");
        assert_eq!(left.queries_observed(), 6);
        assert_eq!(left.get("x", "Aggregate").expect("x root").executions, 4);
    }

    #[test]
    fn to_json_is_deterministic_and_single_header() {
        let clock = Clock::mock();
        let mut cum = CumulativeProfile::new();
        cum.observe("b", &[tree(&clock, 1)]);
        cum.observe("a", &[tree(&clock, 1)]);
        let json = cum.to_json();
        assert_eq!(json, cum.clone().to_json());
        assert!(json.starts_with("{\"contprof\":\"aqp-contprof/v1\",\"classes\":{\"a\":1,\"b\":1}}\n"));
        assert_eq!(json.lines().count(), 1 + 6, "header + 3 paths per class");
    }
}

//! `aqp-prof`: operator-level EXPLAIN ANALYZE profiles for the AQP
//! pipeline.
//!
//! The engine (`aqp-exec`) records one `op:<Name>` span per physical
//! operator inside the stage spans of its [`aqp_obs::QueryTrace`],
//! carrying the operator's preorder `node_id` within the executed plan
//! plus row/batch/byte counters, the sample fraction, and attributed
//! bootstrap resamples. This crate stitches those spans back into a
//! plan-shaped [`OpProfile`] tree — the `EXPLAIN ANALYZE` view — and
//! renders it as an indented text tree or canonical single-line JSON
//! (appendable to an [`aqp_obs::JsonlSink`]).
//!
//! Per-worker busy spans (`worker`) recorded under the same stage are
//! attached to the operator that drove the pool, together with the
//! straggler slowdown factor (slowest worker over the median, see
//! [`aqp_obs::slowdown_factor`]).
//!
//! # Invariants
//!
//! Operator spans are laid out sequentially inside their enclosing
//! stage span, so the sum of operator self-times never exceeds the
//! stage's wall time. [`reconcile_stages`] checks exactly that and is
//! asserted bit-exactly under the mock clock in `tests/profiling.rs`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod contprof;
pub mod export;

use std::time::Duration;

use aqp_obs::json::{push_f64, push_str_lit};
use aqp_obs::{slowdown_factor, JsonlSink, QueryTrace, Span};

/// How the session surfaces operator profiles on its answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// No profile is built (the default; op spans are still recorded in
    /// the trace, they are just not assembled into a tree).
    #[default]
    Off,
    /// Build the profile; callers render it with
    /// [`OpProfile::render_text`].
    Text,
    /// Build the profile; callers render it with
    /// [`OpProfile::to_json`].
    Json,
}

/// One worker's share of the pool that executed an operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker (chunk) index within the pool.
    pub worker: usize,
    /// Items the worker processed.
    pub items: u64,
    /// Busy wall-clock time on the recording clock.
    pub busy: Duration,
    /// Idle time relative to the enclosing stage (stage wall − busy,
    /// saturating).
    pub idle: Duration,
}

/// One operator of the annotated plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Preorder node id within the executed plan (root = 0).
    pub node_id: usize,
    /// Bare operator name (`Scan`, `Filter`, `Aggregate`, …).
    pub name: String,
    /// One-line operator description (`LogicalPlan::describe`).
    pub detail: String,
    /// Wall time attributed to this operator.
    pub wall: Duration,
    /// Rows entering the operator.
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Batches processed.
    pub batches: u64,
    /// Estimated bytes moved (8-byte cells, `rows_out × columns`).
    pub bytes: u64,
    /// Output throughput in rows per second, computed from `rows_out`
    /// over `wall` on the session clock; `None` when the operator's
    /// wall time is zero (an unadvanced mock clock), so renders stay
    /// bit-stable.
    pub rows_per_s: Option<f64>,
    /// Data throughput in bytes per second (`bytes / wall`); `None`
    /// when `wall` is zero.
    pub bytes_per_s: Option<f64>,
    /// Fraction of the full table this operator's input represents
    /// (recorded on the scan of a stored sample).
    pub sample_fraction: Option<f64>,
    /// Bootstrap/diagnostic resamples attributed to this operator.
    pub resamples: Option<u64>,
    /// Per-worker busy/idle splits of the pool that ran this operator.
    pub workers: Vec<WorkerProfile>,
    /// Slowest worker's busy time over the median busy time, when the
    /// pool had ≥ 2 workers and a nonzero median.
    pub straggler_slowdown: Option<f64>,
    /// Remaining operator-specific attributes (`accepted`, `method`, …).
    pub extra: Vec<(String, String)>,
    /// Child operators (linear plans have at most one).
    pub children: Vec<OpProfile>,
}

/// Reconciliation of one stage span against the operator spans inside
/// it: the per-operator self-times must sum to at most the stage wall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReconcile {
    /// Stage span name (`scan_collect`, `audit_replay`, …).
    pub stage: String,
    /// The stage span's wall time.
    pub wall: Duration,
    /// Sum of operator self-times recorded inside the stage.
    pub op_total: Duration,
}

impl StageReconcile {
    /// Does the invariant hold (`op_total ≤ wall`)?
    pub fn holds(&self) -> bool {
        self.op_total <= self.wall
    }
}

/// Internal: a parsed `op:` span.
struct ParsedOp {
    parent: Option<usize>,
    node_id: usize,
    profile: OpProfile,
}

fn parse_u64(span: &Span, key: &str) -> Option<u64> {
    span.attr(key).and_then(|v| v.parse().ok())
}

fn parse_f64(span: &Span, key: &str) -> Option<f64> {
    span.attr(key).and_then(|v| v.parse().ok())
}

/// `count` items over `wall` as a per-second rate; `None` when the wall
/// time is zero (nothing elapsed on the recording clock).
fn throughput(count: u64, wall: Duration) -> Option<f64> {
    let secs = wall.as_secs_f64();
    (secs > 0.0).then(|| count as f64 / secs)
}

/// Split the trace's `op:` spans into maximal strictly-descending
/// node-id runs — one run per execution.
fn split_runs(trace: &QueryTrace) -> Vec<Vec<ParsedOp>> {
    let mut runs: Vec<Vec<ParsedOp>> = Vec::new();
    for op in trace.spans.iter().filter_map(parse_op) {
        match runs.last_mut() {
            Some(run) if run.last().is_some_and(|prev| op.node_id < prev.node_id) => {
                run.push(op)
            }
            _ => runs.push(vec![op]),
        }
    }
    runs
}

const CONSUMED_ATTRS: &[&str] = &[
    "node_id",
    "detail",
    "rows_in",
    "rows_out",
    "batches",
    "bytes",
    "sample_fraction",
    "resamples",
];

fn parse_op(span: &Span) -> Option<ParsedOp> {
    let name = span.name.strip_prefix("op:")?;
    let node_id: usize = span.attr("node_id").and_then(|v| v.parse().ok())?;
    let detail = span.attr("detail").unwrap_or(name).to_string();
    let extra: Vec<(String, String)> = span
        .attrs
        .iter()
        .filter(|(k, _)| !CONSUMED_ATTRS.contains(&k.as_str()))
        .cloned()
        .collect();
    let wall = span.duration();
    let rows_out = parse_u64(span, "rows_out").unwrap_or(0);
    let bytes = parse_u64(span, "bytes").unwrap_or(0);
    Some(ParsedOp {
        parent: span.parent,
        node_id,
        profile: OpProfile {
            node_id,
            name: name.to_string(),
            detail,
            wall,
            rows_in: parse_u64(span, "rows_in").unwrap_or(0),
            rows_out,
            batches: parse_u64(span, "batches").unwrap_or(0),
            bytes,
            rows_per_s: throughput(rows_out, wall),
            bytes_per_s: throughput(bytes, wall),
            sample_fraction: parse_f64(span, "sample_fraction"),
            resamples: parse_u64(span, "resamples"),
            workers: Vec::new(),
            straggler_slowdown: None,
            extra,
            children: Vec::new(),
        },
    })
}

/// Workers recorded under stage span `parent`, as [`WorkerProfile`]s
/// with idle measured against the stage's wall time.
fn workers_under(trace: &QueryTrace, parent: usize) -> Vec<WorkerProfile> {
    let stage_wall = trace.spans.get(parent).map(Span::duration).unwrap_or_default();
    trace
        .spans
        .iter()
        .filter(|s| s.parent == Some(parent) && s.name == "worker")
        .map(|s| {
            let busy = s.duration();
            WorkerProfile {
                worker: parse_u64(s, "worker").unwrap_or(0) as usize,
                items: parse_u64(s, "items").unwrap_or(0),
                busy,
                idle: stage_wall.saturating_sub(busy),
            }
        })
        .collect()
}

impl OpProfile {
    /// All operator trees recoverable from `trace`, in recording order.
    ///
    /// The engine records one `op:` span per operator in descending
    /// `node_id` order (scan first, plan root last), so each maximal
    /// strictly-descending run of node ids is one execution's tree —
    /// a trace holding a pilot run, the main approximate run, an exact
    /// fallback, and an audit replay yields one tree per execution.
    pub fn forest(trace: &QueryTrace) -> Vec<OpProfile> {
        split_runs(trace)
            .into_iter()
            .filter_map(|run| Self::assemble_run(trace, run))
            .map(|(tree, _)| tree)
            .collect()
    }

    /// The main execution's operator tree: the first tree whose
    /// operators sit directly under a root stage span (the engine's own
    /// stages are roots; pilot runs and audit replays nest deeper).
    /// Falls back to the first tree when none qualifies.
    pub fn from_trace(trace: &QueryTrace) -> Option<OpProfile> {
        let mut trees: Vec<(OpProfile, bool)> = split_runs(trace)
            .into_iter()
            .filter_map(|run| Self::assemble_run(trace, run))
            .collect();
        match trees.iter().position(|(_, top_level)| *top_level) {
            Some(i) => Some(trees.swap_remove(i).0),
            None if trees.is_empty() => None,
            None => Some(trees.swap_remove(0).0),
        }
    }

    /// Nest one run (descending node ids) into a tree, attaching the
    /// stage's worker spans to the deepest operator under each stage.
    /// The second value is true when the run's stage spans are trace
    /// roots (the main execution, as opposed to a nested pilot run or
    /// audit replay).
    fn assemble_run(trace: &QueryTrace, run: Vec<ParsedOp>) -> Option<(OpProfile, bool)> {
        let top_level = run.iter().any(|op| {
            op.parent
                .and_then(|p| trace.spans.get(p))
                .is_some_and(|stage| stage.parent.is_none())
        });
        // For every stage span that has op children in this run, the
        // run's op with the largest node_id under that stage gets the
        // stage's workers (the pool is driven by the deepest operator —
        // the scan for scan_collect, the estimator for
        // error_estimation).
        let mut by_stage: Vec<(usize, usize)> = Vec::new(); // (stage span, run index)
        for (ri, op) in run.iter().enumerate() {
            let Some(p) = op.parent else { continue };
            match by_stage.iter_mut().find(|(stage, _)| *stage == p) {
                Some(entry) => {
                    let current = &run[entry.1];
                    if op.node_id > current.node_id {
                        entry.1 = ri;
                    }
                }
                None => by_stage.push((p, ri)),
            }
        }
        // run is descending by node_id; build the tree root-first.
        let mut profiles: Vec<OpProfile> = Vec::with_capacity(run.len());
        for (ri, op) in run.into_iter().enumerate() {
            let mut prof = op.profile;
            if let Some(&(stage, _)) =
                by_stage.iter().find(|&&(stage, deepest)| {
                    deepest == ri && trace.spans.get(stage).is_some()
                })
            {
                prof.workers = workers_under(trace, stage);
                let busy: Vec<Duration> = prof.workers.iter().map(|w| w.busy).collect();
                prof.straggler_slowdown = slowdown_factor(&busy);
            }
            profiles.push(prof);
        }
        // Descending run ⇒ reverse gives root (smallest id) first; fold
        // children from the deepest up.
        let mut tree: Option<OpProfile> = None;
        for mut prof in profiles {
            // profiles is deepest-first already (descending run).
            if let Some(child) = tree.take() {
                prof.children.push(child);
            }
            tree = Some(prof);
        }
        tree.map(|t| (t, top_level))
    }

    /// This node and all descendants, root first.
    pub fn nodes(&self) -> Vec<&OpProfile> {
        let mut out = vec![self];
        let mut i = 0;
        while i < out.len() {
            for c in &out[i].children {
                out.push(c);
            }
            i += 1;
        }
        out
    }

    /// Number of operators in the tree.
    pub fn len(&self) -> usize {
        self.nodes().len()
    }

    /// Whether the tree is a single leaf with no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// The first operator named `name` (e.g. `"Scan"`), at any depth.
    pub fn find(&self, name: &str) -> Option<&OpProfile> {
        self.nodes().into_iter().find(|n| n.name == name)
    }

    /// Render the profile as an indented `EXPLAIN ANALYZE` text tree.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let indent = "  ".repeat(depth);
        let _ = writeln!(
            out,
            "{indent}{}  (op #{}, wall {:.3}ms)",
            self.detail,
            self.node_id,
            self.wall.as_secs_f64() * 1e3,
        );
        let mut line = format!(
            "{indent}    rows {} -> {}, batches {}, ~{} B",
            self.rows_in, self.rows_out, self.batches, self.bytes
        );
        if let Some(r) = self.rows_per_s {
            let _ = write!(line, ", {r:.0} rows/s");
        }
        if let Some(b) = self.bytes_per_s {
            let _ = write!(line, ", {b:.0} B/s");
        }
        if let Some(f) = self.sample_fraction {
            let _ = write!(line, ", fraction {f}");
        }
        if let Some(r) = self.resamples {
            let _ = write!(line, ", resamples {r}");
        }
        if !self.extra.is_empty() {
            let kv: Vec<String> =
                self.extra.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = write!(line, " [{}]", kv.join(" "));
        }
        let _ = writeln!(out, "{line}");
        if !self.workers.is_empty() {
            let busy: Vec<String> = self
                .workers
                .iter()
                .map(|w| format!("{:.3}", w.busy.as_secs_f64() * 1e3))
                .collect();
            let mut wline = format!(
                "{indent}    workers[{}] busy=[{}]ms",
                self.workers.len(),
                busy.join(", ")
            );
            if let Some(s) = self.straggler_slowdown {
                let _ = write!(wline, " slowdown=x{s:.2}");
            }
            let _ = writeln!(out, "{wline}");
        }
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Canonical single-line JSON for the whole tree (deterministic key
    /// order; optional fields omitted when absent).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        use std::fmt::Write;
        out.push_str("{\"op\":");
        push_str_lit(out, &self.name);
        let _ = write!(out, ",\"node_id\":{}", self.node_id);
        out.push_str(",\"detail\":");
        push_str_lit(out, &self.detail);
        out.push_str(",\"wall_ms\":");
        push_f64(out, self.wall.as_secs_f64() * 1e3);
        let _ = write!(
            out,
            ",\"rows_in\":{},\"rows_out\":{},\"batches\":{},\"bytes\":{}",
            self.rows_in, self.rows_out, self.batches, self.bytes
        );
        if let Some(r) = self.rows_per_s {
            out.push_str(",\"rows_per_s\":");
            push_f64(out, r);
        }
        if let Some(b) = self.bytes_per_s {
            out.push_str(",\"bytes_per_s\":");
            push_f64(out, b);
        }
        if let Some(f) = self.sample_fraction {
            out.push_str(",\"sample_fraction\":");
            push_f64(out, f);
        }
        if let Some(r) = self.resamples {
            let _ = write!(out, ",\"resamples\":{r}");
        }
        if !self.workers.is_empty() {
            out.push_str(",\"workers\":[");
            for (i, w) in self.workers.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"worker\":{},\"items\":{},\"busy_ms\":", w.worker, w.items);
                push_f64(out, w.busy.as_secs_f64() * 1e3);
                out.push_str(",\"idle_ms\":");
                push_f64(out, w.idle.as_secs_f64() * 1e3);
                out.push('}');
            }
            out.push(']');
        }
        if let Some(s) = self.straggler_slowdown {
            out.push_str(",\"straggler_slowdown\":");
            push_f64(out, s);
        }
        if !self.extra.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.extra.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str_lit(out, k);
                out.push(':');
                push_str_lit(out, v);
            }
            out.push('}');
        }
        if !self.children.is_empty() {
            out.push_str(",\"children\":[");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.json_into(out);
            }
            out.push(']');
        }
        out.push('}');
    }

    /// Append the JSON rendering as one line of `sink`.
    pub fn append_jsonl(&self, sink: &mut JsonlSink) -> std::io::Result<()> {
        sink.append(&self.to_json())
    }
}

/// Check every stage span that contains operator spans: the sum of
/// operator *self*-times (an operator's wall minus its nested operator
/// spans', saturating) must not exceed the stage's wall time. Returns
/// one entry per such stage, in span order; `holds()` is true on all of
/// them for traces recorded by the engine.
pub fn reconcile_stages(trace: &QueryTrace) -> Vec<StageReconcile> {
    let is_op = |i: usize| trace.spans.get(i).is_some_and(|s| s.name.starts_with("op:"));
    // Self-time of op span i: duration minus direct op children.
    let self_time = |i: usize| -> Duration {
        let own = trace.spans.get(i).map(Span::duration).unwrap_or_default();
        let nested: Duration = trace
            .spans
            .iter()
            .enumerate()
            .filter(|(j, s)| s.parent == Some(i) && is_op(*j))
            .map(|(_, s)| s.duration())
            .sum();
        own.saturating_sub(nested)
    };
    let mut out = Vec::new();
    for (p, stage) in trace.spans.iter().enumerate() {
        if stage.name.starts_with("op:") {
            continue;
        }
        let op_total: Duration = trace
            .spans
            .iter()
            .enumerate()
            .filter(|(i, s)| s.parent == Some(p) && is_op(*i))
            .map(|(i, _)| self_time(i))
            .sum();
        let has_ops = trace
            .spans
            .iter()
            .enumerate()
            .any(|(i, s)| s.parent == Some(p) && is_op(i));
        if has_ops {
            out.push(StageReconcile {
                stage: stage.name.clone(),
                wall: stage.duration(),
                op_total,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_obs::{Clock, Timestamp, TraceRecorder};

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    /// Record a two-stage trace shaped like the engine's output:
    /// scan_collect with Scan/Filter ops + workers, error_estimation
    /// with an ErrorEstimate op + workers.
    fn engine_like_trace() -> QueryTrace {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());

        let scan = rec.start("scan_collect");
        let t0 = clock.now();
        clock.advance(ms(4));
        let t1 = clock.now();
        let s = rec.record_span("op:Scan", t0, t1);
        rec.attr(s, "node_id", 3);
        rec.attr(s, "detail", "Scan[sessions]");
        rec.attr(s, "rows_in", 100);
        rec.attr(s, "rows_out", 100);
        rec.attr(s, "batches", 2);
        rec.attr(s, "bytes", 2400);
        rec.attr(s, "sample_fraction", 0.05);
        clock.advance(ms(2));
        let t2 = clock.now();
        let f = rec.record_span("op:Filter", t1, t2);
        rec.attr(f, "node_id", 2);
        rec.attr(f, "detail", "Filter[city = 'NYC']");
        rec.attr(f, "rows_in", 100);
        rec.attr(f, "rows_out", 25);
        rec.attr(f, "batches", 2);
        rec.attr(f, "bytes", 600);
        // Two workers: 2ms and 5ms busy.
        let w0 = rec.record_span(
            "worker",
            Timestamp::from_nanos(0),
            Timestamp::from_nanos(2_000_000),
        );
        rec.attr(w0, "worker", 0);
        rec.attr(w0, "items", 1);
        let w1 = rec.record_span(
            "worker",
            Timestamp::from_nanos(0),
            Timestamp::from_nanos(5_000_000),
        );
        rec.attr(w1, "worker", 1);
        rec.attr(w1, "items", 1);
        rec.end(scan);

        let err = rec.start("error_estimation");
        let e0 = clock.now();
        clock.advance(ms(3));
        let e1 = clock.now();
        let e = rec.record_span("op:ErrorEstimate", e0, e1);
        rec.attr(e, "node_id", 0);
        rec.attr(e, "detail", "ErrorEstimate[Bootstrap, alpha=0.95]");
        rec.attr(e, "rows_in", 1);
        rec.attr(e, "rows_out", 1);
        rec.attr(e, "batches", 1);
        rec.attr(e, "resamples", 100);
        rec.end(err);
        rec.finish()
    }

    #[test]
    fn forest_rebuilds_the_plan_chain() {
        let trace = engine_like_trace();
        let trees = OpProfile::forest(&trace);
        assert_eq!(trees.len(), 1);
        let root = &trees[0];
        assert_eq!(root.name, "ErrorEstimate");
        assert_eq!(root.node_id, 0);
        assert_eq!(root.resamples, Some(100));
        assert_eq!(root.children.len(), 1);
        let filter = &root.children[0];
        assert_eq!(filter.name, "Filter");
        assert_eq!(filter.rows_out, 25);
        let scan = &filter.children[0];
        assert_eq!(scan.name, "Scan");
        assert_eq!(scan.wall, ms(4));
        assert_eq!(scan.sample_fraction, Some(0.05));
        assert_eq!(root.len(), 3);
    }

    #[test]
    fn workers_attach_to_the_deepest_op_of_the_stage() {
        let trace = engine_like_trace();
        let tree = OpProfile::from_trace(&trace).expect("tree");
        let scan = tree.find("Scan").expect("scan");
        assert_eq!(scan.workers.len(), 2);
        assert_eq!(scan.workers[0].busy, ms(2));
        assert_eq!(scan.workers[1].busy, ms(5));
        // Stage wall is 6ms; idle = wall − busy.
        assert_eq!(scan.workers[0].idle, ms(4));
        assert_eq!(scan.workers[1].idle, ms(1));
        // Slowdown = max/median = 5/5 over [2,5]: median (upper) is 5.
        assert_eq!(scan.straggler_slowdown, Some(1.0));
        // The Filter shares the stage but gets no workers.
        assert!(tree.find("Filter").expect("filter").workers.is_empty());
    }

    #[test]
    fn single_slow_worker_gets_the_right_slowdown_factor() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        let stage = rec.start("error_estimation");
        let e0 = clock.now();
        for (i, busy_ms) in [10u64, 10, 10, 40].iter().enumerate() {
            let w = rec.record_span(
                "worker",
                e0,
                Timestamp::from_nanos(e0.nanos() + busy_ms * 1_000_000),
            );
            rec.attr(w, "worker", i);
            rec.attr(w, "items", 5);
        }
        clock.advance(ms(40));
        let e1 = clock.now();
        let e = rec.record_span("op:ErrorEstimate", e0, e1);
        rec.attr(e, "node_id", 0);
        rec.attr(e, "rows_in", 4);
        rec.attr(e, "rows_out", 4);
        rec.end(stage);
        let tree = OpProfile::from_trace(&rec.finish()).expect("tree");
        // busy [10,10,10,40]: median 10, max 40 → slowdown ×4, bit-exact.
        assert_eq!(tree.straggler_slowdown, Some(4.0));
        assert_eq!(tree.workers.len(), 4);
        assert_eq!(tree.workers[3].busy, ms(40));
        assert_eq!(tree.workers[3].idle, Duration::ZERO);
        assert_eq!(tree.workers[0].idle, ms(30));
    }

    #[test]
    fn multiple_executions_split_into_separate_trees() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        // Execution 1: node ids 2, 1, 0.
        let s1 = rec.start("scan_collect");
        for (name, id) in [("op:Scan", 2usize), ("op:Filter", 1), ("op:Aggregate", 0)] {
            let t = clock.now();
            clock.advance(ms(1));
            let sp = rec.record_span(name, t, clock.now());
            rec.attr(sp, "node_id", id);
        }
        rec.end(s1);
        // Execution 2 (an exact replay): ids 1, 0.
        let s2 = rec.start("exact_execution");
        for (name, id) in [("op:Scan", 1usize), ("op:Aggregate", 0)] {
            let t = clock.now();
            clock.advance(ms(1));
            let sp = rec.record_span(name, t, clock.now());
            rec.attr(sp, "node_id", id);
        }
        rec.end(s2);
        let trace = rec.finish();
        let trees = OpProfile::forest(&trace);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].len(), 3);
        assert_eq!(trees[1].len(), 2);
        assert_eq!(trees[1].name, "Aggregate");
    }

    #[test]
    fn from_trace_prefers_the_root_stage_tree() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        // A pilot run nested under sample_selection.
        let sel = rec.start("sample_selection");
        let pilot_scan = rec.start("scan_collect");
        let t = clock.now();
        clock.advance(ms(1));
        let sp = rec.record_span("op:Scan", t, clock.now());
        rec.attr(sp, "node_id", 1);
        rec.attr(sp, "rows_in", 99);
        rec.end(pilot_scan);
        rec.end(sel);
        // The main run: stage at the root.
        let main = rec.start("scan_collect");
        let t = clock.now();
        clock.advance(ms(1));
        let sp = rec.record_span("op:Scan", t, clock.now());
        rec.attr(sp, "node_id", 1);
        rec.attr(sp, "rows_in", 1000);
        rec.end(main);
        let trace = rec.finish();
        assert_eq!(OpProfile::forest(&trace).len(), 2);
        let tree = OpProfile::from_trace(&trace).expect("tree");
        assert_eq!(tree.rows_in, 1000, "must pick the root-stage execution");
    }

    #[test]
    fn render_text_and_json_are_deterministic() {
        let a = OpProfile::from_trace(&engine_like_trace()).expect("tree");
        let b = OpProfile::from_trace(&engine_like_trace()).expect("tree");
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json(), b.to_json());
        let text = a.render_text();
        assert!(text.contains("Scan[sessions]  (op #3, wall 4.000ms)"));
        assert!(text.contains("rows 100 -> 25"));
        // Scan: 100 rows / 2400 B over 4ms.
        assert!(text.contains("25000 rows/s"), "{text}");
        assert!(text.contains("600000 B/s"), "{text}");
        assert!(text.contains("workers[2] busy=[2.000, 5.000]ms slowdown=x1.00"));
        let json = a.to_json();
        assert!(json.starts_with("{\"op\":\"ErrorEstimate\""));
        assert!(json.contains("\"resamples\":100"));
        assert!(json.contains("\"sample_fraction\":0.05"));
        assert!(json.contains("\"rows_per_s\":25000"), "{json}");
        assert!(json.contains("\"bytes_per_s\":600000"), "{json}");
        assert!(json.contains("\"children\":["));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn throughput_is_none_on_zero_wall_and_exact_otherwise() {
        assert_eq!(throughput(100, Duration::ZERO), None);
        assert_eq!(throughput(100, ms(4)), Some(25_000.0));
        assert_eq!(throughput(0, ms(4)), Some(0.0));
        let tree = OpProfile::from_trace(&engine_like_trace()).expect("tree");
        let scan = tree.find("Scan").expect("scan");
        assert_eq!(scan.rows_per_s, Some(25_000.0));
        assert_eq!(scan.bytes_per_s, Some(600_000.0));
    }

    #[test]
    fn jsonl_sink_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "aqp_prof_sink_{}_{}",
            std::process::id(),
            "t1"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("profiles.jsonl");
        let tree = OpProfile::from_trace(&engine_like_trace()).expect("tree");
        let mut sink =
            JsonlSink::open(path.to_str().expect("utf8 path"), 1 << 20, 1).expect("open");
        tree.append_jsonl(&mut sink).expect("append");
        sink.flush().expect("flush");
        let data = std::fs::read_to_string(&path).expect("read");
        assert_eq!(data, format!("{}\n", tree.to_json()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reconcile_holds_on_engine_like_traces() {
        let trace = engine_like_trace();
        let recs = reconcile_stages(&trace);
        assert_eq!(recs.len(), 2);
        for r in &recs {
            assert!(r.holds(), "{} op_total {:?} > wall {:?}", r.stage, r.op_total, r.wall);
        }
        // scan_collect: ops 4ms + 2ms = 6ms = stage wall (bit-exact).
        let scan = recs.iter().find(|r| r.stage == "scan_collect").expect("scan");
        assert_eq!(scan.op_total, ms(6));
        assert_eq!(scan.wall, ms(6));
    }

    #[test]
    fn reconcile_flags_overcommitted_stages() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        let stage = rec.start("scan_collect");
        // Two ops that each claim the whole (1ms) stage: 2ms > 1ms.
        let t0 = clock.now();
        clock.advance(ms(1));
        let t1 = clock.now();
        for (name, id) in [("op:Scan", 1usize), ("op:Filter", 0)] {
            let sp = rec.record_span(name, t0, t1);
            rec.attr(sp, "node_id", id);
        }
        rec.end(stage);
        let recs = reconcile_stages(&rec.finish());
        assert_eq!(recs.len(), 1);
        assert!(!recs[0].holds());
        assert_eq!(recs[0].op_total, ms(2));
        assert_eq!(recs[0].wall, ms(1));
    }

    #[test]
    fn explain_mode_defaults_off() {
        assert_eq!(ExplainMode::default(), ExplainMode::Off);
    }
}

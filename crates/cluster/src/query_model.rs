//! Maps a query's statistical profile to the jobs each execution
//! strategy runs, and simulates them.
//!
//! The two strategies mirror the paper's evaluation setup:
//!
//! * **Naive** (§5.2): the UNION-ALL rewrite. Bootstrap error estimation
//!   executes K full-sample subqueries; the diagnostic executes p·k
//!   subsample-extraction subqueries plus (for bootstrap ξ) K resample
//!   subqueries per subsample — 30,000 subqueries at the paper's
//!   parameters, serialized through scheduler dispatch and the driver.
//! * **Optimized** (§5.3): scan consolidation + operator pushdown. One
//!   scan computes the answer; error estimation and diagnostics are
//!   *piggyback* CPU passes over the post-filter data (weights streamed,
//!   no tuple duplication), paying only their compute waves and their
//!   many-to-one reduce of K (resp. p·k) result streams.
//!
//! Physical tuning (§6) — parallelism bound, cache fraction, straggler
//! mitigation — applies to either through [`PhysicalTuning`].

use serde::{Deserialize, Serialize};

use aqp_stats::rng::SeedStream;

use crate::config::{ClusterConfig, PhysicalTuning};
use crate::sim::{simulate_job, simulate_jobs};
use crate::task::Job;

/// Execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanMode {
    /// The §5.2 query-rewrite baseline.
    Naive,
    /// The §5.3 consolidated/pushed-down plan.
    Optimized,
}

/// The statistical/cost profile of one query (what Fig. 7–9 vary across
/// their 100-query sets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryProfile {
    /// Sample size scanned, MB (§7: cached samples of up to 20 GB).
    pub sample_mb: f64,
    /// Fraction of rows surviving filters.
    pub selectivity: f64,
    /// CPU cost of scan/filter/project per input MB, ms.
    pub scan_cpu_ms_per_mb: f64,
    /// CPU cost of aggregation per post-filter MB, ms (higher for
    /// UDFs/nested aggregates).
    pub agg_cpu_ms_per_mb: f64,
    /// Whether closed-form error estimation applies (QSet-1 vs QSet-2).
    pub closed_form: bool,
    /// Bootstrap resamples K.
    pub bootstrap_k: usize,
    /// Diagnostic subsamples per size (p).
    pub diag_p: usize,
    /// Diagnostic subsample sizes, MB (pre-filter).
    pub diag_subsample_mb: Vec<f64>,
}

impl QueryProfile {
    /// A representative QSet-1 query (closed-form-amenable).
    pub fn qset1_default() -> Self {
        QueryProfile {
            sample_mb: 20_000.0,
            selectivity: 0.02,
            scan_cpu_ms_per_mb: 0.5,
            agg_cpu_ms_per_mb: 1.0,
            closed_form: true,
            bootstrap_k: 100,
            diag_p: 100,
            diag_subsample_mb: vec![50.0, 100.0, 200.0],
        }
    }

    /// A representative QSet-2 query (bootstrap-only: UDFs, nested
    /// subqueries, multiple aggregates).
    pub fn qset2_default() -> Self {
        QueryProfile {
            agg_cpu_ms_per_mb: 2.0,
            closed_form: false,
            ..QueryProfile::qset1_default()
        }
    }

    /// Post-filter data volume, MB.
    pub fn post_mb(&self) -> f64 {
        self.sample_mb * self.selectivity
    }
}

/// Simulated per-phase latencies, seconds (the bar decomposition of
/// Fig. 7/9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTimings {
    /// Query execution on the sample.
    pub query_s: f64,
    /// Error-estimation overhead.
    pub error_s: f64,
    /// Diagnostics overhead.
    pub diag_s: f64,
}

impl SimTimings {
    /// End-to-end latency.
    pub fn total(&self) -> f64 {
        self.query_s + self.error_s + self.diag_s
    }
}

/// Scan task granularity (HDFS-block-sized splits).
const TASK_MB: f64 = 64.0;
/// Relative cost of a streamed weighted accumulation vs. a full
/// re-aggregation of the same data.
const WEIGHTED_AGG_DISCOUNT: f64 = 0.3;
/// Row-width blowup of carrying the consolidated weight columns
/// (§5.3.2's "temporarily increases the overall amount of intermediate
/// data").
const WEIGHT_COLUMN_BLOWUP: f64 = 16.0;

fn scan_tasks(mb: f64) -> usize {
    (mb / TASK_MB).ceil().max(1.0) as usize
}

/// The main query job: scan the sample, filter, aggregate.
fn query_job(p: &QueryProfile, mode: PlanMode) -> Job {
    let cpu = p.scan_cpu_ms_per_mb * p.sample_mb + p.agg_cpu_ms_per_mb * p.post_mb();
    let (cpu, intermediate) = match mode {
        PlanMode::Naive => (cpu, p.post_mb()),
        // Consolidation also draws Poisson weights for surviving tuples
        // (cheap table-inversion draws) and widens the intermediate rows.
        PlanMode::Optimized => (
            cpu + 0.05 * p.agg_cpu_ms_per_mb * p.post_mb(),
            p.post_mb() * WEIGHT_COLUMN_BLOWUP,
        ),
    };
    Job::split(p.sample_mb, cpu, scan_tasks(p.sample_mb), intermediate)
}

/// Simulate one query under the given strategy and tuning.
pub fn simulate_query(
    profile: &QueryProfile,
    mode: PlanMode,
    tuning: &PhysicalTuning,
    cfg: &ClusterConfig,
    seed: u64,
) -> SimTimings {
    let seeds = SeedStream::new(seed);
    let n_scan_tasks = scan_tasks(profile.sample_mb);
    let k_levels = profile.diag_subsample_mb.len();
    let subsample_total_mb: f64 = profile.diag_subsample_mb.iter().sum();

    // Phase 1: the query itself.
    let query_s = simulate_job(&query_job(profile, mode), tuning, cfg, &mut seeds.rng(0));

    // Phase 2: error estimation.
    let error_s = match (mode, profile.closed_form) {
        (PlanMode::Naive, true) => {
            // A separate small subquery re-aggregating the (cached)
            // post-filter data to compute the variance statistics.
            let cpu = profile.agg_cpu_ms_per_mb * profile.post_mb() * 1.5;
            let job =
                Job::split(profile.post_mb(), cpu, scan_tasks(profile.post_mb()), 0.0);
            simulate_jobs(&[job], tuning, cfg, seeds.derive(1))
        }
        (PlanMode::Naive, false) => {
            // K full-sample subqueries (the UNION ALL of §5.2).
            let one = query_job(profile, PlanMode::Naive);
            let jobs = vec![one; profile.bootstrap_k];
            simulate_jobs(&jobs, tuning, cfg, seeds.derive(2))
        }
        (PlanMode::Optimized, true) => {
            // Moment accumulators maintained during the single scan.
            let cpu = profile.agg_cpu_ms_per_mb * profile.post_mb() * 1.5;
            let job = Job::cpu_only(cpu, n_scan_tasks).piggyback();
            simulate_job(&job, tuning, cfg, &mut seeds.rng(3))
        }
        (PlanMode::Optimized, false) => {
            // K weighted accumulations over the post-filter tuples,
            // streamed in the same pass; K result streams reduce.
            let cpu = profile.bootstrap_k as f64
                * profile.agg_cpu_ms_per_mb
                * profile.post_mb()
                * WEIGHTED_AGG_DISCOUNT;
            let job = Job::cpu_only(cpu, n_scan_tasks)
                .with_streams(profile.bootstrap_k)
                .with_intermediate(profile.post_mb() * WEIGHT_COLUMN_BLOWUP)
                .piggyback();
            simulate_job(&job, tuning, cfg, &mut seeds.rng(4))
        }
    };

    // Phase 3: diagnostics.
    let diag_s = match mode {
        PlanMode::Naive => {
            // p·k subsample-extraction subqueries plus per-subsample error
            // estimation: K single-task resample subqueries (bootstrap) or
            // one closed-form subquery.
            let mut jobs = Vec::new();
            for &b in &profile.diag_subsample_mb {
                for _ in 0..profile.diag_p {
                    let cpu = profile.scan_cpu_ms_per_mb * b;
                    jobs.push(Job::split(b, cpu, scan_tasks(b), 0.0));
                    let post_b = b * profile.selectivity;
                    if profile.closed_form {
                        jobs.push(Job::cpu_only(profile.agg_cpu_ms_per_mb * post_b, 1));
                    } else {
                        for _ in 0..profile.bootstrap_k {
                            jobs.push(Job::cpu_only(
                                profile.agg_cpu_ms_per_mb * post_b * WEIGHTED_AGG_DISCOUNT,
                                1,
                            ));
                        }
                    }
                }
            }
            simulate_jobs(&jobs, tuning, cfg, seeds.derive(5))
        }
        PlanMode::Optimized => {
            // All subsample estimates computed from the consolidated scan:
            // CPU over p · Σbᵢ · selectivity MB of values — once for θ̂ and
            // (bootstrap ξ) K discounted times for the resample intervals —
            // with p·k result streams in the diagnostic operator's reduce.
            let data_mb = profile.diag_p as f64 * subsample_total_mb * profile.selectivity;
            let reps = if profile.closed_form {
                1.0
            } else {
                profile.bootstrap_k as f64 * WEIGHTED_AGG_DISCOUNT
            };
            let cpu = profile.agg_cpu_ms_per_mb * data_mb * (1.0 + reps);
            let job = Job::cpu_only(cpu, n_scan_tasks)
                .with_streams(profile.diag_p * k_levels)
                .with_intermediate(data_mb)
                .piggyback();
            simulate_job(&job, tuning, cfg, &mut seeds.rng(6))
        }
    };

    SimTimings { query_s, error_s, diag_s }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::default()
    }

    fn sim(profile: &QueryProfile, mode: PlanMode, tuning: &PhysicalTuning) -> SimTimings {
        simulate_query(profile, mode, tuning, &cfg(), 42)
    }

    #[test]
    fn naive_qset2_takes_minutes_optimized_takes_seconds() {
        // Fig. 7(b) vs Fig. 9(b).
        let p = QueryProfile::qset2_default();
        let untuned = PhysicalTuning::untuned(&cfg());
        let naive = sim(&p, PlanMode::Naive, &untuned);
        assert!(naive.total() > 60.0, "naive QSet-2 total {} s", naive.total());

        let tuned = PhysicalTuning::tuned();
        let opt = sim(&p, PlanMode::Optimized, &tuned);
        assert!(opt.total() < 10.0, "optimized QSet-2 total {} s", opt.total());
    }

    #[test]
    fn naive_qset1_takes_tens_of_seconds() {
        // Fig. 7(a): QSet-1 baseline totals in the tens of seconds,
        // dominated by the diagnostics overhead.
        let p = QueryProfile::qset1_default();
        let untuned = PhysicalTuning::untuned(&cfg());
        let naive = sim(&p, PlanMode::Naive, &untuned);
        assert!(
            naive.total() > 10.0 && naive.total() < 300.0,
            "naive QSet-1 total {} s",
            naive.total()
        );
        assert!(naive.diag_s > naive.error_s, "{naive:?}");
    }

    #[test]
    fn qset2_plan_speedups_match_paper_bands() {
        // Fig. 8(b): error estimation 20–60×, diagnostics 20–100×
        // (slack allowed around the published bands).
        let p = QueryProfile::qset2_default();
        let untuned = PhysicalTuning::untuned(&cfg());
        let naive = sim(&p, PlanMode::Naive, &untuned);
        let opt = sim(&p, PlanMode::Optimized, &untuned);
        let err_speedup = naive.error_s / opt.error_s;
        let diag_speedup = naive.diag_s / opt.diag_s;
        assert!((15.0..=100.0).contains(&err_speedup), "QSet-2 error speedup {err_speedup}");
        assert!((15.0..=160.0).contains(&diag_speedup), "QSet-2 diag speedup {diag_speedup}");
    }

    #[test]
    fn qset1_plan_speedups_match_paper_bands() {
        // Fig. 8(a): error estimation 1–2×, diagnostics 5–20×.
        let p = QueryProfile::qset1_default();
        let untuned = PhysicalTuning::untuned(&cfg());
        let naive = sim(&p, PlanMode::Naive, &untuned);
        let opt = sim(&p, PlanMode::Optimized, &untuned);
        let err_speedup = naive.error_s / opt.error_s;
        let diag_speedup = naive.diag_s / opt.diag_s;
        assert!((0.8..=4.0).contains(&err_speedup), "QSet-1 error speedup {err_speedup}");
        assert!((4.0..=30.0).contains(&diag_speedup), "QSet-1 diag speedup {diag_speedup}");
    }

    #[test]
    fn parallelism_sweet_spot_is_intermediate() {
        // Fig. 8(c): error estimation + diagnostics are most efficient at
        // a bounded degree of parallelism (~20 machines), and degrade
        // toward the full cluster.
        let p = QueryProfile::qset2_default();
        let lat_at = |m: usize| {
            let t = PhysicalTuning {
                parallelism: m,
                cache_fraction: 0.35,
                straggler_mitigation: false,
            };
            let s = sim(&p, PlanMode::Optimized, &t);
            s.error_s + s.diag_s
        };
        let l1 = lat_at(1);
        let l20 = lat_at(20);
        let l100 = lat_at(100);
        assert!(l20 < l1, "20 machines {l20} vs 1 machine {l1}");
        assert!(l100 > l20, "100 machines {l100} vs 20 machines {l20}");
    }

    #[test]
    fn optimized_beats_naive_everywhere() {
        for profile in [QueryProfile::qset1_default(), QueryProfile::qset2_default()] {
            let t = PhysicalTuning::untuned(&cfg());
            let naive = sim(&profile, PlanMode::Naive, &t);
            let opt = sim(&profile, PlanMode::Optimized, &t);
            assert!(opt.error_s <= naive.error_s * 1.3, "{profile:?}");
            assert!(opt.diag_s <= naive.diag_s, "{profile:?}");
        }
    }

    #[test]
    fn physical_tuning_improves_optimized_plan() {
        // Fig. 8(e)/(f): tuning parallelism/cache/stragglers on top of the
        // plan optimizations yields further speedups.
        let p = QueryProfile::qset2_default();
        let c = cfg();
        let untuned = PhysicalTuning::untuned(&c);
        let tuned = PhysicalTuning::tuned();
        let avg = |t: &PhysicalTuning| {
            (0..20)
                .map(|s| simulate_query(&p, PlanMode::Optimized, t, &c, 100 + s).total())
                .sum::<f64>()
                / 20.0
        };
        let u = avg(&untuned);
        let tu = avg(&tuned);
        assert!(tu < u, "tuned {tu} vs untuned {u}");
    }

    #[test]
    fn selectivity_drives_optimized_bootstrap_cost() {
        // Operator pushdown's benefit: lower selectivity = cheaper error
        // estimation (weights only for surviving tuples).
        let t = PhysicalTuning::tuned();
        let mut lo = QueryProfile::qset2_default();
        lo.selectivity = 0.005;
        let mut hi = QueryProfile::qset2_default();
        hi.selectivity = 0.3;
        let e_lo = sim(&lo, PlanMode::Optimized, &t).error_s;
        let e_hi = sim(&hi, PlanMode::Optimized, &t).error_s;
        assert!(e_lo < e_hi, "lo {e_lo} vs hi {e_hi}");
    }

    #[test]
    fn determinism() {
        let p = QueryProfile::qset1_default();
        let t = PhysicalTuning::tuned();
        let a = simulate_query(&p, PlanMode::Optimized, &t, &cfg(), 7);
        let b = simulate_query(&p, PlanMode::Optimized, &t, &cfg(), 7);
        assert_eq!(a, b);
    }
}

//! Jobs and tasks — the simulator's unit of work.

use serde::{Deserialize, Serialize};

/// One task: scans some input and burns some CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Input bytes to scan, MB.
    pub input_mb: f64,
    /// Pure compute time at nominal speed, ms.
    pub cpu_ms: f64,
}

impl Task {
    /// A compute-only task.
    pub fn cpu(cpu_ms: f64) -> Self {
        Task { input_mb: 0.0, cpu_ms }
    }
}

/// A job: a bag of parallel tasks followed by a many-to-one reduce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// The parallel tasks.
    pub tasks: Vec<Task>,
    /// Working-set size of intermediate data during execution, MB
    /// (drives the §6.2 cache-vs-working-memory trade-off).
    pub intermediate_mb: f64,
    /// Independent result streams funneled through the final many-to-one
    /// aggregation (1 for a plain aggregate; K + p·k for a consolidated
    /// error-estimation/diagnostic pass — §6.1's communication term).
    pub result_streams: usize,
    /// Piggyback jobs ride the tasks of an already-dispatched scan
    /// (scan consolidation): they pay no dispatch or task-launch
    /// overhead, only CPU waves and their reduce.
    pub piggyback: bool,
}

impl Job {
    /// Split `input_mb` of scan work plus `cpu_ms_total` of compute into
    /// `n_tasks` equal tasks.
    pub fn split(input_mb: f64, cpu_ms_total: f64, n_tasks: usize, intermediate_mb: f64) -> Job {
        let n = n_tasks.max(1);
        let t = Task { input_mb: input_mb / n as f64, cpu_ms: cpu_ms_total / n as f64 };
        Job { tasks: vec![t; n], intermediate_mb, result_streams: 1, piggyback: false }
    }

    /// A compute-only job of `n_tasks` equal tasks.
    pub fn cpu_only(cpu_ms_total: f64, n_tasks: usize) -> Job {
        Job::split(0.0, cpu_ms_total, n_tasks, 0.0)
    }

    /// Set the number of result streams.
    pub fn with_streams(mut self, streams: usize) -> Job {
        self.result_streams = streams.max(1);
        self
    }

    /// Set the intermediate working-set size.
    pub fn with_intermediate(mut self, mb: f64) -> Job {
        self.intermediate_mb = mb;
        self
    }

    /// Mark as a piggyback pass on an already-running scan.
    pub fn piggyback(mut self) -> Job {
        self.piggyback = true;
        self
    }

    /// Total scan input across tasks, MB.
    pub fn total_input_mb(&self) -> f64 {
        self.tasks.iter().map(|t| t.input_mb).sum()
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_conserves_work() {
        let j = Job::split(1000.0, 500.0, 7, 50.0);
        assert_eq!(j.num_tasks(), 7);
        assert!((j.total_input_mb() - 1000.0).abs() < 1e-9);
        let total_cpu: f64 = j.tasks.iter().map(|t| t.cpu_ms).sum();
        assert!((total_cpu - 500.0).abs() < 1e-9);
        assert_eq!(j.result_streams, 1);
        assert!(!j.piggyback);
    }

    #[test]
    fn split_handles_zero_tasks() {
        let j = Job::split(10.0, 10.0, 0, 0.0);
        assert_eq!(j.num_tasks(), 1);
    }

    #[test]
    fn builders() {
        let j = Job::cpu_only(100.0, 4).with_streams(300).with_intermediate(5.0).piggyback();
        assert_eq!(j.result_streams, 300);
        assert_eq!(j.intermediate_mb, 5.0);
        assert!(j.piggyback);
        assert_eq!(j.total_input_mb(), 0.0);
        // Streams floor at 1.
        assert_eq!(Job::cpu_only(1.0, 1).with_streams(0).result_streams, 1);
    }
}

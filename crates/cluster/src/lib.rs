//! # aqp-cluster
//!
//! A discrete-event cluster simulator standing in for the paper's 100-node
//! EC2 deployment (§7: 100 × m1.large, 75 TB disk, 600 GB RAM cache).
//!
//! The Fig. 7–9 experiments measure *cost-structure* effects — per-task
//! scheduling overhead vs. parallel scan work vs. many-to-one aggregation
//! vs. straggler tails vs. cache-tier bandwidth — not absolute EC2
//! seconds. This crate models exactly those terms:
//!
//! * [`config::ClusterConfig`] — machine and scheduler parameters,
//!   calibrated to m1.large-era hardware,
//! * [`task`] — jobs as bags of tasks with input sizes and CPU costs,
//! * [`sim`] — the scheduler simulation: dispatch, waves over bounded
//!   slots, lognormal stragglers, optional 10%-clone mitigation (§6.3),
//!   cache-tier scan speeds and input-vs-working-memory contention
//!   (§6.2),
//! * [`query_model`] — maps a query's statistical profile to the job
//!   sequences produced by the naive (§5.2), plan-optimized (§5.3), and
//!   physically-tuned (§6) execution strategies,
//! * [`autotune`] — the paper's stated future work: automatic selection
//!   of the degree of parallelism (and the cache fraction) by searching
//!   the latency model.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod config;
pub mod query_model;
pub mod sim;
pub mod task;

pub use autotune::{auto_tune_parallelism, auto_tune_workload};
pub use config::{ClusterConfig, PhysicalTuning};
pub use query_model::{simulate_query, PlanMode, QueryProfile, SimTimings};
pub use sim::simulate_job;
pub use task::{Job, Task};

//! Automatic physical tuning — the paper's stated future work
//! ("Choosing the degree of parallelism automatically is a topic of
//! future work", §7.3) plus the cache-fraction knob.
//!
//! The simulator makes this a search problem: evaluate the latency model
//! over the knob grid and take the argmin. Deterministic (expected-value
//! simulation seeds) and cheap — the same idea a production system would
//! implement with its own cost model.

use crate::config::{ClusterConfig, PhysicalTuning};
use crate::query_model::{simulate_query, PlanMode, QueryProfile};

/// Candidate machine counts evaluated by the tuner.
const PARALLELISM_GRID: &[usize] = &[1, 2, 5, 10, 15, 20, 30, 40, 60, 80, 100];
/// Candidate cache fractions.
const CACHE_GRID: &[f64] = &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0];

/// Latency of a profile under a tuning, averaged over a few seeds.
fn expected_latency(
    profile: &QueryProfile,
    tuning: &PhysicalTuning,
    cfg: &ClusterConfig,
    seeds: &[u64],
) -> f64 {
    seeds
        .iter()
        .map(|&s| simulate_query(profile, PlanMode::Optimized, tuning, cfg, s).total())
        .sum::<f64>()
        / seeds.len() as f64
}

/// Pick the degree of parallelism minimizing expected latency for this
/// query profile at the given cache fraction.
pub fn auto_tune_parallelism(
    profile: &QueryProfile,
    cache_fraction: f64,
    cfg: &ClusterConfig,
) -> usize {
    let seeds: Vec<u64> = (0..5).collect();
    let mut best = (cfg.machines, f64::MAX);
    for &m in PARALLELISM_GRID {
        if m > cfg.machines {
            continue;
        }
        let tuning = PhysicalTuning {
            parallelism: m,
            cache_fraction,
            straggler_mitigation: true,
        };
        let lat = expected_latency(profile, &tuning, cfg, &seeds);
        if lat < best.1 {
            best = (m, lat);
        }
    }
    best.0
}

/// Jointly tune parallelism and cache fraction for a *workload* (a set
/// of profiles): the cache is a cluster-wide setting, so it is chosen to
/// minimize the workload's mean latency, then per-query parallelism is
/// tuned under it.
pub fn auto_tune_workload(
    profiles: &[QueryProfile],
    cfg: &ClusterConfig,
) -> (f64, Vec<usize>) {
    let seeds: Vec<u64> = (0..3).collect();
    let mut best_cache = (0.35, f64::MAX);
    for &f in CACHE_GRID {
        let mut total = 0.0;
        for p in profiles {
            // Evaluate at a representative mid parallelism.
            let tuning =
                PhysicalTuning { parallelism: 20, cache_fraction: f, straggler_mitigation: true };
            total += expected_latency(p, &tuning, cfg, &seeds);
        }
        if total < best_cache.1 {
            best_cache = (f, total);
        }
    }
    let per_query = profiles
        .iter()
        .map(|p| auto_tune_parallelism(p, best_cache.0, cfg))
        .collect();
    (best_cache.0, per_query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_avoids_both_extremes_for_bootstrap_queries() {
        let cfg = ClusterConfig::default();
        let p = QueryProfile::qset2_default();
        let m = auto_tune_parallelism(&p, 0.35, &cfg);
        assert!(m > 1, "one machine can't be optimal for 20 GB scans");
        assert!(m < 100, "full cluster pays the many-to-one penalty, got {m}");
    }

    #[test]
    fn tuned_latency_beats_fixed_extremes() {
        let cfg = ClusterConfig::default();
        let p = QueryProfile::qset2_default();
        let m = auto_tune_parallelism(&p, 0.35, &cfg);
        let lat_at = |machines: usize| {
            let tuning = PhysicalTuning {
                parallelism: machines,
                cache_fraction: 0.35,
                straggler_mitigation: true,
            };
            (0..5)
                .map(|s| simulate_query(&p, PlanMode::Optimized, &tuning, &cfg, s).total())
                .sum::<f64>()
                / 5.0
        };
        assert!(lat_at(m) <= lat_at(1));
        assert!(lat_at(m) <= lat_at(100) * 1.001);
    }

    #[test]
    fn workload_tuning_picks_moderate_cache() {
        let cfg = ClusterConfig::default();
        let profiles = vec![QueryProfile::qset1_default(), QueryProfile::qset2_default()];
        let (cache, per_query) = auto_tune_workload(&profiles, &cfg);
        // Fig. 8(d): the optimum is an interior point, not 0% or 100%.
        assert!(cache > 0.0 && cache < 1.0, "cache {cache}");
        assert_eq!(per_query.len(), 2);
        assert!(per_query.iter().all(|&m| (2..=100).contains(&m)));
    }

    #[test]
    fn tuner_is_deterministic() {
        let cfg = ClusterConfig::default();
        let p = QueryProfile::qset1_default();
        assert_eq!(
            auto_tune_parallelism(&p, 0.35, &cfg),
            auto_tune_parallelism(&p, 0.35, &cfg)
        );
    }
}

//! The scheduler simulation.
//!
//! ## Single jobs ([`simulate_job`])
//!
//! ```text
//!   dispatch + driver result handling (serial, per launched task)
//! + waves over bounded slots of max(per-task time)       — §6.1 parallelism
//! + reduce (base + per-task + machines × result-streams) — §6.1 aggregation
//! ```
//!
//! Per-task time = launch overhead + scan time (cache-tier-weighted,
//! §6.2) + CPU inflated by the executor-memory spill factor (input
//! caching squeezes working memory, §6.2) — multiplied by a sampled
//! lognormal straggler factor (§6.3). Straggler mitigation launches 10%
//! clones (extra dispatch) and resolves each task at the faster of two
//! draws.
//!
//! **Piggyback** jobs (the consolidated error/diagnostic passes of
//! §5.3.1) ride the tasks of an already-dispatched scan: they pay no
//! dispatch, no per-task launch overhead, and no driver-result cost —
//! only their CPU waves and their own many-to-one reduce.
//!
//! ## Naive subquery sequences ([`simulate_jobs`])
//!
//! The §5.2 rewrite executes hundreds to tens of thousands of subqueries.
//! Their latency is modeled analytically as
//!
//! ```text
//!   Σ launched-tasks × (dispatch + driver-result)   — serial through the scheduler
//! + Σ task work × E[straggle] / slots               — parallel execution
//! + Σ per-job stage barrier                         — multi-task jobs pay a full
//!                                                     barrier; single-task
//!                                                     subqueries a reduced one
//! ```
//!
//! which is what makes 30,000 diagnostic subqueries cost minutes while
//! the consolidated pass costs seconds.

use rand::{Rng, RngExt};

use aqp_stats::dist::sample_lognormal;
use aqp_stats::rng::SeedStream;

use crate::config::{ClusterConfig, PhysicalTuning};
use crate::task::Job;

/// Seconds to read `input_mb` given the cache tier mix.
fn scan_seconds(input_mb: f64, tuning: &PhysicalTuning, cfg: &ClusterConfig) -> f64 {
    let f = tuning.cache_fraction.clamp(0.0, 1.0);
    input_mb * (f / cfg.mem_mb_s + (1.0 - f) / cfg.disk_mb_s)
}

/// Executor-memory spill factor (≥ 1) applied to CPU time.
///
/// Per machine: the input cache claims `cache_fraction × total_input /
/// machines` MB; execution demands `exec_mem_demand_mb` plus this job's
/// per-machine share of its intermediate data. The fraction of demand
/// that does not fit runs at the disk/memory speed ratio — producing the
/// Fig. 8(d) U-shape as caching rises.
fn spill_multiplier(job: &Job, tuning: &PhysicalTuning, cfg: &ClusterConfig) -> f64 {
    let machines = tuning.parallelism.min(cfg.machines).max(1) as f64;
    let f = tuning.cache_fraction.clamp(0.0, 1.0);
    let cache_per_machine = f * cfg.total_input_mb / cfg.machines as f64;
    let available = (cfg.ram_mb_per_machine - cache_per_machine).max(0.0);
    let demand = cfg.exec_mem_demand_mb + job.intermediate_mb / machines;
    if demand <= available || demand == 0.0 {
        return 1.0;
    }
    let spilled = ((demand - available) / demand).clamp(0.0, 1.0);
    1.0 + spilled * (cfg.mem_mb_s / cfg.disk_mb_s - 1.0) * 0.5
}

/// Clamp a configured straggler mean multiplier into a sane range.
///
/// A straggler *slows tasks down*, so the multiplier can never be below
/// 1: values in (0, 1) would make the busy span of a straggling task end
/// before its fault-free span does, and non-finite or non-positive
/// values (`NaN`, `±inf`, `0`, negatives — all representable in a
/// hand-written config) would push `ln()` to `-inf`/`NaN` and make the
/// sampled span end before it starts. The ceiling keeps the lognormal
/// mean — and hence every sampled latency — finite.
fn clamp_straggler_mult(m: f64) -> f64 {
    if m.is_nan() { 1.0 } else { m.clamp(1.0, 1e6) }
}

/// Expected straggler slowdown factor (used by the analytic sequence
/// model).
fn expected_straggle(cfg: &ClusterConfig) -> f64 {
    1.0 + cfg.straggler_prob.clamp(0.0, 1.0) * (clamp_straggler_mult(cfg.straggler_mean_mult) - 1.0)
}

/// Cached global-registry counters for the simulator
/// (`aqp.cluster.*`).
fn sim_counters() -> &'static (aqp_obs::Counter, aqp_obs::Counter, aqp_obs::Counter) {
    use std::sync::OnceLock;
    static C: OnceLock<(aqp_obs::Counter, aqp_obs::Counter, aqp_obs::Counter)> = OnceLock::new();
    C.get_or_init(|| {
        let reg = aqp_obs::MetricsRegistry::global();
        (
            reg.counter(aqp_obs::name::CLUSTER_JOBS),
            reg.counter(aqp_obs::name::CLUSTER_TASKS),
            reg.counter(aqp_obs::name::CLUSTER_STRAGGLER_TASKS),
        )
    })
}

/// Simulate one job, returning its latency in seconds.
pub fn simulate_job<R: Rng>(
    job: &Job,
    tuning: &PhysicalTuning,
    cfg: &ClusterConfig,
    rng: &mut R,
) -> f64 {
    if job.tasks.is_empty() {
        return 0.0;
    }
    let (jobs_c, tasks_c, stragglers_c) = sim_counters();
    jobs_c.inc();
    tasks_c.add(job.tasks.len() as u64);
    let machines = tuning.parallelism.min(cfg.machines).max(1);
    let slots = cfg.slots(tuning.parallelism);
    let spill = spill_multiplier(job, tuning, cfg);

    let clone_factor = if tuning.straggler_mitigation { 1.1 } else { 1.0 };
    let launched = (job.num_tasks() as f64 * clone_factor).ceil();

    // Serial scheduler + driver costs (skipped for piggyback passes).
    let serial_s = if job.piggyback {
        0.0
    } else {
        launched * (cfg.dispatch_ms_per_task + cfg.driver_result_ms_per_task) / 1000.0
    };
    let overhead_s = if job.piggyback { 0.0 } else { cfg.task_overhead_ms / 1000.0 };

    // Per-task completion times. Scheduled tasks draw sampled straggler
    // multipliers; piggyback passes are fine-grained accumulations
    // interleaved with the host scan, so they see only the expected
    // slowdown.
    let task_times: Vec<f64> = job
        .tasks
        .iter()
        .map(|t| {
            let nominal =
                overhead_s + scan_seconds(t.input_mb, tuning, cfg) + t.cpu_ms * spill / 1000.0;
            if job.piggyback {
                return nominal * expected_straggle(cfg);
            }
            let draw = |rng: &mut R| {
                if rng.random::<f64>() < cfg.straggler_prob {
                    let sigma = 0.6f64;
                    let mu = clamp_straggler_mult(cfg.straggler_mean_mult).ln() - 0.5 * sigma * sigma;
                    (nominal * sample_lognormal(rng, mu, sigma).max(1.0), true)
                } else {
                    (nominal, false)
                }
            };
            let (first, straggled) = draw(rng);
            if straggled {
                stragglers_c.inc();
            }
            if tuning.straggler_mitigation {
                first.min(draw(rng).0)
            } else {
                first
            }
        })
        .collect();

    // Waves over the available slots.
    let mut compute_s = 0.0;
    for wave in task_times.chunks(slots.max(1)) {
        compute_s += wave.iter().copied().fold(0.0f64, f64::max);
    }

    // Many-to-one reduce.
    let reduce_s = (cfg.reduce_base_ms
        + launched * cfg.reduce_ms_per_task
        + machines as f64 * job.result_streams as f64 * cfg.stream_result_ms)
        / 1000.0;

    serial_s + compute_s + reduce_s
}

/// Outcome of a fault-injected simulated job ([`simulate_job_faulty`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyJobOutcome {
    /// End-to-end latency in seconds, including injected delays, retry
    /// backoff, and task timeouts.
    pub latency_s: f64,
    /// Tasks that exhausted their recovery policy and were dropped.
    pub lost_tasks: usize,
    /// Retry attempts across all tasks.
    pub retries: usize,
    /// Speculative clones that beat their straggling primaries.
    pub speculative_wins: usize,
}

/// Simulate one job under deterministic fault injection.
///
/// The base latency is [`simulate_job`]'s; on top of it each task runs
/// through [`aqp_faults::resolve`] (the retry/speculation/blacklist
/// state machine lives entirely in `aqp-faults` — this crate only
/// consumes the per-task reports) and the resulting recovery delays are
/// scheduled in waves over the available slots, exactly like the
/// fault-free task times. Lost tasks occupy their slot for the full
/// delay but the job still completes — graceful degradation is the
/// caller's concern.
///
/// Deterministic: same `faults.seed` and same `rng` seed ⇒ bit-identical
/// outcome.
pub fn simulate_job_faulty<R: Rng>(
    job: &Job,
    tuning: &PhysicalTuning,
    cfg: &ClusterConfig,
    faults: &aqp_faults::FaultConfig,
    rng: &mut R,
) -> FaultyJobOutcome {
    let base = simulate_job(job, tuning, cfg, rng);
    let plan = aqp_faults::FaultPlan::new(faults.clone());
    let slots = cfg.slots(tuning.parallelism).max(1);
    let mut lost_tasks = 0;
    let mut retries = 0;
    let mut speculative_wins = 0;
    let delays: Vec<f64> = (0..job.num_tasks())
        .map(|task| {
            let report = aqp_faults::resolve(&plan, &faults.recovery, task);
            if report.lost {
                lost_tasks += 1;
            }
            for ev in &report.events {
                match ev.kind {
                    aqp_faults::EventKind::Retry => retries += 1,
                    aqp_faults::EventKind::SpeculativeLaunch { won: true } => {
                        speculative_wins += 1;
                    }
                    _ => {}
                }
            }
            report.total_delay.as_secs_f64()
        })
        .collect();
    let mut extra_s = 0.0;
    for wave in delays.chunks(slots) {
        extra_s += wave.iter().copied().fold(0.0f64, f64::max);
    }
    FaultyJobOutcome { latency_s: base + extra_s, lost_tasks, retries, speculative_wins }
}

/// Analytic latency of a back-to-back subquery sequence (the §5.2 naive
/// plans). Deterministic given the config (stragglers enter in
/// expectation); the `seeds` argument is kept for interface symmetry.
pub fn simulate_jobs(
    jobs: &[Job],
    tuning: &PhysicalTuning,
    cfg: &ClusterConfig,
    _seeds: SeedStream,
) -> f64 {
    let (jobs_c, tasks_c, _) = sim_counters();
    jobs_c.add(jobs.len() as u64);
    tasks_c.add(jobs.iter().map(|j| j.tasks.len() as u64).sum());
    let machines = tuning.parallelism.min(cfg.machines).max(1) as f64;
    let slots = cfg.slots(tuning.parallelism) as f64;
    let straggle = expected_straggle(cfg);
    let clone_factor = if tuning.straggler_mitigation { 1.1 } else { 1.0 };

    let mut serial_s = 0.0;
    let mut work_s = 0.0;
    let mut barrier_s = 0.0;
    for job in jobs {
        let spill = spill_multiplier(job, tuning, cfg);
        let launched = job.num_tasks() as f64 * clone_factor;
        serial_s +=
            launched * (cfg.dispatch_ms_per_task + cfg.driver_result_ms_per_task) / 1000.0;
        let task_work: f64 = job
            .tasks
            .iter()
            .map(|t| {
                cfg.task_overhead_ms / 1000.0
                    + scan_seconds(t.input_mb, tuning, cfg)
                    + t.cpu_ms * spill / 1000.0
            })
            .sum();
        work_s += task_work * straggle / slots;
        // Stage barrier: full for multi-task stages; tiny single-task
        // subqueries amortize theirs in the driver loop.
        let barrier_scale = if job.num_tasks() > 1 { 1.0 } else { 0.1 };
        barrier_s += barrier_scale
            * (cfg.reduce_base_ms
                + launched * cfg.reduce_ms_per_task
                + machines * job.result_streams as f64 * cfg.stream_result_ms)
            / 1000.0;
    }
    serial_s + work_s + barrier_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_stats::rng::rng_from_seed;
    use crate::task::Task;

    fn cfg() -> ClusterConfig {
        ClusterConfig::default()
    }

    fn no_straggle(mut c: ClusterConfig) -> ClusterConfig {
        c.straggler_prob = 0.0;
        c
    }

    #[test]
    fn empty_job_is_free() {
        let empty = Job { tasks: vec![], intermediate_mb: 0.0, result_streams: 1, piggyback: false };
        let mut rng = rng_from_seed(1);
        assert_eq!(simulate_job(&empty, &PhysicalTuning::tuned(), &cfg(), &mut rng), 0.0);
    }

    #[test]
    fn more_parallelism_helps_for_scan_heavy_work() {
        let c = no_straggle(cfg());
        let work = Job::split(20_000.0, 60_000.0, 400, 100.0);
        let mut lat = Vec::new();
        for m in [1usize, 5, 20] {
            let t = PhysicalTuning { parallelism: m, cache_fraction: 0.35, straggler_mitigation: false };
            let mut rng = rng_from_seed(2);
            lat.push(simulate_job(&work, &t, &c, &mut rng));
        }
        assert!(lat[0] > lat[1] && lat[1] > lat[2], "{lat:?}");
    }

    #[test]
    fn stream_heavy_piggyback_pays_for_parallelism() {
        // A consolidated diagnostic pass: moderate CPU, 300 result streams.
        let c = no_straggle(cfg());
        let job = Job::cpu_only(2_000.0, 200).with_streams(300).piggyback();
        let lat_at = |m: usize| {
            let t = PhysicalTuning { parallelism: m, cache_fraction: 0.35, straggler_mitigation: false };
            let mut rng = rng_from_seed(3);
            simulate_job(&job, &t, &c, &mut rng)
        };
        // The many-to-one term makes 100 machines worse than 20 for this
        // shape (Fig. 8(c)'s rising tail).
        assert!(lat_at(100) > lat_at(20), "100: {} vs 20: {}", lat_at(100), lat_at(20));
    }

    #[test]
    fn driver_serialization_scales_with_task_count() {
        let c = no_straggle(cfg());
        let t = PhysicalTuning { parallelism: 100, cache_fraction: 1.0, straggler_mitigation: false };
        let many = Job { tasks: vec![Task::cpu(1.0); 10_000], intermediate_mb: 0.0, result_streams: 1, piggyback: false };
        let few = Job { tasks: vec![Task::cpu(1.0); 10], intermediate_mb: 0.0, result_streams: 1, piggyback: false };
        let mut rng = rng_from_seed(3);
        let t_many = simulate_job(&many, &t, &c, &mut rng);
        let t_few = simulate_job(&few, &t, &c, &mut rng);
        assert!(t_many > 10.0 * t_few, "many {t_many} few {t_few}");
        // At least the serial driver cost.
        assert!(t_many > 10_000.0 * c.driver_result_ms_per_task / 1000.0);
    }

    #[test]
    fn piggyback_skips_serial_costs() {
        let c = no_straggle(cfg());
        let t = PhysicalTuning { parallelism: 100, cache_fraction: 1.0, straggler_mitigation: false };
        let normal = Job::cpu_only(10.0, 200);
        let pig = Job::cpu_only(10.0, 200).piggyback();
        let mut rng = rng_from_seed(4);
        let tn = simulate_job(&normal, &t, &c, &mut rng);
        let tp = simulate_job(&pig, &t, &c, &mut rng);
        assert!(tp < tn * 0.5, "piggyback {tp} vs normal {tn}");
    }

    #[test]
    fn caching_exhibits_u_shape() {
        let c = no_straggle(cfg());
        let job = Job::split(20_000.0, 40_000.0, 313, 800.0);
        let lat_at = |frac: f64| {
            let t = PhysicalTuning { parallelism: 20, cache_fraction: frac, straggler_mitigation: false };
            let mut rng = rng_from_seed(5);
            simulate_job(&job, &t, &c, &mut rng)
        };
        let l0 = lat_at(0.0);
        let l40 = lat_at(0.4);
        let l100 = lat_at(1.0);
        assert!(l40 < l0, "l40 {l40} vs l0 {l0}");
        assert!(l40 < l100, "l40 {l40} vs l100 {l100}");
    }

    #[test]
    fn straggler_mitigation_reduces_tail_latency() {
        let mut c = cfg();
        c.straggler_prob = 0.2;
        let job = Job::split(5_000.0, 5_000.0, 200, 10.0);
        let avg = |mitigate: bool| {
            let t = PhysicalTuning { parallelism: 100, cache_fraction: 0.35, straggler_mitigation: mitigate };
            let mut total = 0.0;
            for s in 0..30 {
                let mut rng = rng_from_seed(100 + s);
                total += simulate_job(&job, &t, &c, &mut rng);
            }
            total / 30.0
        };
        let with = avg(true);
        let without = avg(false);
        assert!(with < without, "with {with} vs without {without}");
    }

    #[test]
    fn subquery_sequences_pay_serial_and_barrier_costs() {
        let c = no_straggle(cfg());
        let t = PhysicalTuning { parallelism: 100, cache_fraction: 1.0, straggler_mitigation: false };
        // 1000 single-task subqueries.
        let tiny = Job::cpu_only(1.0, 1);
        let jobs: Vec<Job> = vec![tiny; 1000];
        let total = simulate_jobs(&jobs, &t, &c, SeedStream::new(5));
        let serial_floor =
            1000.0 * (c.dispatch_ms_per_task + c.driver_result_ms_per_task) / 1000.0;
        assert!(total > serial_floor, "total {total} vs floor {serial_floor}");
        // Multi-task jobs pay full barriers.
        let multi = Job::cpu_only(10.0, 8);
        let jobs: Vec<Job> = vec![multi; 100];
        let total_multi = simulate_jobs(&jobs, &t, &c, SeedStream::new(6));
        assert!(total_multi > 100.0 * c.reduce_base_ms / 1000.0);
    }

    #[test]
    fn sequence_model_is_deterministic() {
        let jobs = vec![Job::split(100.0, 100.0, 4, 1.0); 20];
        let t = PhysicalTuning::tuned();
        let a = simulate_jobs(&jobs, &t, &cfg(), SeedStream::new(7));
        let b = simulate_jobs(&jobs, &t, &cfg(), SeedStream::new(8));
        assert_eq!(a, b); // seeds don't matter: analytic model
    }

    #[test]
    fn scan_time_decreases_with_cache_fraction() {
        let c = no_straggle(cfg());
        let job = Job::split(10_000.0, 0.0, 100, 0.0);
        let mut last = f64::MAX;
        for step in 0..=10 {
            let f = step as f64 / 10.0;
            let t = PhysicalTuning { parallelism: 100, cache_fraction: f, straggler_mitigation: false };
            let mut rng = rng_from_seed(9);
            let lat = simulate_job(&job, &t, &c, &mut rng);
            assert!(lat <= last + 1e-9, "scan-only latency rose at f={f}: {lat} > {last}");
            last = lat;
        }
    }

    #[test]
    fn latency_monotone_in_cpu_work() {
        let c = no_straggle(cfg());
        let t = PhysicalTuning::tuned();
        let mut last = 0.0;
        for cpu in [0.0, 1_000.0, 10_000.0, 100_000.0] {
            let job = Job::split(1_000.0, cpu, 64, 0.0);
            let mut rng = rng_from_seed(10);
            let lat = simulate_job(&job, &t, &c, &mut rng);
            assert!(lat >= last, "latency fell as cpu grew: {lat} < {last}");
            last = lat;
        }
    }

    #[test]
    fn pathological_straggler_mult_never_shrinks_latency() {
        // Regression: extreme or non-finite slowdown factors used to push
        // the lognormal mean to -inf/NaN, letting a straggler's busy span
        // end before it starts. The clamp keeps every draw ≥ the
        // fault-free time and every latency finite.
        let job = Job::split(1_000.0, 1_000.0, 64, 10.0);
        let t = PhysicalTuning { parallelism: 20, cache_fraction: 0.35, straggler_mitigation: false };
        let baseline = {
            let mut c = cfg();
            c.straggler_prob = 0.0;
            let mut rng = rng_from_seed(11);
            simulate_job(&job, &t, &c, &mut rng)
        };
        for mult in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 0.0, -3.0, 0.25, 1e308] {
            let mut c = cfg();
            c.straggler_prob = 1.0;
            c.straggler_mean_mult = mult;
            let mut rng = rng_from_seed(11);
            let lat = simulate_job(&job, &t, &c, &mut rng);
            assert!(lat.is_finite(), "non-finite latency for mult {mult}");
            assert!(
                lat >= baseline - 1e-9,
                "straggling finished before fault-free for mult {mult}: {lat} < {baseline}"
            );
            let e = expected_straggle(&c);
            assert!(e.is_finite() && e >= 1.0, "expected straggle {e} for mult {mult}");
        }
    }

    #[test]
    fn faulty_job_is_deterministic_and_never_faster() {
        let job = Job::split(1_000.0, 1_000.0, 64, 10.0);
        let t = PhysicalTuning::tuned();
        let c = no_straggle(cfg());
        let mut faults = aqp_faults::FaultConfig::quiescent(3);
        faults.transient_error_prob = 0.3;
        faults.straggler_prob = 0.2;
        let run = || {
            let mut rng = rng_from_seed(12);
            simulate_job_faulty(&job, &t, &c, &faults, &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seeds must give bit-identical outcomes");
        let clean = {
            let mut rng = rng_from_seed(12);
            simulate_job(&job, &t, &c, &mut rng)
        };
        assert!(a.latency_s >= clean, "faults made the job faster: {} < {clean}", a.latency_s);
        assert!(a.retries > 0, "transient errors should force retries");
    }

    #[test]
    fn quiescent_faults_add_nothing() {
        let job = Job::split(500.0, 500.0, 32, 5.0);
        let t = PhysicalTuning::tuned();
        let c = no_straggle(cfg());
        let faults = aqp_faults::FaultConfig::quiescent(9);
        let out = {
            let mut rng = rng_from_seed(13);
            simulate_job_faulty(&job, &t, &c, &faults, &mut rng)
        };
        let clean = {
            let mut rng = rng_from_seed(13);
            simulate_job(&job, &t, &c, &mut rng)
        };
        assert_eq!(out.latency_s, clean);
        assert_eq!(out.lost_tasks, 0);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn unrecoverable_deaths_lose_every_task() {
        let job = Job::split(500.0, 500.0, 32, 5.0);
        let t = PhysicalTuning::tuned();
        let c = no_straggle(cfg());
        let mut faults = aqp_faults::FaultConfig::quiescent(4);
        faults.worker_death_prob = 1.0;
        faults.recovery.max_retries = 0;
        let out = {
            let mut rng = rng_from_seed(14);
            simulate_job_faulty(&job, &t, &c, &faults, &mut rng)
        };
        assert_eq!(out.lost_tasks, job.num_tasks());
    }

    #[test]
    fn determinism_under_seed() {
        let job = Job::split(1_000.0, 1_000.0, 64, 10.0);
        let t = PhysicalTuning::tuned();
        let a = {
            let mut rng = rng_from_seed(7);
            simulate_job(&job, &t, &cfg(), &mut rng)
        };
        let b = {
            let mut rng = rng_from_seed(7);
            simulate_job(&job, &t, &cfg(), &mut rng)
        };
        assert_eq!(a, b);
    }
}

//! Cluster and tuning parameters.

use serde::{Deserialize, Serialize};

/// Static cluster parameters, calibrated to the paper's deployment
/// (100 × EC2 m1.large — 2 cores, 7.5 GB RAM — with 600 GB of aggregate
/// RAM cache over a multi-hundred-GB collection of stored samples, §7).
///
/// Calibration targets the *shapes* of Figs. 7–9 (speedup bands, the
/// ~20-machine parallelism sweet spot, the 30–40% cache optimum), not
/// absolute EC2 seconds; see DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Machines in the cluster.
    pub machines: usize,
    /// Task slots per machine (cores).
    pub slots_per_machine: usize,
    /// Effective cold-scan bandwidth per slot (striped disks), MB/s.
    pub disk_mb_s: f64,
    /// In-memory scan bandwidth per slot, MB/s.
    pub mem_mb_s: f64,
    /// RAM usable per machine for caching + working memory, MB.
    pub ram_mb_per_machine: f64,
    /// Total size of the stored-sample collection eligible for caching,
    /// MB (the x-axis of Fig. 8(d) is the fraction of this that is
    /// cached).
    pub total_input_mb: f64,
    /// Execution (shuffle/aggregation-buffer/GC) memory demand per
    /// machine under the concurrent workload, MB. When input caching
    /// squeezes available RAM below this, execution spills (§6.2).
    pub exec_mem_demand_mb: f64,
    /// Fixed per-task launch overhead (JVM/task setup), ms.
    pub task_overhead_ms: f64,
    /// Serial scheduler dispatch cost per task, ms (the §5.2 contention
    /// term: thousands of subquery tasks serialize here).
    pub dispatch_ms_per_task: f64,
    /// Serial driver-side result-handling cost per task, ms (task results
    /// funnel through one driver).
    pub driver_result_ms_per_task: f64,
    /// Many-to-one aggregation cost per task result, ms.
    pub reduce_ms_per_task: f64,
    /// Fixed reduce phase base cost, ms.
    pub reduce_base_ms: f64,
    /// Per-(machine × result-stream) many-to-one communication cost, ms
    /// (§6.1: "increased many-to-one communication overhead during the
    /// final aggregation phase" — grows with the degree of parallelism).
    pub stream_result_ms: f64,
    /// Probability a task straggles (§6.3).
    pub straggler_prob: f64,
    /// Mean slowdown multiplier of a straggler (lognormal-distributed).
    pub straggler_mean_mult: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            machines: 100,
            slots_per_machine: 2,
            disk_mb_s: 300.0,
            mem_mb_s: 3_000.0,
            ram_mb_per_machine: 6_000.0,
            total_input_mb: 600_000.0,
            exec_mem_demand_mb: 3_600.0,
            task_overhead_ms: 35.0,
            dispatch_ms_per_task: 0.2,
            driver_result_ms_per_task: 2.0,
            reduce_ms_per_task: 0.1,
            reduce_base_ms: 50.0,
            stream_result_ms: 0.1,
            straggler_prob: 0.03,
            straggler_mean_mult: 3.0,
        }
    }
}

/// The §6 physical knobs swept in Fig. 8(c)–(f).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicalTuning {
    /// Degree of parallelism: machines actually used (≤ config.machines).
    pub parallelism: usize,
    /// Fraction of the stored samples kept in the RAM cache (0–1). RAM
    /// not used for input caching is working memory for execution.
    pub cache_fraction: f64,
    /// Spawn 10% clone tasks and skip the slowest stragglers (§6.3).
    pub straggler_mitigation: bool,
}

impl PhysicalTuning {
    /// The untuned default the §5.3 experiments run with: all machines,
    /// everything cached, no mitigation.
    pub fn untuned(cfg: &ClusterConfig) -> Self {
        PhysicalTuning {
            parallelism: cfg.machines,
            cache_fraction: 1.0,
            straggler_mitigation: false,
        }
    }

    /// The §7.3 tuned settings: ~20 machines, 35% input cache, straggler
    /// clones on.
    pub fn tuned() -> Self {
        PhysicalTuning { parallelism: 20, cache_fraction: 0.35, straggler_mitigation: true }
    }
}

impl ClusterConfig {
    /// Total task slots at a given parallelism.
    pub fn slots(&self, parallelism: usize) -> usize {
        parallelism.min(self.machines).max(1) * self.slots_per_machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = ClusterConfig::default();
        assert_eq!(c.machines, 100);
        assert_eq!(c.slots_per_machine, 2);
        assert!(c.mem_mb_s > c.disk_mb_s);
        // Aggregate RAM ≈ 600 GB as in §7.
        assert!((c.ram_mb_per_machine * c.machines as f64 - 600_000.0).abs() < 1.0);
    }

    #[test]
    fn slots_respect_bounds() {
        let c = ClusterConfig::default();
        assert_eq!(c.slots(20), 40);
        assert_eq!(c.slots(1_000), 200); // capped at cluster size
        assert_eq!(c.slots(0), 2); // at least one machine
    }

    #[test]
    fn tuned_settings() {
        let t = PhysicalTuning::tuned();
        assert_eq!(t.parallelism, 20);
        assert!(t.cache_fraction > 0.3 && t.cache_fraction < 0.4);
        assert!(t.straggler_mitigation);
    }
}

//! The concurrent catalog of tables and their sample sets.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StorageError;
use crate::sample::SampleSet;
use crate::table::Table;
use crate::Result;

/// A thread-safe registry mapping table names to tables and sample sets.
///
/// Cloning a `Catalog` clones a handle to the same underlying registry
/// (like the metastore the paper's subqueries contend on in §5.3.1).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<CatalogInner>>,
}

#[derive(Debug, Default)]
struct CatalogInner {
    tables: HashMap<String, Arc<Table>>,
    samples: HashMap<String, SampleSet>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table. Fails if the name is taken.
    pub fn register_table(&self, table: Table) -> Result<()> {
        let mut inner = self.inner.write();
        let name = table.name().to_owned();
        if inner.tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        inner.tables.insert(name.clone(), Arc::new(table));
        inner.samples.entry(name).or_default();
        Ok(())
    }

    /// Replace or insert a table unconditionally.
    pub fn put_table(&self, table: Table) {
        let mut inner = self.inner.write();
        let name = table.name().to_owned();
        inner.tables.insert(name.clone(), Arc::new(table));
        inner.samples.entry(name).or_default();
    }

    /// Fetch a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.inner
            .read()
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    /// True if a table with this name is registered.
    pub fn has_table(&self, name: &str) -> bool {
        self.inner.read().tables.contains_key(name)
    }

    /// Names of all registered tables, sorted so callers (and anything
    /// they export) see a stable order regardless of hash seeding.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Mutate the sample set of `table` through `f`.
    pub fn with_samples_mut<T>(
        &self,
        table: &str,
        f: impl FnOnce(&mut SampleSet) -> Result<T>,
    ) -> Result<T> {
        let mut inner = self.inner.write();
        if !inner.tables.contains_key(table) {
            return Err(StorageError::TableNotFound(table.to_owned()));
        }
        let set = inner.samples.entry(table.to_owned()).or_default();
        f(set)
    }

    /// Read the sample set of `table` through `f`.
    pub fn with_samples<T>(
        &self,
        table: &str,
        f: impl FnOnce(&SampleSet) -> Result<T>,
    ) -> Result<T> {
        let inner = self.inner.read();
        let set = inner
            .samples
            .get(table)
            .ok_or_else(|| StorageError::TableNotFound(table.to_owned()))?;
        f(set)
    }

    /// Drop a table and its samples.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.write();
        inner
            .tables
            .remove(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))?;
        inner.samples.remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use crate::column::Column;
    use crate::sample::SamplingStrategy;
    use crate::schema::{DataType, Field, Schema};

    fn tiny(name: &str) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let batch = Batch::new(schema, vec![Column::from_i64s(vec![1, 2, 3])]).unwrap();
        Table::from_batch(name, batch, 1).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let cat = Catalog::new();
        cat.register_table(tiny("a")).unwrap();
        assert!(cat.has_table("a"));
        assert_eq!(cat.table("a").unwrap().num_rows(), 3);
        assert!(cat.table("b").is_err());
    }

    #[test]
    fn duplicate_registration_fails_but_put_overwrites() {
        let cat = Catalog::new();
        cat.register_table(tiny("a")).unwrap();
        assert!(cat.register_table(tiny("a")).is_err());
        cat.put_table(tiny("a")); // silently replaces
        assert!(cat.has_table("a"));
    }

    #[test]
    fn sample_sets_follow_tables() {
        let cat = Catalog::new();
        cat.register_table(tiny("a")).unwrap();
        let t = cat.table("a").unwrap();
        cat.with_samples_mut("a", |set| {
            set.add_from_indices(&t, &[0, 2], SamplingStrategy::WithReplacement, 1, 1)?;
            Ok(())
        })
        .unwrap();
        let n = cat
            .with_samples("a", |set| Ok(set.best_for(1)?.meta.rows))
            .unwrap();
        assert_eq!(n, 2);
        cat.drop_table("a").unwrap();
        assert!(cat.with_samples("a", |_| Ok(())).is_err());
    }

    #[test]
    fn catalog_clones_share_state() {
        let cat = Catalog::new();
        let cat2 = cat.clone();
        cat.register_table(tiny("shared")).unwrap();
        assert!(cat2.has_table("shared"));
    }

    #[test]
    fn concurrent_access() {
        let cat = Catalog::new();
        cat.register_table(tiny("t")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = cat.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(c.table("t").unwrap().num_rows(), 3);
                    }
                });
            }
        });
    }
}

//! A small CSV loader: schema inference + typed ingestion.
//!
//! Lets downstream users point the engine at their own data without any
//! extra dependencies. Supports RFC-4180-style quoting (double quotes,
//! `""` escapes), a header row, and per-column type inference over the
//! scanned values (Int ⊂ Float ⊂ Str; empty fields are NULL).

use std::io::BufRead;

use crate::batch::Batch;
use crate::column::Column;
use crate::error::StorageError;
use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::Result;

/// Split one CSV record into fields (RFC-4180 quoting).
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// The narrowest type covering all observed values of a column.
fn infer_type(values: &[Vec<String>], col: usize) -> DataType {
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    let mut saw_value = false;
    for row in values {
        let v = row.get(col).map(String::as_str).unwrap_or("");
        if v.is_empty() {
            continue;
        }
        saw_value = true;
        if v.parse::<i64>().is_err() {
            all_int = false;
        }
        if v.parse::<f64>().is_err() {
            all_float = false;
        }
        if !matches!(v.to_ascii_lowercase().as_str(), "true" | "false") {
            all_bool = false;
        }
        if !all_int && !all_float && !all_bool {
            return DataType::Str;
        }
    }
    if !saw_value {
        // All-NULL column: default to Float (numeric NULLs).
        return DataType::Float;
    }
    if all_bool {
        DataType::Bool
    } else if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else {
        DataType::Str
    }
}

/// Read a CSV (with header) from any reader into a [`Table`].
pub fn read_csv<R: BufRead>(
    reader: R,
    table_name: &str,
    partitions: usize,
) -> Result<Table> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| StorageError::InvalidArgument("empty CSV: no header".into()))?
        .map_err(|e| StorageError::InvalidArgument(format!("io error: {e}")))?;
    let names = split_record(&header);
    if names.iter().any(|n| n.trim().is_empty()) {
        return Err(StorageError::InvalidArgument("blank column name in header".into()));
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line.map_err(|e| StorageError::InvalidArgument(format!("io error: {e}")))?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line);
        if fields.len() != names.len() {
            return Err(StorageError::InvalidArgument(format!(
                "row {} has {} fields, header has {}",
                i + 2,
                fields.len(),
                names.len()
            )));
        }
        rows.push(fields);
    }

    let mut schema_fields = Vec::with_capacity(names.len());
    let mut columns = Vec::with_capacity(names.len());
    for (ci, name) in names.iter().enumerate() {
        let dt = infer_type(&rows, ci);
        let has_nulls = rows.iter().any(|r| r[ci].is_empty());
        schema_fields.push(if has_nulls {
            Field::nullable(name.trim(), dt)
        } else {
            Field::new(name.trim(), dt)
        });
        let col = match dt {
            DataType::Int => Column::from_opt_i64s(
                rows.iter()
                    .map(|r| if r[ci].is_empty() { None } else { r[ci].parse().ok() })
                    .collect(),
            ),
            DataType::Float => Column::from_opt_f64s(
                rows.iter()
                    .map(|r| if r[ci].is_empty() { None } else { r[ci].parse().ok() })
                    .collect(),
            ),
            DataType::Bool => {
                // Bool columns with NULLs degrade to per-value parsing via
                // the float path being unavailable; encode directly.
                let vals: Vec<bool> = rows
                    .iter()
                    .map(|r| r[ci].eq_ignore_ascii_case("true"))
                    .collect();
                if has_nulls {
                    let mask: Vec<bool> = rows.iter().map(|r| !r[ci].is_empty()).collect();
                    Column::Bool { values: vals, validity: Some(mask) }
                } else {
                    Column::from_bools(vals)
                }
            }
            DataType::Str => {
                // Empty string = NULL for string columns too.
                let strs: Vec<&str> = rows.iter().map(|r| r[ci].as_str()).collect();
                if has_nulls {
                    match Column::from_strs(&strs) {
                        Column::Str { dict, codes, .. } => {
                            let mask: Vec<bool> =
                                rows.iter().map(|r| !r[ci].is_empty()).collect();
                            Column::Str { dict, codes, validity: Some(mask) }
                        }
                        // from_strs only builds Str; keep the column as-is
                        // (without a validity mask) if that ever changes.
                        other => other,
                    }
                } else {
                    Column::from_strs(&strs)
                }
            }
        };
        columns.push(col);
    }

    let schema = Schema::new(schema_fields)?;
    let batch = Batch::new(schema, columns)?;
    Table::from_batch(table_name, batch, partitions.max(1))
}

/// Read a CSV file from disk.
pub fn read_csv_file(
    path: impl AsRef<std::path::Path>,
    table_name: &str,
    partitions: usize,
) -> Result<Table> {
    let file = std::fs::File::open(path)
        .map_err(|e| StorageError::InvalidArgument(format!("open: {e}")))?;
    read_csv(std::io::BufReader::new(file), table_name, partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn load(s: &str) -> Table {
        read_csv(std::io::Cursor::new(s), "t", 2).unwrap()
    }

    #[test]
    fn infers_types_from_values() {
        let t = load("id,score,name,active\n1,2.5,alice,true\n2,3.5,bob,false\n");
        let s = t.schema();
        assert_eq!(s.field("id").unwrap().data_type, DataType::Int);
        assert_eq!(s.field("score").unwrap().data_type, DataType::Float);
        assert_eq!(s.field("name").unwrap().data_type, DataType::Str);
        assert_eq!(s.field("active").unwrap().data_type, DataType::Bool);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn ints_promote_to_float_when_mixed() {
        let t = load("x\n1\n2.5\n");
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Float);
    }

    #[test]
    fn empty_fields_become_nulls() {
        let t = load("x,y\n1,\n,b\n");
        let b = t.to_batch().unwrap();
        assert!(b.column_by_name("y").unwrap().is_null(0));
        assert!(b.column_by_name("x").unwrap().is_null(1));
        assert!(t.schema().field("x").unwrap().nullable);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let t = load("a,b\n\"hello, world\",\"she said \"\"hi\"\"\"\n");
        let b = t.to_batch().unwrap();
        assert_eq!(b.row(0).unwrap()[0], Value::Str("hello, world".into()));
        assert_eq!(b.row(0).unwrap()[1], Value::Str("she said \"hi\"".into()));
    }

    #[test]
    fn ragged_rows_rejected() {
        let r = read_csv(std::io::Cursor::new("a,b\n1\n"), "t", 1);
        assert!(r.is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv(std::io::Cursor::new(""), "t", 1).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let t = load("x\n1\n\n2\n");
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn loaded_table_queries_end_to_end() {
        // Round-trip through the stack: CSV → table → SQL.
        let csv = {
            let mut s = String::from("city,amount\n");
            for i in 0..2000 {
                s.push_str(&format!("{},{}\n", if i % 3 == 0 { "NYC" } else { "SF" }, i));
            }
            s
        };
        let t = load(&csv);
        assert_eq!(t.num_rows(), 2000);
        assert_eq!(t.schema().field("amount").unwrap().data_type, DataType::Int);
    }
}

//! Samples and sample sets.
//!
//! BlinkDB "precomputes and maintains a carefully chosen collection of
//! samples of input data \[and\] selects the best sample(s) at runtime for
//! answering each query" (§6). A [`SampleSet`] is that collection for one
//! table: uniform random samples at several sizes, stored *shuffled* so
//! that any contiguous row range of a sample is itself a uniform random
//! sample — the property the diagnostic's disjoint partitioning (§4) and
//! the executor's task splitting (§6.1) both rely on.
//!
//! This module stores and selects samples; *drawing* them (the random
//! index generation) is the job of `aqp-stats`, keeping this crate free of
//! RNG dependencies. Callers pass precomputed row indices to
//! [`SampleSet::add_from_indices`].

use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::table::Table;
use crate::Result;

/// How a sample was drawn from its source table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Simple random sampling with replacement (the paper's default model).
    WithReplacement,
    /// Simple random sampling without replacement (footnote 2: "slightly
    /// more accurate sample estimates").
    WithoutReplacement,
    /// Stratified sampling on a column: a per-stratum uniform sample with
    /// its own sampling rate (BlinkDB's mechanism for keeping rare groups
    /// answerable — "a carefully chosen collection of samples", §6).
    Stratified,
}

/// Per-stratum accounting of a stratified sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratumMeta {
    /// The stratum key (rendered value of the strata column).
    pub key: String,
    /// Rows of this stratum in the sample.
    pub sample_rows: usize,
    /// Rows of this stratum in the source table.
    pub population_rows: usize,
}

/// The strata layout of a stratified sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Strata {
    /// The column the sample is stratified on.
    pub column: String,
    /// Per-stratum sizes, every stratum of the source table present.
    pub groups: Vec<StratumMeta>,
}

impl Strata {
    /// Look up a stratum's (sample_rows, population_rows) by key.
    pub fn sizes_for(&self, key: &str) -> Option<(usize, usize)> {
        self.groups
            .iter()
            .find(|g| g.key == key)
            .map(|g| (g.sample_rows, g.population_rows))
    }
}

/// Metadata describing one stored sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleMeta {
    /// Name of the source table.
    pub source_table: String,
    /// Number of rows in the sample.
    pub rows: usize,
    /// Number of rows in the source table when sampled.
    pub source_rows: usize,
    /// The strategy used.
    pub strategy: SamplingStrategy,
    /// Seed the sampler used (for reproducibility/auditing).
    pub seed: u64,
    /// Strata layout, present only for stratified samples.
    pub strata: Option<Strata>,
}

impl SampleMeta {
    /// `rows / source_rows` — the sampling fraction.
    pub fn fraction(&self) -> f64 {
        if self.source_rows == 0 {
            0.0
        } else {
            self.rows as f64 / self.source_rows as f64
        }
    }

    /// Scale factor to unbias SUM/COUNT-style aggregates computed on the
    /// sample (footnote 3: the sample sum times `|D|/|S|`).
    pub fn scale_factor(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.source_rows as f64 / self.rows as f64
        }
    }
}

/// One stored sample: its metadata plus the sampled rows as a table.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Descriptive metadata.
    pub meta: SampleMeta,
    /// The sampled rows (already shuffled).
    pub data: Table,
}

/// The collection of samples maintained for one source table, ordered by
/// increasing size.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<Sample>,
}

impl SampleSet {
    /// An empty sample set.
    pub fn new() -> Self {
        SampleSet { samples: Vec::new() }
    }

    /// Materialize a sample of `source` at the given row `indices`
    /// (typically a random multiset produced by `aqp-stats`), registering
    /// it in the set. `indices` order defines the stored row order, so
    /// callers must pass them pre-shuffled.
    pub fn add_from_indices(
        &mut self,
        source: &Table,
        indices: &[usize],
        strategy: SamplingStrategy,
        seed: u64,
        num_partitions: usize,
    ) -> Result<&Sample> {
        let full = source.to_batch()?;
        let batch = full.gather(indices)?;
        let name = format!("{}__sample_{}", source.name(), indices.len());
        let data = Table::from_batch(name, batch, num_partitions)?;
        let meta = SampleMeta {
            source_table: source.name().to_owned(),
            rows: indices.len(),
            source_rows: source.num_rows(),
            strategy,
            seed,
            strata: None,
        };
        self.samples.push(Sample { meta, data });
        self.samples.sort_by_key(|s| s.meta.rows);
        // Return the sample we just inserted (unique by row count ties are
        // fine: we return the first with this size & seed).
        Ok(self
            .samples
            .iter()
            .find(|s| s.meta.seed == seed && s.meta.rows == indices.len())
            .expect("just inserted"))
    }

    /// All samples, smallest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// BlinkDB-style runtime selection: the *smallest* stored sample with
    /// at least `min_rows` rows (smallest = cheapest that satisfies the
    /// error budget).
    pub fn best_for(&self, min_rows: usize) -> Result<&Sample> {
        self.samples
            .iter()
            .filter(|s| s.meta.strata.is_none())
            .find(|s| s.meta.rows >= min_rows)
            .ok_or_else(|| StorageError::SampleNotFound {
                table: self
                    .samples
                    .first()
                    .map(|s| s.meta.source_table.clone())
                    .unwrap_or_default(),
                min_rows,
            })
    }

    /// The largest stored *uniform* sample, if any.
    pub fn largest(&self) -> Option<&Sample> {
        self.samples.iter().rev().find(|s| s.meta.strata.is_none())
    }

    /// Materialize a *stratified* sample from precomputed row indices and
    /// strata accounting. Kept separate from [`Self::add_from_indices`]
    /// because stratified samples are selected by strata column, not by
    /// row count.
    pub fn add_stratified(
        &mut self,
        source: &Table,
        indices: &[usize],
        strata: Strata,
        seed: u64,
        num_partitions: usize,
    ) -> Result<&Sample> {
        let full = source.to_batch()?;
        let batch = full.gather(indices)?;
        let name = format!("{}__stratified_{}", source.name(), strata.column);
        let data = Table::from_batch(name, batch, num_partitions)?;
        let meta = SampleMeta {
            source_table: source.name().to_owned(),
            rows: indices.len(),
            source_rows: source.num_rows(),
            strategy: SamplingStrategy::Stratified,
            seed,
            strata: Some(strata),
        };
        self.samples.push(Sample { meta, data });
        self.samples.sort_by_key(|s| s.meta.rows);
        Ok(self
            .samples
            .iter()
            .find(|s| s.meta.seed == seed && matches!(s.meta.strategy, SamplingStrategy::Stratified))
            .expect("just inserted"))
    }

    /// The stratified sample on `column`, if one exists.
    pub fn stratified_on(&self, column: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            s.meta
                .strata
                .as_ref()
                .map(|st| st.column == column)
                .unwrap_or(false)
        })
    }

    /// Uniform (non-stratified) samples only, smallest first.
    pub fn uniform_samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(|s| s.meta.strata.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use crate::column::Column;
    use crate::schema::{DataType, Field, Schema};

    fn source(rows: usize) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let batch =
            Batch::new(schema, vec![Column::from_i64s((0..rows as i64).collect())]).unwrap();
        Table::from_batch("events", batch, 4).unwrap()
    }

    #[test]
    fn fraction_and_scale() {
        let m = SampleMeta {
            source_table: "t".into(),
            rows: 100,
            source_rows: 1000,
            strategy: SamplingStrategy::WithReplacement,
            seed: 0,
            strata: None,
        };
        assert!((m.fraction() - 0.1).abs() < 1e-12);
        assert!((m.scale_factor() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn add_and_select_best() {
        let src = source(100);
        let mut set = SampleSet::new();
        set.add_from_indices(&src, &[5, 1, 9, 3], SamplingStrategy::WithReplacement, 7, 1)
            .unwrap();
        set.add_from_indices(
            &src,
            &(0..50).collect::<Vec<_>>(),
            SamplingStrategy::WithoutReplacement,
            8,
            2,
        )
        .unwrap();

        // Smallest sample satisfying the bound is chosen.
        let s = set.best_for(3).unwrap();
        assert_eq!(s.meta.rows, 4);
        let s = set.best_for(10).unwrap();
        assert_eq!(s.meta.rows, 50);
        assert!(set.best_for(51).is_err());
        assert_eq!(set.largest().unwrap().meta.rows, 50);
    }

    #[test]
    fn stratified_samples_are_separate_from_uniform_selection() {
        let src = source(100);
        let mut set = SampleSet::new();
        set.add_from_indices(&src, &(0..20).collect::<Vec<_>>(), SamplingStrategy::WithoutReplacement, 1, 1)
            .unwrap();
        let strata = Strata {
            column: "x".into(),
            groups: vec![StratumMeta { key: "0".into(), sample_rows: 3, population_rows: 50 }],
        };
        set.add_stratified(&src, &[0, 1, 2], strata, 9, 1).unwrap();
        // Uniform selection never returns the stratified sample.
        assert_eq!(set.best_for(1).unwrap().meta.rows, 20);
        assert!(set.best_for(21).is_err());
        assert_eq!(set.largest().unwrap().meta.rows, 20);
        // Strata lookup works.
        let st = set.stratified_on("x").unwrap();
        assert_eq!(st.meta.rows, 3);
        assert_eq!(st.meta.strata.as_ref().unwrap().sizes_for("0"), Some((3, 50)));
        assert_eq!(st.meta.strata.as_ref().unwrap().sizes_for("nope"), None);
        assert!(set.stratified_on("y").is_none());
        assert_eq!(set.uniform_samples().count(), 1);
    }

    #[test]
    fn sample_preserves_index_order() {
        let src = source(10);
        let mut set = SampleSet::new();
        let s = set
            .add_from_indices(&src, &[9, 0, 9], SamplingStrategy::WithReplacement, 1, 1)
            .unwrap();
        let xs = s.data.to_batch().unwrap().column(0).to_f64_vec();
        assert_eq!(xs, vec![9.0, 0.0, 9.0]);
    }
}

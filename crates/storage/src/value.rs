//! Dynamically-typed scalar values.
//!
//! Used at the edges of the system (literals in SQL expressions, row
//! extraction for tests and result rendering). The hot path operates on
//! typed columns, never on `Value`s.

use std::cmp::Ordering;
use std::fmt;

use crate::schema::DataType;

/// A single dynamically-typed scalar, possibly null.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The [`DataType`] this value inhabits, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value: ints and bools coerce to f64.
    ///
    /// Returns `None` for NULL and strings. This is the coercion used by
    /// aggregate inputs, matching the paper's setting where every query
    /// aggregates a real-valued expression.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Null | Value::Str(_) => None,
        }
    }

    /// Boolean view, used by filter predicates (SQL three-valued logic:
    /// NULL is "unknown" and filters drop the row).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Null => None,
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            Value::Str(_) => None,
        }
    }

    /// String view (no coercion).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison. NULL compares as unknown (`None`); numeric types
    /// compare after f64 coercion; strings compare lexicographically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(1.5)), Some(Ordering::Less));
    }

    #[test]
    fn string_compare_lexicographic() {
        assert_eq!(
            Value::Str("NYC".into()).sql_cmp(&Value::Str("SF".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn display_round_trip_for_ints() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("a"), Value::Str("a".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}

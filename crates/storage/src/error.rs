//! Storage-layer error type.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A referenced column does not exist in the schema.
    ColumnNotFound(String),
    /// A referenced table does not exist in the catalog.
    TableNotFound(String),
    /// A table with this name is already registered.
    TableExists(String),
    /// Columns of a batch have differing lengths.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Actual number of rows found in the offending column.
        actual: usize,
    },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        /// The declared type.
        expected: String,
        /// The offending value's type.
        actual: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        index: usize,
        /// Number of rows available.
        len: usize,
    },
    /// Schemas were expected to be identical but differ.
    SchemaMismatch(String),
    /// A sample was requested that the catalog does not hold.
    SampleNotFound {
        /// Table the sample was requested for.
        table: String,
        /// Requested minimum number of rows.
        min_rows: usize,
    },
    /// Generic invalid-argument error.
    InvalidArgument(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            StorageError::TableNotFound(name) => write!(f, "table not found: {name}"),
            StorageError::TableExists(name) => write!(f, "table already exists: {name}"),
            StorageError::LengthMismatch { expected, actual } => {
                write!(f, "column length mismatch: expected {expected}, got {actual}")
            }
            StorageError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            StorageError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for length {len}")
            }
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::SampleNotFound { table, min_rows } => {
                write!(f, "no sample of table {table} with at least {min_rows} rows")
            }
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::ColumnNotFound("city".into());
        assert!(e.to_string().contains("city"));
        let e = StorageError::LengthMismatch { expected: 3, actual: 5 };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = StorageError::SampleNotFound { table: "t".into(), min_rows: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&StorageError::TableNotFound("x".into()));
    }
}

//! Typed, null-aware columns.
//!
//! Columns are the unit the physical operators work on. Numeric columns
//! are plain `Vec`s (the aggregate hot path iterates `&[f64]` / `&[i64]`
//! directly); string columns are dictionary-encoded so that GROUP BY and
//! equality filters compare `u32` codes instead of strings.

use crate::error::StorageError;
use crate::schema::DataType;
use crate::value::Value;
use crate::Result;

/// Optional validity mask; `None` means "all valid".
type Validity = Option<Vec<bool>>;

fn valid_at(v: &Validity, i: usize) -> bool {
    v.as_ref().is_none_or(|m| m[i])
}

/// A typed column of values with an optional null mask.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int {
        /// Values (unspecified at null positions).
        values: Vec<i64>,
        /// Validity mask; `None` = no nulls.
        validity: Validity,
    },
    /// 64-bit floats.
    Float {
        /// Values (unspecified at null positions).
        values: Vec<f64>,
        /// Validity mask; `None` = no nulls.
        validity: Validity,
    },
    /// Booleans.
    Bool {
        /// Values (unspecified at null positions).
        values: Vec<bool>,
        /// Validity mask; `None` = no nulls.
        validity: Validity,
    },
    /// Dictionary-encoded strings.
    Str {
        /// The dictionary of distinct strings.
        dict: Vec<String>,
        /// Per-row dictionary codes (unspecified at null positions).
        codes: Vec<u32>,
        /// Validity mask; `None` = no nulls.
        validity: Validity,
    },
}

impl Column {
    /// Build a non-null integer column.
    pub fn from_i64s(values: Vec<i64>) -> Self {
        Column::Int { values, validity: None }
    }

    /// Build a non-null float column.
    pub fn from_f64s(values: Vec<f64>) -> Self {
        Column::Float { values, validity: None }
    }

    /// Build a non-null boolean column.
    pub fn from_bools(values: Vec<bool>) -> Self {
        Column::Bool { values, validity: None }
    }

    /// Build a dictionary-encoded string column from string slices.
    pub fn from_strs<S: AsRef<str>>(values: &[S]) -> Self {
        let mut dict: Vec<String> = Vec::new();
        let mut index: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let s = v.as_ref();
            let code = match index.get(s) {
                Some(&c) => c,
                None => {
                    let c = dict.len() as u32;
                    dict.push(s.to_owned());
                    index.insert(s.to_owned(), c);
                    c
                }
            };
            codes.push(code);
        }
        Column::Str { dict, codes, validity: None }
    }

    /// Build a float column with nulls from `Option<f64>`s.
    pub fn from_opt_f64s(values: Vec<Option<f64>>) -> Self {
        let mut vals = Vec::with_capacity(values.len());
        let mut mask = Vec::with_capacity(values.len());
        let mut any_null = false;
        for v in values {
            match v {
                Some(x) => {
                    vals.push(x);
                    mask.push(true);
                }
                None => {
                    vals.push(0.0);
                    mask.push(false);
                    any_null = true;
                }
            }
        }
        Column::Float { values: vals, validity: if any_null { Some(mask) } else { None } }
    }

    /// Build an int column with nulls from `Option<i64>`s.
    pub fn from_opt_i64s(values: Vec<Option<i64>>) -> Self {
        let mut vals = Vec::with_capacity(values.len());
        let mut mask = Vec::with_capacity(values.len());
        let mut any_null = false;
        for v in values {
            match v {
                Some(x) => {
                    vals.push(x);
                    mask.push(true);
                }
                None => {
                    vals.push(0);
                    mask.push(false);
                    any_null = true;
                }
            }
        }
        Column::Int { values: vals, validity: if any_null { Some(mask) } else { None } }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { values, .. } => values.len(),
            Column::Float { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int { .. } => DataType::Int,
            Column::Float { .. } => DataType::Float,
            Column::Bool { .. } => DataType::Bool,
            Column::Str { .. } => DataType::Str,
        }
    }

    /// True iff row `i` is null.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int { validity, .. }
            | Column::Float { validity, .. }
            | Column::Bool { validity, .. }
            | Column::Str { validity, .. } => !valid_at(validity, i),
        }
    }

    /// True if the column contains at least one null.
    pub fn has_nulls(&self) -> bool {
        match self {
            Column::Int { validity, .. }
            | Column::Float { validity, .. }
            | Column::Bool { validity, .. }
            | Column::Str { validity, .. } => {
                validity.as_ref().is_some_and(|m| m.iter().any(|v| !v))
            }
        }
    }

    /// Dynamically-typed view of row `i`.
    pub fn value(&self, i: usize) -> Result<Value> {
        let len = self.len();
        if i >= len {
            return Err(StorageError::RowOutOfBounds { index: i, len });
        }
        if self.is_null(i) {
            return Ok(Value::Null);
        }
        Ok(match self {
            Column::Int { values, .. } => Value::Int(values[i]),
            Column::Float { values, .. } => Value::Float(values[i]),
            Column::Bool { values, .. } => Value::Bool(values[i]),
            Column::Str { dict, codes, .. } => Value::Str(dict[codes[i] as usize].clone()),
        })
    }

    /// Numeric view of row `i` (`None` for nulls and strings).
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        match self {
            Column::Int { values, .. } => Some(values[i] as f64),
            Column::Float { values, .. } => Some(values[i]),
            Column::Bool { values, .. } => Some(if values[i] { 1.0 } else { 0.0 }),
            Column::Str { .. } => None,
        }
    }

    /// Densify into a `Vec<f64>`, dropping nulls. Fast path for stats code
    /// that needs a contiguous numeric slice.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            if let Some(x) = self.f64_at(i) {
                out.push(x);
            }
        }
        out
    }

    /// Direct access to float storage when the column is `Float` with no
    /// nulls — the aggregate hot path.
    pub fn f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::Float { values, validity: None } => Some(values),
            _ => None,
        }
    }

    /// Direct access to the dictionary codes of a string column.
    pub fn str_codes(&self) -> Option<(&[String], &[u32])> {
        match self {
            Column::Str { dict, codes, .. } => Some((dict, codes)),
            _ => None,
        }
    }

    /// Take the rows at `indices` (with repetition allowed), producing a new
    /// column. Out-of-range indices are an error.
    pub fn gather(&self, indices: &[usize]) -> Result<Column> {
        let len = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(StorageError::RowOutOfBounds { index: bad, len });
        }
        let gather_validity = |v: &Validity| -> Validity {
            v.as_ref().map(|m| indices.iter().map(|&i| m[i]).collect())
        };
        Ok(match self {
            Column::Int { values, validity } => Column::Int {
                values: indices.iter().map(|&i| values[i]).collect(),
                validity: gather_validity(validity),
            },
            Column::Float { values, validity } => Column::Float {
                values: indices.iter().map(|&i| values[i]).collect(),
                validity: gather_validity(validity),
            },
            Column::Bool { values, validity } => Column::Bool {
                values: indices.iter().map(|&i| values[i]).collect(),
                validity: gather_validity(validity),
            },
            Column::Str { dict, codes, validity } => Column::Str {
                dict: dict.clone(),
                codes: indices.iter().map(|&i| codes[i]).collect(),
                validity: gather_validity(validity),
            },
        })
    }

    /// Keep only rows where `mask` is true. `mask.len()` must equal
    /// `self.len()`.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(StorageError::LengthMismatch { expected: self.len(), actual: mask.len() });
        }
        let indices: Vec<usize> =
            mask.iter().enumerate().filter_map(|(i, &m)| m.then_some(i)).collect();
        self.gather(&indices)
    }

    /// Contiguous sub-column `[start, start+len)`.
    pub fn slice(&self, start: usize, len: usize) -> Result<Column> {
        if start + len > self.len() {
            return Err(StorageError::RowOutOfBounds { index: start + len, len: self.len() });
        }
        let indices: Vec<usize> = (start..start + len).collect();
        self.gather(&indices)
    }

    /// Concatenate columns of the same type into one.
    pub fn concat(cols: &[Column]) -> Result<Column> {
        let first = cols
            .first()
            .ok_or_else(|| StorageError::InvalidArgument("concat of zero columns".into()))?;
        let dt = first.data_type();
        if cols.iter().any(|c| c.data_type() != dt) {
            return Err(StorageError::TypeMismatch {
                expected: dt.name().into(),
                actual: "mixed".into(),
            });
        }
        // Generic (slow-ish) path via values; fine because concat only runs
        // at load time, never per-query.
        let total: usize = cols.iter().map(Column::len).sum();
        match dt {
            DataType::Float => {
                let mut vals = Vec::with_capacity(total);
                for c in cols {
                    vals.extend((0..c.len()).map(|i| c.f64_at(i)));
                }
                Ok(Column::from_opt_f64s(vals))
            }
            DataType::Int => {
                let mut vals = Vec::with_capacity(total);
                for c in cols {
                    for i in 0..c.len() {
                        vals.push(match c.value(i)? {
                            Value::Int(x) => Some(x),
                            Value::Null => None,
                            other => {
                                return Err(StorageError::TypeMismatch {
                                    expected: "int".into(),
                                    actual: format!("{other:?}"),
                                })
                            }
                        });
                    }
                }
                Ok(Column::from_opt_i64s(vals))
            }
            DataType::Bool => {
                let mut vals = Vec::with_capacity(total);
                let mut mask = Vec::with_capacity(total);
                let mut any_null = false;
                for c in cols {
                    for i in 0..c.len() {
                        match c.value(i)? {
                            Value::Bool(b) => {
                                vals.push(b);
                                mask.push(true);
                            }
                            Value::Null => {
                                vals.push(false);
                                mask.push(false);
                                any_null = true;
                            }
                            other => {
                                return Err(StorageError::TypeMismatch {
                                    expected: "bool".into(),
                                    actual: format!("{other:?}"),
                                })
                            }
                        }
                    }
                }
                Ok(Column::Bool { values: vals, validity: if any_null { Some(mask) } else { None } })
            }
            DataType::Str => {
                let mut strs: Vec<Option<String>> = Vec::with_capacity(total);
                for c in cols {
                    for i in 0..c.len() {
                        match c.value(i)? {
                            Value::Str(s) => strs.push(Some(s)),
                            Value::Null => strs.push(None),
                            other => {
                                return Err(StorageError::TypeMismatch {
                                    expected: "str".into(),
                                    actual: format!("{other:?}"),
                                })
                            }
                        }
                    }
                }
                // Re-encode with a merged dictionary.
                let mut dict: Vec<String> = Vec::new();
                let mut index: std::collections::HashMap<String, u32> =
                    std::collections::HashMap::new();
                let mut codes = Vec::with_capacity(total);
                let mut mask = Vec::with_capacity(total);
                let mut any_null = false;
                for s in strs {
                    match s {
                        Some(s) => {
                            let code = *index.entry(s.clone()).or_insert_with(|| {
                                dict.push(s);
                                (dict.len() - 1) as u32
                            });
                            codes.push(code);
                            mask.push(true);
                        }
                        None => {
                            codes.push(0);
                            mask.push(false);
                            any_null = true;
                        }
                    }
                }
                Ok(Column::Str {
                    dict,
                    codes,
                    validity: if any_null { Some(mask) } else { None },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_encoding_dedups() {
        let c = Column::from_strs(&["NYC", "SF", "NYC", "NYC"]);
        let (dict, codes) = c.str_codes().unwrap();
        assert_eq!(dict.len(), 2);
        assert_eq!(codes, &[0, 1, 0, 0]);
        assert_eq!(c.value(2).unwrap(), Value::Str("NYC".into()));
    }

    #[test]
    fn nulls_round_trip() {
        let c = Column::from_opt_f64s(vec![Some(1.0), None, Some(3.0)]);
        assert!(!c.is_null(0));
        assert!(c.is_null(1));
        assert_eq!(c.value(1).unwrap(), Value::Null);
        assert_eq!(c.f64_at(1), None);
        assert_eq!(c.to_f64_vec(), vec![1.0, 3.0]);
        assert!(c.has_nulls());
    }

    #[test]
    fn gather_with_repetition() {
        let c = Column::from_i64s(vec![10, 20, 30]);
        let g = c.gather(&[2, 2, 0]).unwrap();
        assert_eq!(g.value(0).unwrap(), Value::Int(30));
        assert_eq!(g.value(1).unwrap(), Value::Int(30));
        assert_eq!(g.value(2).unwrap(), Value::Int(10));
    }

    #[test]
    fn gather_out_of_range_errors() {
        let c = Column::from_i64s(vec![1]);
        assert!(c.gather(&[1]).is_err());
    }

    #[test]
    fn filter_by_mask() {
        let c = Column::from_f64s(vec![1.0, 2.0, 3.0, 4.0]);
        let f = c.filter(&[true, false, true, false]).unwrap();
        assert_eq!(f.to_f64_vec(), vec![1.0, 3.0]);
    }

    #[test]
    fn filter_length_mismatch_errors() {
        let c = Column::from_f64s(vec![1.0]);
        assert!(c.filter(&[true, false]).is_err());
    }

    #[test]
    fn slice_bounds() {
        let c = Column::from_i64s(vec![1, 2, 3, 4, 5]);
        let s = c.slice(1, 3).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.value(0).unwrap(), Value::Int(2));
        assert!(c.slice(3, 3).is_err());
    }

    #[test]
    fn concat_floats_and_strs() {
        let a = Column::from_f64s(vec![1.0]);
        let b = Column::from_opt_f64s(vec![None, Some(2.0)]);
        let c = Column::concat(&[a, b]).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.is_null(1));

        let s1 = Column::from_strs(&["a", "b"]);
        let s2 = Column::from_strs(&["b", "c"]);
        let s = Column::concat(&[s1, s2]).unwrap();
        assert_eq!(s.value(2).unwrap(), Value::Str("b".into()));
        let (dict, _) = s.str_codes().unwrap();
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn concat_type_mismatch_errors() {
        let a = Column::from_f64s(vec![1.0]);
        let b = Column::from_i64s(vec![1]);
        assert!(Column::concat(&[a, b]).is_err());
    }

    #[test]
    fn f64_slice_fast_path() {
        let c = Column::from_f64s(vec![1.0, 2.0]);
        assert_eq!(c.f64_slice().unwrap(), &[1.0, 2.0]);
        let n = Column::from_opt_f64s(vec![None]);
        assert!(n.f64_slice().is_none());
    }
}

//! # aqp-storage
//!
//! In-memory columnar storage substrate for `reliable-aqp`.
//!
//! The paper's Data Storage Layer (§5, layer IV) is "responsible for
//! efficiently distributing samples across machines and deciding which of
//! these samples to cache in memory". This crate provides the local,
//! single-process equivalent:
//!
//! * typed, null-aware [`column::Column`]s grouped into [`batch::Batch`]es,
//! * [`table::Table`]s split into horizontal [`table::Partition`]s (the unit
//!   of task parallelism, mirroring RDD partitions),
//! * a [`sample::SampleSet`] abstraction: uniform random samples of a table,
//!   maintained at several sizes, any prefix/subset of which is itself a
//!   uniform random sample (the property §5.3.1 and §6.1 rely on), and
//! * a concurrent [`catalog::Catalog`] mapping names to tables and samples,
//! * a dependency-free CSV loader with type inference ([`csv`]).
//!
//! Everything is deterministic given explicit seeds; no I/O is performed.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod column;
pub mod csv;
pub mod error;
pub mod sample;
pub mod schema;
pub mod table;
pub mod value;

pub use batch::Batch;
pub use catalog::Catalog;
pub use column::Column;
pub use csv::{read_csv, read_csv_file};
pub use error::StorageError;
pub use sample::{SampleMeta, SampleSet, SamplingStrategy, Strata, StratumMeta};
pub use schema::{DataType, Field, Schema};
pub use table::{Partition, Table};
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

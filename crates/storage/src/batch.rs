//! Batches: a schema plus equal-length columns.
//!
//! A [`Batch`] is the unit of data flowing between physical operators
//! (vectorized execution). A table partition holds exactly one batch.

use crate::column::Column;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// A horizontal chunk of rows in columnar layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// Build a batch; all columns must match the schema arity and share one
    /// length.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.data_type != c.data_type() {
                return Err(StorageError::TypeMismatch {
                    expected: format!("{} ({})", f.name, f.data_type.name()),
                    actual: c.data_type().name().into(),
                });
            }
        }
        let rows = columns.first().map_or(0, Column::len);
        if let Some(c) = columns.iter().find(|c| c.len() != rows) {
            return Err(StorageError::LengthMismatch { expected: rows, actual: c.len() });
        }
        Ok(Batch { schema, columns, rows })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Batch { schema, columns: Vec::new(), rows: 0 }
    }

    /// The batch's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by index.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Dynamically-typed row extraction (tests / display only).
    pub fn row(&self, i: usize) -> Result<Vec<Value>> {
        if i >= self.rows {
            return Err(StorageError::RowOutOfBounds { index: i, len: self.rows });
        }
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Project to the named columns (in that order).
    pub fn project(&self, names: &[&str]) -> Result<Batch> {
        let schema = self.schema.project(names)?;
        let columns = names
            .iter()
            .map(|n| self.column_by_name(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Batch::new(schema, columns)
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Batch> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.filter(mask))
            .collect::<Result<Vec<_>>>()?;
        // An all-false mask on a zero-column batch still works.
        let rows = mask.iter().filter(|&&m| m).count();
        Ok(Batch { schema: self.schema.clone(), columns, rows })
    }

    /// Take rows at `indices` (repetition allowed).
    pub fn gather(&self, indices: &[usize]) -> Result<Batch> {
        if self.columns.is_empty() {
            if let Some(&bad) = indices.iter().find(|&&i| i >= self.rows) {
                return Err(StorageError::RowOutOfBounds { index: bad, len: self.rows });
            }
            return Ok(Batch { schema: self.schema.clone(), columns: Vec::new(), rows: indices.len() });
        }
        let columns = self
            .columns
            .iter()
            .map(|c| c.gather(indices))
            .collect::<Result<Vec<_>>>()?;
        Ok(Batch { schema: self.schema.clone(), columns, rows: indices.len() })
    }

    /// Contiguous sub-batch `[start, start+len)`.
    pub fn slice(&self, start: usize, len: usize) -> Result<Batch> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.slice(start, len))
            .collect::<Result<Vec<_>>>()?;
        if start + len > self.rows {
            return Err(StorageError::RowOutOfBounds { index: start + len, len: self.rows });
        }
        Ok(Batch { schema: self.schema.clone(), columns, rows: len })
    }

    /// Append extra columns (used by the resample operator to attach weight
    /// columns).
    pub fn with_columns(
        &self,
        extra_fields: Vec<crate::schema::Field>,
        extra_cols: Vec<Column>,
    ) -> Result<Batch> {
        if let Some(c) = extra_cols.iter().find(|c| c.len() != self.rows) {
            return Err(StorageError::LengthMismatch { expected: self.rows, actual: c.len() });
        }
        let schema = self.schema.extend(extra_fields)?;
        let mut columns = self.columns.clone();
        columns.extend(extra_cols);
        Batch::new(schema, columns)
    }

    /// Vertically concatenate batches sharing one schema.
    pub fn concat(batches: &[Batch]) -> Result<Batch> {
        let first = batches
            .first()
            .ok_or_else(|| StorageError::InvalidArgument("concat of zero batches".into()))?;
        if let Some(b) = batches.iter().find(|b| b.schema != first.schema) {
            return Err(StorageError::SchemaMismatch(format!(
                "batch schema {:?} differs from {:?}",
                b.schema, first.schema
            )));
        }
        let mut columns = Vec::with_capacity(first.schema.len());
        for i in 0..first.schema.len() {
            let parts: Vec<Column> = batches.iter().map(|b| b.columns[i].clone()).collect();
            columns.push(Column::concat(&parts)?);
        }
        let rows = batches.iter().map(Batch::num_rows).sum();
        Ok(Batch { schema: first.schema.clone(), columns, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn sample_batch() -> Batch {
        let schema = Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("time", DataType::Float),
        ])
        .unwrap();
        Batch::new(
            schema,
            vec![
                Column::from_strs(&["NYC", "SF", "NYC"]),
                Column::from_f64s(vec![1.0, 2.0, 3.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_arity_and_types() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        assert!(Batch::new(schema.clone(), vec![]).is_err());
        assert!(Batch::new(schema, vec![Column::from_f64s(vec![1.0])]).is_err());
    }

    #[test]
    fn construction_checks_lengths() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let r = Batch::new(
            schema,
            vec![Column::from_i64s(vec![1, 2]), Column::from_i64s(vec![1])],
        );
        assert!(matches!(r, Err(StorageError::LengthMismatch { .. })));
    }

    #[test]
    fn row_extraction() {
        let b = sample_batch();
        assert_eq!(
            b.row(1).unwrap(),
            vec![Value::Str("SF".into()), Value::Float(2.0)]
        );
        assert!(b.row(3).is_err());
    }

    #[test]
    fn filter_and_project() {
        let b = sample_batch();
        let f = b.filter(&[true, false, true]).unwrap();
        assert_eq!(f.num_rows(), 2);
        let p = f.project(&["time"]).unwrap();
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.column(0).to_f64_vec(), vec![1.0, 3.0]);
    }

    #[test]
    fn gather_repeats_rows() {
        let b = sample_batch();
        let g = b.gather(&[0, 0, 2]).unwrap();
        assert_eq!(g.num_rows(), 3);
        assert_eq!(g.row(1).unwrap()[0], Value::Str("NYC".into()));
    }

    #[test]
    fn with_columns_appends_weights() {
        let b = sample_batch();
        let w = Column::from_i64s(vec![1, 0, 2]);
        let b2 = b
            .with_columns(vec![Field::new("w0", DataType::Int)], vec![w])
            .unwrap();
        assert_eq!(b2.schema().len(), 3);
        assert_eq!(b2.column_by_name("w0").unwrap().value(2).unwrap(), Value::Int(2));
    }

    #[test]
    fn concat_batches() {
        let a = sample_batch();
        let b = sample_batch();
        let c = Batch::concat(&[a, b]).unwrap();
        assert_eq!(c.num_rows(), 6);
        assert_eq!(c.row(5).unwrap()[1], Value::Float(3.0));
    }
}

//! Schemas: ordered, named, typed fields.

use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::Result;

/// The scalar types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (dictionary-encoded in columns).
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// True for types that coerce to `f64` and may feed aggregates.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Bool)
    }

    /// Lowercase SQL-ish name, used in error messages and plan printouts.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "string",
            DataType::Bool => "bool",
        }
    }
}

/// A named, typed field of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type, nullable: false }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type, nullable: true }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields. Field names must be unique.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(StorageError::InvalidArgument(format!(
                    "duplicate field name: {}",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// All fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::ColumnNotFound(name.to_owned()))
    }

    /// Field with the given name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// Field at position `i`.
    pub fn field_at(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// A new schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let fields = names
            .iter()
            .map(|n| self.field(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Schema::new(fields)
    }

    /// A new schema with `extra` fields appended.
    pub fn extend(&self, extra: Vec<Field>) -> Result<Schema> {
        let mut fields = self.fields.clone();
        fields.extend(extra);
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sessions() -> Schema {
        Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("time", DataType::Float),
            Field::nullable("bytes", DataType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn index_and_lookup() {
        let s = sessions();
        assert_eq!(s.index_of("time").unwrap(), 1);
        assert_eq!(s.field("bytes").unwrap().data_type, DataType::Int);
        assert!(s.field("bytes").unwrap().nullable);
        assert!(matches!(
            s.index_of("nope"),
            Err(StorageError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Float),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn projection_preserves_order() {
        let s = sessions();
        let p = s.project(&["bytes", "city"]).unwrap();
        assert_eq!(p.field_at(0).name, "bytes");
        assert_eq!(p.field_at(1).name, "city");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn extend_appends() {
        let s = sessions();
        let e = s.extend(vec![Field::new("w0", DataType::Int)]).unwrap();
        assert_eq!(e.len(), 4);
        assert_eq!(e.index_of("w0").unwrap(), 3);
    }

    #[test]
    fn numeric_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(DataType::Bool.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }
}

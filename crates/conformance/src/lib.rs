//! Golden query-conformance corpus (DESIGN §17, ROADMAP item 5).
//!
//! Every behavior the paper's "knows when it's wrong" claim rests on —
//! estimates, CI half-widths, diagnostic verdicts, fallback and
//! degradation decisions — is pinned bit-for-bit in declarative
//! `tests/corpus/*.case` files before the vectorized rewrite replaces
//! the row-at-a-time scan path. A case file has two sections:
//!
//! * an authored `[case]` preamble (`key = value` lines plus free-form
//!   `#` comments) describing the table, sample, seeds, fault
//!   injection, audit setting, and SQL, and
//! * a machine-written `[expect]` body holding the canonical rendering
//!   of the answer: mode, plan shape (the `;`-path idiom from
//!   `aqp-prof`), per-group estimates / CI bounds / verdicts as exact
//!   f64 bit patterns (the `introspect`-smoke idiom), degraded-scan
//!   outcomes, the differential oracle's exact answer, and the nonzero
//!   `aqp.*` counter deltas the query produced.
//!
//! `verify` re-executes every case and byte-compares the re-rendered
//! `[expect]` body against the committed one; `bless` rewrites the
//! `[expect]` body in place (preserving the authored preamble), so a
//! re-bless of an up-to-date corpus is a zero diff. The differential
//! oracle re-executes every case exactly (same table, no samples, no
//! faults) and checks each claimed-reliable CI contains the exact
//! answer, aggregating empirical coverage across the corpus against
//! the nominal confidence.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod runner;

pub use case::{CaseFile, CaseSpec, TableKind};
pub use runner::{run_corpus, CaseOutcome, CorpusMode, CorpusReport, TableCache};

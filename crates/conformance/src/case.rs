//! The declarative `.case` file format.
//!
//! A case file is line-oriented:
//!
//! ```text
//! # free-form comment (preserved verbatim by bless)
//! [case]
//! table = sessions
//! sample_rows = 4000
//! seed = 42
//! sql = SELECT AVG(bitrate) FROM sessions
//! [expect]
//! mode = Approximate
//! ...
//! ```
//!
//! Everything up to and including the `[expect]` line is the authored
//! preamble; bless preserves it byte-for-byte and rewrites only the
//! body below. A file with no `[expect]` section yet is a valid
//! *unblessed* case (verify fails on it until blessed). Unknown keys
//! are an error so typos cannot silently author a default-config case.

use std::time::Duration;

/// Which synthetic workload table the case queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TableKind {
    /// `conviva_sessions_table` — benign numeric columns (`bitrate`),
    /// Zipf group keys (`city`, `site`), lognormal `time`.
    Sessions,
    /// `facebook_events_table` — heavy-tailed `payload_kb`
    /// (Pareto α=1.3, infinite variance), Zipf `country`.
    Events,
}

impl TableKind {
    /// Registered table name (matches the workload constructors).
    pub fn table_name(self) -> &'static str {
        match self {
            TableKind::Sessions => "sessions",
            TableKind::Events => "events",
        }
    }
}

/// Fault-injection knobs for a case (subset of `aqp_faults::FaultConfig`
/// the corpus exercises; everything else stays at the crate default).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultKnobs {
    /// Root seed for the fault plan.
    pub seed: u64,
    /// Probability a worker dies mid-task.
    pub worker_death: f64,
    /// Probability of a transient scan error.
    pub transient: f64,
    /// Probability of corrupt partition data.
    pub corruption: f64,
    /// Probability a partition is truncated (degraded success).
    pub truncation: f64,
    /// Fraction of rows kept when a truncation fires.
    pub truncation_keep: f64,
    /// Probability an attempt is straggler-delayed.
    pub straggler: f64,
    /// Retries allowed after the first attempt.
    pub max_retries: usize,
    /// Maximum lost-partition fraction before exact fallback.
    pub max_lost_fraction: f64,
    /// Speculative execution of straggler-delayed attempts.
    pub speculative: bool,
}

impl Default for FaultKnobs {
    fn default() -> Self {
        let d = aqp_faults::FaultConfig::default();
        FaultKnobs {
            seed: d.seed,
            worker_death: d.worker_death_prob,
            transient: d.transient_error_prob,
            corruption: d.corruption_prob,
            truncation: d.truncation_prob,
            truncation_keep: d.truncation_keep,
            straggler: d.straggler_prob,
            max_retries: d.recovery.max_retries,
            max_lost_fraction: d.recovery.max_lost_fraction,
            speculative: d.recovery.speculative,
        }
    }
}

impl FaultKnobs {
    /// Lower the knobs into the executor's fault config. Straggler
    /// delays are pinned to a fixed 50 ms (mock-clock deterministic)
    /// so the corpus never depends on lognormal delay draws.
    pub fn to_config(&self) -> aqp_faults::FaultConfig {
        let mut cfg = aqp_faults::FaultConfig::quiescent(self.seed);
        cfg.worker_death_prob = self.worker_death;
        cfg.transient_error_prob = self.transient;
        cfg.corruption_prob = self.corruption;
        cfg.truncation_prob = self.truncation;
        cfg.truncation_keep = self.truncation_keep;
        cfg.straggler_prob = self.straggler;
        cfg.straggler_delay = aqp_faults::StragglerDelay::Fixed(Duration::from_millis(50));
        cfg.recovery.max_retries = self.max_retries;
        cfg.recovery.max_lost_fraction = self.max_lost_fraction;
        cfg.recovery.speculative = self.speculative;
        cfg
    }
}

/// Parsed `[case]` preamble: everything the runner needs to rebuild
/// the session and query deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Workload table the case registers.
    pub table: TableKind,
    /// Table rows.
    pub rows: usize,
    /// Table partitions.
    pub partitions: usize,
    /// Data-generation seed.
    pub table_seed: u64,
    /// Uniform sample rows (0 = no sample; the query runs exact).
    pub sample_rows: usize,
    /// Sample-build seed.
    pub sample_seed: u64,
    /// Optional stratified sample: `(column, rows_per_stratum)`.
    pub stratify: Option<(String, usize)>,
    /// Session seed (bootstrap, diagnostics, audit draws).
    pub seed: u64,
    /// Bootstrap resamples K.
    pub bootstrap_k: usize,
    /// Diagnostic subsamples per size p.
    pub diagnostic_p: usize,
    /// Run the error-estimate diagnostic.
    pub diagnostics: bool,
    /// Default confidence for queries without an error clause.
    pub confidence: f64,
    /// Continuous audit on (sample_rate 1.0, seeded from the session
    /// seed, no log sink).
    pub audit: bool,
    /// Fault injection (None = no fault layer at all).
    pub fault: Option<FaultKnobs>,
    /// Name of another case whose `result` lines must match this
    /// case's bit-for-bit (cross-case invariants, e.g. quiescent
    /// faults ≡ fault-free).
    pub answers_match: Option<String>,
    /// The query under test.
    pub sql: String,
}

impl Default for CaseSpec {
    fn default() -> Self {
        CaseSpec {
            table: TableKind::Sessions,
            rows: 20_000,
            partitions: 4,
            table_seed: 7,
            sample_rows: 0,
            sample_seed: 9,
            stratify: None,
            seed: 0,
            bootstrap_k: 100,
            diagnostic_p: 100,
            diagnostics: true,
            confidence: 0.95,
            audit: false,
            fault: None,
            answers_match: None,
            sql: String::new(),
        }
    }
}

/// One `.case` file: authored preamble + parsed spec + stored expect.
#[derive(Debug, Clone)]
pub struct CaseFile {
    /// File stem (`avg_uniform_clean` for `avg_uniform_clean.case`).
    pub name: String,
    /// Authored bytes up to and including the `[expect]` line; bless
    /// preserves these verbatim.
    pub preamble: String,
    /// Parsed spec.
    pub spec: CaseSpec,
    /// Stored `[expect]` body (empty when the case is unblessed).
    pub expect: String,
}

fn parse_bool(key: &str, v: &str) -> Result<bool, String> {
    match v {
        "on" | "true" | "yes" => Ok(true),
        "off" | "false" | "no" => Ok(false),
        _ => Err(format!("{key}: expected on/off, got {v:?}")),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
    v.parse::<T>().map_err(|_| format!("{key}: cannot parse {v:?}"))
}

impl CaseFile {
    /// Parse a case file. `name` is the file stem used in reports and
    /// `answers_match` references.
    pub fn parse(name: &str, text: &str) -> Result<CaseFile, String> {
        const MARKER: &str = "[expect]\n";
        let (preamble, expect) = match locate_expect(text) {
            Some(pos) => {
                let split = pos + MARKER.len();
                (text[..split].to_string(), text[split..].to_string())
            }
            None => (text.to_string(), String::new()),
        };

        let mut spec = CaseSpec::default();
        let mut saw_table = false;
        let mut saw_sql = false;
        let mut fault = FaultKnobs::default();
        let mut saw_fault = false;
        let mut stratify_column: Option<String> = None;
        let mut stratify_rows: usize = 0;

        for raw in preamble.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line == "[case]" || line == "[expect]" {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("{name}: not a `key = value` line: {line:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "table" => {
                    spec.table = match value {
                        "sessions" => TableKind::Sessions,
                        "events" => TableKind::Events,
                        _ => return Err(format!("{name}: unknown table {value:?}")),
                    };
                    saw_table = true;
                }
                "rows" => spec.rows = parse_num(key, value)?,
                "partitions" => spec.partitions = parse_num(key, value)?,
                "table_seed" => spec.table_seed = parse_num(key, value)?,
                "sample_rows" => spec.sample_rows = parse_num(key, value)?,
                "sample_seed" => spec.sample_seed = parse_num(key, value)?,
                "stratify_column" => stratify_column = Some(value.to_string()),
                "stratify_rows" => stratify_rows = parse_num(key, value)?,
                "seed" => spec.seed = parse_num(key, value)?,
                "bootstrap_k" => spec.bootstrap_k = parse_num(key, value)?,
                "diagnostic_p" => spec.diagnostic_p = parse_num(key, value)?,
                "diagnostics" => spec.diagnostics = parse_bool(key, value)?,
                "confidence" => spec.confidence = parse_num(key, value)?,
                "audit" => spec.audit = parse_bool(key, value)?,
                "answers_match" => spec.answers_match = Some(value.to_string()),
                "sql" => {
                    spec.sql = value.to_string();
                    saw_sql = true;
                }
                "fault_seed" => {
                    fault.seed = parse_num(key, value)?;
                    saw_fault = true;
                }
                "fault_worker_death" => {
                    fault.worker_death = parse_num(key, value)?;
                    saw_fault = true;
                }
                "fault_transient" => {
                    fault.transient = parse_num(key, value)?;
                    saw_fault = true;
                }
                "fault_corruption" => {
                    fault.corruption = parse_num(key, value)?;
                    saw_fault = true;
                }
                "fault_truncation" => {
                    fault.truncation = parse_num(key, value)?;
                    saw_fault = true;
                }
                "fault_truncation_keep" => {
                    fault.truncation_keep = parse_num(key, value)?;
                    saw_fault = true;
                }
                "fault_straggler" => {
                    fault.straggler = parse_num(key, value)?;
                    saw_fault = true;
                }
                "fault_max_retries" => {
                    fault.max_retries = parse_num(key, value)?;
                    saw_fault = true;
                }
                "fault_max_lost_fraction" => {
                    fault.max_lost_fraction = parse_num(key, value)?;
                    saw_fault = true;
                }
                "fault_speculative" => {
                    fault.speculative = parse_bool(key, value)?;
                    saw_fault = true;
                }
                _ => return Err(format!("{name}: unknown key {key:?}")),
            }
        }

        if !saw_table {
            return Err(format!("{name}: missing `table`"));
        }
        if !saw_sql || spec.sql.is_empty() {
            return Err(format!("{name}: missing `sql`"));
        }
        match (stratify_column, stratify_rows) {
            (Some(col), n) if n > 0 => spec.stratify = Some((col, n)),
            (None, 0) => {}
            _ => {
                return Err(format!(
                    "{name}: stratify_column and stratify_rows must be set together"
                ))
            }
        }
        if saw_fault {
            spec.fault = Some(fault);
        }

        Ok(CaseFile { name: name.to_string(), preamble, spec, expect })
    }

    /// The full file bytes for this case with `expect` as the body —
    /// exactly what bless writes.
    pub fn render_with_expect(&self, expect: &str) -> String {
        let mut out = self.preamble.clone();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        if !out.ends_with("[expect]\n") {
            out.push_str("[expect]\n");
        }
        out.push_str(expect);
        out
    }
}

/// Byte offset of the `[expect]` line, honoring only a line that is
/// exactly `[expect]` (start of file or preceded by a newline).
fn locate_expect(text: &str) -> Option<usize> {
    let mut at = 0;
    for line in text.split_inclusive('\n') {
        if line == "[expect]\n" || line == "[expect]" {
            return Some(at);
        }
        at += line.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "# a comment\n[case]\ntable = sessions\nsample_rows = 100\nsql = SELECT AVG(bitrate) FROM sessions\n[expect]\nmode = Approximate\n";

    #[test]
    fn parses_preamble_and_expect() {
        let c = CaseFile::parse("t", SAMPLE).unwrap();
        assert_eq!(c.spec.table, TableKind::Sessions);
        assert_eq!(c.spec.sample_rows, 100);
        assert_eq!(c.spec.sql, "SELECT AVG(bitrate) FROM sessions");
        assert_eq!(c.expect, "mode = Approximate\n");
        assert!(c.preamble.ends_with("[expect]\n"));
    }

    #[test]
    fn round_trips_bytes() {
        let c = CaseFile::parse("t", SAMPLE).unwrap();
        assert_eq!(c.render_with_expect(&c.expect), SAMPLE);
    }

    #[test]
    fn unblessed_case_has_empty_expect() {
        let c = CaseFile::parse("t", "table = events\nsql = SELECT COUNT(*) FROM events\n")
            .unwrap();
        assert!(c.expect.is_empty());
        assert!(c
            .render_with_expect("mode = Exact\n")
            .ends_with("[expect]\nmode = Exact\n"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = CaseFile::parse("t", "table = sessions\nsampel_rows = 3\nsql = x\n");
        assert!(err.unwrap_err().contains("unknown key"));
    }

    #[test]
    fn fault_keys_enable_fault_config() {
        let c = CaseFile::parse(
            "t",
            "table = sessions\nfault_seed = 3\nfault_truncation = 0.5\nsql = SELECT COUNT(*) FROM sessions\n",
        )
        .unwrap();
        let f = c.spec.fault.expect("fault block");
        assert_eq!(f.seed, 3);
        assert_eq!(f.truncation, 0.5);
        // Untouched knobs keep executor defaults.
        assert_eq!(f.max_retries, 2);
    }

    #[test]
    fn sql_may_contain_equals_signs() {
        let c = CaseFile::parse(
            "t",
            "table = sessions\nsql = SELECT AVG(time) FROM sessions WHERE city = 'NYC'\n",
        )
        .unwrap();
        assert_eq!(c.spec.sql, "SELECT AVG(time) FROM sessions WHERE city = 'NYC'");
    }
}

//! Corpus driver CLI (normally invoked as `cargo xtask corpus ...`).
//!
//! ```text
//! corpus verify [--dir DIR] [--report PATH]   re-run + byte-compare every case
//! corpus bless  [--dir DIR] [--out DIR]       re-record [expect] bodies
//! corpus drift  [--dir DIR]                   bless to a scratch dir, diff against committed
//! ```
//!
//! `--bless` is accepted as an alias for `bless` (the ISSUE's spelling).
//! Exit status: 0 on pass, 1 on any case failure, answers_match
//! mismatch, oracle coverage outside tolerance, or drift.

#![deny(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use aqp_conformance::{run_corpus, CorpusMode};

fn default_corpus_dir() -> PathBuf {
    // crates/conformance -> workspace root -> tests/corpus.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn default_scratch_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/corpus-rebless")
}

fn usage() -> String {
    "usage: corpus <verify|bless|drift> [--dir DIR] [--out DIR] [--report PATH]".to_string()
}

fn main() -> ExitCode {
    match real_main() {
        Ok(pass) => {
            if pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("corpus: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_arg: Option<String> = None;
    let mut dir = default_corpus_dir();
    let mut out: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "verify" | "bless" | "drift" => mode_arg = Some(a.clone()),
            "--bless" => mode_arg = Some("bless".to_string()),
            "--dir" => {
                dir = PathBuf::from(it.next().ok_or_else(|| format!("--dir needs a value\n{}", usage()))?)
            }
            "--out" => {
                out = Some(PathBuf::from(
                    it.next().ok_or_else(|| format!("--out needs a value\n{}", usage()))?,
                ))
            }
            "--report" => {
                report_path = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| format!("--report needs a value\n{}", usage()))?,
                ))
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }

    let mode_arg = mode_arg.ok_or_else(usage)?;
    match mode_arg.as_str() {
        "verify" => {
            let report = run_corpus(&dir, &CorpusMode::Verify)?;
            let text = report.render();
            print!("{text}");
            if let Some(p) = report_path {
                std::fs::write(&p, &text).map_err(|e| format!("write {}: {e}", p.display()))?;
            }
            Ok(report.pass)
        }
        "bless" => {
            let report = run_corpus(&dir, &CorpusMode::Bless { out: out.clone() })?;
            print!("{}", report.render());
            match &out {
                Some(d) => println!("blessed {} cases into {}", report.cases.len(), d.display()),
                None => println!("blessed {} cases in place under {}", report.cases.len(), dir.display()),
            }
            Ok(report.pass)
        }
        "drift" => {
            let scratch = default_scratch_dir();
            // Clear stale re-records so removed cases cannot mask drift.
            if scratch.exists() {
                std::fs::remove_dir_all(&scratch)
                    .map_err(|e| format!("clear {}: {e}", scratch.display()))?;
            }
            let report = run_corpus(&dir, &CorpusMode::Bless { out: Some(scratch.clone()) })?;
            if !report.pass {
                print!("{}", report.render());
            }
            let drifted = diff_dirs(&dir, &scratch)?;
            for name in &drifted {
                println!("DRIFT {name}");
            }
            if drifted.is_empty() {
                println!("no bless drift across {} cases", report.cases.len());
            }
            Ok(report.pass && drifted.is_empty())
        }
        other => Err(format!("unknown mode {other:?}\n{}", usage())),
    }
}

/// Names of `.case` files whose bytes differ between the committed
/// corpus and the re-recorded scratch dir (either direction).
fn diff_dirs(committed: &Path, rerecorded: &Path) -> Result<Vec<String>, String> {
    let list = |d: &Path| -> Result<Vec<String>, String> {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .map_err(|e| format!("read_dir {}: {e}", d.display()))?
            .filter_map(|r| r.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|e| e == "case").unwrap_or(false))
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
            .collect();
        names.sort();
        Ok(names)
    };
    let a = list(committed)?;
    let b = list(rerecorded)?;
    let mut drifted = Vec::new();
    for name in a.iter().chain(b.iter()) {
        if drifted.contains(name) {
            continue;
        }
        let (pa, pb) = (committed.join(name), rerecorded.join(name));
        let ba = std::fs::read(&pa).ok();
        let bb = std::fs::read(&pb).ok();
        if ba != bb {
            drifted.push(name.clone());
        }
    }
    drifted.sort();
    drifted.dedup();
    Ok(drifted)
}

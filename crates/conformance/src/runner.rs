//! Case execution, canonical `[expect]` rendering, the differential
//! exact oracle, and the corpus driver (verify / bless / drift).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use aqp_core::{AnswerMode, AqpAnswer, AqpSession, SessionConfig};
use aqp_obs::{Clock, ObsHandle};
use aqp_storage::Table;

use crate::case::{CaseFile, CaseSpec, TableKind};

/// Memoizes generated workload tables across cases: most cases share
/// `(kind, rows, partitions, table_seed)`, and data generation is the
/// dominant per-case cost.
#[derive(Default)]
pub struct TableCache {
    tables: BTreeMap<(TableKind, usize, usize, u64), Table>,
}

impl TableCache {
    /// A fresh cache.
    pub fn new() -> Self {
        TableCache::default()
    }

    /// The (cached) table for `spec`.
    pub fn get(&mut self, spec: &CaseSpec) -> Table {
        let key = (spec.table, spec.rows, spec.partitions, spec.table_seed);
        self.tables
            .entry(key)
            .or_insert_with(|| match spec.table {
                TableKind::Sessions => {
                    aqp_workload::conviva_sessions_table(spec.rows, spec.partitions, spec.table_seed)
                }
                TableKind::Events => {
                    aqp_workload::facebook_events_table(spec.rows, spec.partitions, spec.table_seed)
                }
            })
            .clone()
    }
}

/// Coverage tally from the differential oracle: how many
/// claimed-reliable CIs the case produced and how many contained the
/// exact answer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OracleTally {
    /// CIs the system claimed reliable (approximate mode, diagnostic
    /// accepted or absent, matching exact group found).
    pub reliable: usize,
    /// Of those, CIs containing the exact answer.
    pub covered: usize,
    /// Sum of nominal confidences over the counted CIs (so corpus-wide
    /// nominal coverage is `confidence_sum / reliable`).
    pub confidence_sum: f64,
}

/// What running one case produced.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Canonical `[expect]` body for the run.
    pub rendered: String,
    /// Just the `result` lines (cross-case `answers_match` compares
    /// these, so metric/plan differences between variants don't mask
    /// the answer-equality invariant).
    pub result_lines: String,
    /// Differential-oracle tally.
    pub oracle: OracleTally,
}

fn mode_str(mode: &AnswerMode) -> &'static str {
    match mode {
        AnswerMode::Approximate => "Approximate",
        AnswerMode::ApproximateUnchecked => "ApproximateUnchecked",
        AnswerMode::ExactFallback => "ExactFallback",
        AnswerMode::PartialFallback => "PartialFallback",
        AnswerMode::Exact => "Exact",
    }
}

/// Root-first `;`-joined operator path (the `aqp-prof` path idiom).
/// Plans are linear chains, so one path is the whole shape; operator
/// names are the `describe()` text up to the first `[`.
fn plan_path(plan: &str) -> String {
    let mut names: Vec<&str> = Vec::new();
    for line in plan.lines() {
        let t = line.trim_start();
        if t.is_empty() {
            continue;
        }
        let name = t.split(['[', ' ']).next().unwrap_or(t);
        names.push(name);
    }
    names.join(";")
}

fn bits(x: f64) -> String {
    format!("{:x}", x.to_bits())
}

/// Group keys use the `\u{1f}` unit separator internally; render it as
/// `|` so case files stay grep-able.
fn render_key(key: &str) -> String {
    key.replace('\u{1f}', "|")
}

fn build_session(spec: &CaseSpec, obs: ObsHandle) -> Result<AqpSession, String> {
    let config = SessionConfig {
        seed: spec.seed,
        threads: 1,
        bootstrap_k: spec.bootstrap_k,
        diagnostic_p: spec.diagnostic_p,
        run_diagnostics: spec.diagnostics,
        default_confidence: spec.confidence,
        obs,
        audit: spec.audit.then(|| aqp_audit::AuditConfig {
            sample_rate: 1.0,
            seed: spec.seed ^ 0xA0D1,
            ..Default::default()
        }),
        faults: spec.fault.as_ref().map(|f| f.to_config()),
        ..Default::default()
    };
    let session = AqpSession::new(config);
    Ok(session)
}

fn prepare(
    spec: &CaseSpec,
    table: Table,
    with_samples: bool,
) -> Result<(AqpSession, ObsHandle), String> {
    let obs = ObsHandle::isolated(Clock::mock());
    let session = build_session(spec, obs.clone())?;
    session
        .register_table(table)
        .map_err(|e| format!("register_table: {e}"))?;
    if with_samples {
        let name = spec.table.table_name();
        if spec.sample_rows > 0 {
            session
                .build_samples(name, &[spec.sample_rows], spec.sample_seed)
                .map_err(|e| format!("build_samples: {e}"))?;
        }
        if let Some((col, rows)) = &spec.stratify {
            session
                .build_stratified_sample(name, col, *rows, spec.sample_seed)
                .map_err(|e| format!("build_stratified_sample: {e}"))?;
        }
    }
    Ok((session, obs))
}

/// Exact answers per `(group key, aggregate position)` from the oracle
/// run. Matching is positional because the exact executor labels
/// aggregates `agg0`, `agg1`, … while the approximate path keeps the
/// SQL rendering (`AVG(bitrate)`); select-list order is identical.
fn oracle_truth(spec: &CaseSpec, table: Table) -> Result<BTreeMap<(String, usize), f64>, String> {
    // Same table, no samples, no faults, no audit: the session plans an
    // exact query and the estimate IS the exact answer.
    let mut exact_spec = spec.clone();
    exact_spec.sample_rows = 0;
    exact_spec.stratify = None;
    exact_spec.fault = None;
    exact_spec.audit = false;
    let (session, _obs) = prepare(&exact_spec, table, false)?;
    let ans = session
        .execute(&spec.sql)
        .map_err(|e| format!("oracle execute: {e}"))?;
    if ans.mode != AnswerMode::Exact {
        return Err(format!("oracle ran in mode {}, not Exact", mode_str(&ans.mode)));
    }
    let mut truth = BTreeMap::new();
    for g in &ans.groups {
        for (i, a) in g.aggs.iter().enumerate() {
            truth.insert((g.key.clone(), i), a.estimate);
        }
    }
    Ok(truth)
}

fn render_answer(
    ans: &AqpAnswer,
    truth: &BTreeMap<(String, usize), f64>,
    tally: &mut OracleTally,
    result_lines: &mut String,
    out: &mut String,
) {
    out.push_str(&format!("mode = {}\n", mode_str(&ans.mode)));
    out.push_str(&format!("fell_back = {}\n", if ans.fell_back { "yes" } else { "no" }));
    out.push_str(&format!("sample_rows = {}\n", ans.sample_rows));
    out.push_str(&format!("population_rows = {}\n", ans.population_rows));
    out.push_str(&format!("plan = {}\n", plan_path(&ans.plan)));
    match &ans.degraded {
        Some(d) => out.push_str(&format!(
            "degraded = lost={}/{} planned={} effective={} widen={}\n",
            d.lost_partitions,
            d.total_partitions,
            d.planned_rows,
            d.effective_rows,
            bits(d.widen_factor),
        )),
        None => out.push_str("degraded = none\n"),
    }
    for g in &ans.groups {
        for (i, a) in g.aggs.iter().enumerate() {
            let ci = match &a.ci {
                Some(c) => format!("{},{},{}", bits(c.center), bits(c.half_width), bits(c.confidence)),
                None => "-".to_string(),
            };
            let verdict = match &a.diagnostic {
                Some(d) if d.accepted => "ok",
                Some(_) => "rejected",
                None => "-",
            };
            let exact = truth.get(&(g.key.clone(), i));
            let truth_s = match exact {
                Some(t) => bits(*t),
                None => "none".to_string(),
            };
            let covered = match (exact, &a.ci) {
                (Some(t), Some(c)) => {
                    let inside = c.contains(*t);
                    // The oracle's coverage statistic counts exactly the
                    // CIs the system stands behind: an approximate (or
                    // partially approximate) answer whose diagnostic ran
                    // and accepted the error bars. Unchecked CIs
                    // (diagnostics off) are rendered but make no claim.
                    let claimed = matches!(
                        ans.mode,
                        AnswerMode::Approximate | AnswerMode::PartialFallback
                    ) && a.diagnostic.as_ref().map(|d| d.accepted).unwrap_or(false);
                    if claimed {
                        tally.reliable += 1;
                        tally.confidence_sum += c.confidence;
                        if inside {
                            tally.covered += 1;
                        }
                    }
                    if inside {
                        "yes"
                    } else {
                        "no"
                    }
                }
                _ => "n/a",
            };
            let line = format!(
                "result key=\"{}\" agg=\"{}\" est={} ci={} verdict={} truth={} covered={}\n",
                render_key(&g.key),
                a.name,
                bits(a.estimate),
                ci,
                verdict,
                truth_s,
                covered,
            );
            result_lines.push_str(&line);
            out.push_str(&line);
        }
    }
}

/// Execute one case end to end: approximate run, differential exact
/// oracle, metric-delta capture, canonical rendering.
pub fn run_case(spec: &CaseSpec, cache: &mut TableCache) -> Result<CaseOutcome, String> {
    let table = cache.get(spec);
    let truth = oracle_truth(spec, table.clone())?;

    let (session, obs) = prepare(spec, table, true)?;
    let before = obs.metrics.snapshot();
    let executed = session.execute(&spec.sql);
    let after = obs.metrics.snapshot();

    let mut out = String::new();
    let mut result_lines = String::new();
    let mut tally = OracleTally::default();
    match &executed {
        Ok(ans) => render_answer(ans, &truth, &mut tally, &mut result_lines, &mut out),
        Err(e) => {
            let line = format!("error = {e}\n");
            result_lines.push_str(&line);
            out.push_str(&line);
        }
    }

    // Nonzero counter deltas, name-sorted (snapshots are name-sorted).
    let before_counters: BTreeMap<&str, u64> =
        before.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for (name, v) in &after.counters {
        let delta = v - before_counters.get(name.as_str()).copied().unwrap_or(0);
        if delta > 0 {
            out.push_str(&format!("metric {name} = {delta}\n"));
        }
    }

    Ok(CaseOutcome { rendered: out, result_lines, oracle: tally })
}

/// What the corpus driver should do with each case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusMode {
    /// Re-run and byte-compare the re-rendered `[expect]` body against
    /// the committed one; fail on any difference.
    Verify,
    /// Rewrite the `[expect]` body in place (or under `out` when
    /// re-recording for drift detection), preserving the preamble.
    Bless {
        /// Alternate output directory (`None` = in place).
        out: Option<PathBuf>,
    },
}

/// Per-case verdict in a corpus run.
#[derive(Debug, Clone)]
pub struct CaseStatus {
    /// Case name (file stem).
    pub name: String,
    /// Pass/fail.
    pub pass: bool,
    /// Short human-readable detail (first differing line on failure).
    pub detail: String,
}

/// Corpus-wide report.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Per-case statuses, name-sorted.
    pub cases: Vec<CaseStatus>,
    /// `answers_match` checks: `(case, target, ok)`.
    pub matches: Vec<(String, String, bool)>,
    /// Aggregated oracle tally.
    pub oracle: OracleTally,
    /// Empirical CI coverage (`covered / reliable`).
    pub empirical: f64,
    /// Mean nominal confidence over counted CIs.
    pub nominal: f64,
    /// Overall pass (all cases + matches + coverage bound).
    pub pass: bool,
}

/// Allowed deviation of empirical corpus coverage from nominal
/// (the ISSUE's "within 2 points of nominal" acceptance bar).
pub const COVERAGE_TOLERANCE: f64 = 0.02;

impl CorpusReport {
    /// Deterministic text rendering (the CI job byte-diffs this across
    /// two processes, so no timing, paths, or float formatting that
    /// could wobble).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("corpus cases = {}\n", self.cases.len()));
        for c in &self.cases {
            if c.pass {
                out.push_str(&format!("PASS {}\n", c.name));
            } else {
                out.push_str(&format!("FAIL {} :: {}\n", c.name, c.detail));
            }
        }
        for (a, b, ok) in &self.matches {
            out.push_str(&format!(
                "MATCH {a} == {b} :: {}\n",
                if *ok { "ok" } else { "MISMATCH" }
            ));
        }
        out.push_str(&format!(
            "oracle reliable_cis = {} covered = {} empirical = {:x} nominal = {:x}\n",
            self.oracle.reliable,
            self.oracle.covered,
            self.empirical.to_bits(),
            self.nominal.to_bits(),
        ));
        out.push_str(&format!(
            "oracle empirical_pct = {:.2} nominal_pct = {:.2} tolerance_pct = {:.0}\n",
            self.empirical * 100.0,
            self.nominal * 100.0,
            COVERAGE_TOLERANCE * 100.0,
        ));
        out.push_str(&format!("RESULT: {}\n", if self.pass { "PASS" } else { "FAIL" }));
        out
    }
}

fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("line {}: expected {:?}, got {:?}", i + 1, e, a);
        }
    }
    let (el, al) = (expected.lines().count(), actual.lines().count());
    if el != al {
        return format!("expected {el} lines, got {al}");
    }
    "trailing bytes differ".to_string()
}

/// Load, run, and score every `.case` file under `dir` (name-sorted).
///
/// In `Verify` mode a case passes when its re-rendered `[expect]` body
/// is byte-identical to the committed one. In `Bless` mode the body is
/// rewritten (in place, or under `out`) and a case only fails if it
/// cannot be executed at all. `answers_match` invariants and the
/// corpus-wide oracle coverage bound are checked in both modes.
pub fn run_corpus(dir: &Path, mode: &CorpusMode) -> Result<CorpusReport, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|r| r.ok().map(|d| d.path()))
        .filter(|p| p.extension().map(|e| e == "case").unwrap_or(false))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("no .case files under {}", dir.display()));
    }

    let mut cache = TableCache::new();
    let mut cases = Vec::new();
    let mut matches = Vec::new();
    let mut oracle = OracleTally::default();
    let mut results_by_name: BTreeMap<String, String> = BTreeMap::new();
    let mut match_specs: Vec<(String, String)> = Vec::new();

    for path in &entries {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("<non-utf8>")
            .to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let case = match CaseFile::parse(&name, &text) {
            Ok(c) => c,
            Err(e) => {
                cases.push(CaseStatus { name, pass: false, detail: format!("parse: {e}") });
                continue;
            }
        };
        let outcome = match run_case(&case.spec, &mut cache) {
            Ok(o) => o,
            Err(e) => {
                cases.push(CaseStatus { name, pass: false, detail: format!("run: {e}") });
                continue;
            }
        };
        oracle.reliable += outcome.oracle.reliable;
        oracle.covered += outcome.oracle.covered;
        oracle.confidence_sum += outcome.oracle.confidence_sum;
        results_by_name.insert(name.clone(), outcome.result_lines.clone());
        if let Some(target) = &case.spec.answers_match {
            match_specs.push((name.clone(), target.clone()));
        }

        match mode {
            CorpusMode::Verify => {
                let pass = case.expect == outcome.rendered;
                let detail = if pass {
                    String::new()
                } else if case.expect.is_empty() {
                    "unblessed (no [expect] section); run bless".to_string()
                } else {
                    first_diff(&case.expect, &outcome.rendered)
                };
                cases.push(CaseStatus { name, pass, detail });
            }
            CorpusMode::Bless { out } => {
                let target = match out {
                    Some(d) => d.join(path.file_name().unwrap_or_default()),
                    None => path.clone(),
                };
                if let Some(parent) = target.parent() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
                }
                let bytes = case.render_with_expect(&outcome.rendered);
                std::fs::write(&target, bytes)
                    .map_err(|e| format!("write {}: {e}", target.display()))?;
                cases.push(CaseStatus { name, pass: true, detail: String::new() });
            }
        }
    }

    for (name, target) in match_specs {
        let ok = match (results_by_name.get(&name), results_by_name.get(&target)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        matches.push((name, target, ok));
    }

    let empirical = if oracle.reliable > 0 {
        oracle.covered as f64 / oracle.reliable as f64
    } else {
        0.0
    };
    let nominal = if oracle.reliable > 0 {
        oracle.confidence_sum / oracle.reliable as f64
    } else {
        0.0
    };
    let coverage_ok =
        oracle.reliable > 0 && (empirical - nominal).abs() <= COVERAGE_TOLERANCE + 1e-12;
    let pass = cases.iter().all(|c| c.pass)
        && matches.iter().all(|(_, _, ok)| *ok)
        && coverage_ok;

    Ok(CorpusReport { cases, matches, oracle, empirical, nominal, pass })
}

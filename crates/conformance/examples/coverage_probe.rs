//! One-off probe: acceptance rate and CI coverage per scalar query
//! family across many session seeds (not part of the corpus).
fn main() {
    let table = aqp_workload::conviva_sessions_table(20000, 4, 7);
    let events = aqp_workload::facebook_events_table(20000, 4, 11);
    let queries = [
        ("sessions", "SELECT AVG(bitrate) FROM sessions"),
        ("sessions", "SELECT SUM(bitrate) FROM sessions"),
        ("sessions", "SELECT AVG(time) FROM sessions"),
        ("sessions", "SELECT SUM(bytes) FROM sessions"),
        ("sessions", "SELECT COUNT(*) FROM sessions WHERE bitrate > 2500"),
        ("sessions", "SELECT AVG(buffer_ratio) FROM sessions"),
        ("events", "SELECT AVG(latency_ms) FROM events"),
        ("events", "SELECT AVG(dwell_frac) FROM events"),
        ("events", "SELECT AVG(score) FROM events"),
        ("events", "SELECT SUM(wait_s) FROM events"),
    ];
    for (tname, sql) in queries {
        let t = if tname == "sessions" { table.clone() } else { events.clone() };
        // exact truth
        let obs = aqp_obs::ObsHandle::isolated(aqp_obs::Clock::mock());
        let s = aqp_core::AqpSession::new(aqp_core::SessionConfig { threads: 1, obs, ..Default::default() });
        s.register_table(t.clone()).unwrap();
        let truth = s.execute(sql).unwrap().scalar().unwrap().estimate;
        let (mut acc, mut cov, mut tot) = (0, 0, 0);
        for seed in 0..60u64 {
            let obs = aqp_obs::ObsHandle::isolated(aqp_obs::Clock::mock());
            let s = aqp_core::AqpSession::new(aqp_core::SessionConfig { seed: 1000 + seed * 13, threads: 1, obs, ..Default::default() });
            s.register_table(t.clone()).unwrap();
            s.build_samples(tname, &[4000], seed * 7 + 1).unwrap();
            let a = s.execute(sql).unwrap();
            tot += 1;
            if a.mode == aqp_core::AnswerMode::Approximate {
                let sc = a.scalar().unwrap();
                if sc.error_bars_reliable() {
                    acc += 1;
                    if sc.ci.as_ref().unwrap().contains(truth) { cov += 1; }
                }
            }
        }
        println!("{sql}: accepted {acc}/{tot} covered {cov}/{acc}");
    }
}

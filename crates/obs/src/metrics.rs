//! A lock-cheap metrics registry: counters, gauges, and fixed-bucket
//! latency histograms with deterministic snapshots.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed and
//! cheap to clone; after the one-time registration lookup every update
//! is a single atomic operation, safe to perform from worker threads.
//!
//! Naming convention: `aqp.<crate>.<name>` (e.g.
//! `aqp.stats.bootstrap_resamples`, `aqp.exec.worker_ms`). Histograms
//! record milliseconds and carry a `_ms` suffix.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::json::{push_f64, push_str_lit};

/// Default latency histogram bucket upper bounds, in milliseconds.
///
/// Spans 50µs .. 30s, roughly logarithmic; a final implicit overflow
/// bucket catches everything slower.
pub const DEFAULT_LATENCY_BUCKETS_MS: &[f64] = &[
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0,
    5_000.0, 10_000.0, 30_000.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket latency histogram (milliseconds).
///
/// Bucket boundaries are upper bounds; an implicit overflow bucket
/// catches observations beyond the last boundary. Recording is one
/// atomic increment plus one atomic add — no locks.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Upper bounds in milliseconds, strictly increasing.
    boundaries: Arc<Vec<f64>>,
    /// One count per boundary, plus the trailing overflow bucket.
    counts: Arc<Vec<AtomicU64>>,
    /// Total observed time in nanoseconds.
    sum_ns: Arc<AtomicU64>,
}

impl Histogram {
    fn new(boundaries: &[f64]) -> Self {
        let counts = (0..=boundaries.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            boundaries: Arc::new(boundaries.to_vec()),
            counts: Arc::new(counts),
            sum_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        self.record_ms(d.as_secs_f64() * 1e3);
    }

    /// Record one observation given directly in milliseconds.
    pub fn record_ms(&self, ms: f64) {
        let idx = self.boundaries.partition_point(|&b| b < ms);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let ns = (ms * 1e6).max(0.0) as u64;
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let sum_ms = self.sum_ns.load(Ordering::Relaxed) as f64 / 1e6;
        let buckets: Vec<(f64, u64)> = self
            .boundaries
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(counts)
            .collect();
        let pct = |q: f64| percentile_from_buckets(&buckets, count, q);
        HistogramSnapshot {
            count,
            sum_ms,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            buckets,
        }
    }
}

/// Estimate the `q`-quantile from cumulative bucket counts by linear
/// interpolation within the containing bucket. Deterministic for a
/// given set of counts; the overflow bucket clamps to the last finite
/// boundary.
fn percentile_from_buckets(buckets: &[(f64, u64)], total: u64, q: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let target = (q * total as f64).max(1.0);
    let mut cum = 0u64;
    let mut lower = 0.0f64;
    let last_finite = buckets
        .iter()
        .rev()
        .map(|&(b, _)| b)
        .find(|b| b.is_finite())
        .unwrap_or(0.0);
    for &(upper, n) in buckets {
        let next = cum + n;
        if (next as f64) >= target && n > 0 {
            if !upper.is_finite() {
                return last_finite;
            }
            let frac = (target - cum as f64) / n as f64;
            return lower + frac.clamp(0.0, 1.0) * (upper - lower);
        }
        cum = next;
        if upper.is_finite() {
            lower = upper;
        }
    }
    last_finite
}

/// Snapshot of one histogram: totals, interpolated percentiles, and the
/// raw bucket counts (`(upper_bound_ms, count)`; the final bound is
/// `+inf` for the overflow bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in milliseconds.
    pub sum_ms: f64,
    /// Median (interpolated).
    pub p50: f64,
    /// 95th percentile (interpolated).
    pub p95: f64,
    /// 99th percentile (interpolated).
    pub p99: f64,
    /// `(upper_bound_ms, count)` per bucket, overflow last.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry: a named family of counters, gauges, and histograms.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short mutex;
/// callers are expected to cache the returned handle so the hot path
/// never touches the lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry (for isolated tests; production code usually
    /// shares [`MetricsRegistry::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared registry.
    pub fn global() -> Arc<MetricsRegistry> {
        static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())))
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned metrics mutex only means another thread panicked
        // mid-registration; the map itself is still structurally sound.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.lock().counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock().gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name` with the default latency
    /// buckets.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, DEFAULT_LATENCY_BUCKETS_MS)
    }

    /// Get or create the histogram `name` with explicit bucket upper
    /// bounds (milliseconds, strictly increasing). If the histogram
    /// already exists its original boundaries are kept.
    pub fn histogram_with(&self, name: &str, boundaries_ms: &[f64]) -> Histogram {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(boundaries_ms))
            .clone()
    }

    /// A deterministic (name-sorted) snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time, name-sorted view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Look up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Export as JSONL: one JSON object per metric per line, in sorted
    /// name order (deterministic for a fixed set of values).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_str_lit(&mut out, name);
            out.push_str(&format!(",\"value\":{v}}}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            push_str_lit(&mut out, name);
            out.push_str(",\"value\":");
            push_f64(&mut out, *v);
            out.push_str("}\n");
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            push_str_lit(&mut out, name);
            out.push_str(&format!(",\"count\":{}", h.count));
            out.push_str(",\"sum_ms\":");
            push_f64(&mut out, h.sum_ms);
            for (label, v) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99)] {
                out.push_str(&format!(",\"{label}\":"));
                push_f64(&mut out, v);
            }
            out.push_str(",\"buckets\":[");
            for (i, (le, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"le\":");
                push_f64(&mut out, *le);
                out.push_str(&format!(",\"count\":{n}}}"));
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Render as a human-readable aligned table.
    pub fn render_table(&self) -> String {
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.histograms.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<width$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<width$}  {v:.4}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<width$}  n={} mean={:.3}ms p50={:.3}ms p95={:.3}ms p99={:.3}ms\n",
                    h.count,
                    h.mean_ms(),
                    h.p50,
                    h.p95,
                    h.p99,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("aqp.test.c");
        c.inc();
        c.add(4);
        // A second lookup yields the same underlying counter.
        assert_eq!(reg.counter("aqp.test.c").get(), 5);
        let g = reg.gauge("aqp.test.g");
        g.set(2.5);
        assert_eq!(reg.gauge("aqp.test.g").get(), 2.5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive_edges() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("h", &[1.0, 10.0, 100.0]);
        // On the boundary -> that bucket; just above -> next bucket.
        h.record_ms(1.0);
        h.record_ms(1.0001);
        h.record_ms(10.0);
        h.record_ms(99.9);
        h.record_ms(100.1); // overflow
        let s = h.snapshot();
        let counts: Vec<u64> = s.buckets.iter().map(|&(_, n)| n).collect();
        assert_eq!(counts, vec![1, 2, 1, 1]);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn histogram_percentiles_interpolate_and_clamp() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("h", &[10.0, 20.0]);
        for _ in 0..100 {
            h.record_ms(5.0); // all in the first bucket
        }
        let s = h.snapshot();
        // Median of 100 identical first-bucket entries: halfway by
        // interpolation, and in any case within the bucket.
        assert!(s.p50 > 0.0 && s.p50 <= 10.0, "{}", s.p50);
        assert!(s.p99 <= 10.0);
        // Overflow-only data clamps to the last finite boundary.
        let h2 = reg.histogram_with("h2", &[10.0, 20.0]);
        h2.record_ms(500.0);
        let s2 = h2.snapshot();
        assert_eq!(s2.p50, 20.0);
        assert_eq!(s2.p99, 20.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let reg = MetricsRegistry::new();
        let s = reg.histogram("h").snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.mean_ms(), 0.0);
    }

    #[test]
    fn snapshot_is_name_sorted_and_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.gauge("z").set(1.0);
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1.counters, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
        assert_eq!(s1.counters, s2.counters);
        assert_eq!(s1.to_jsonl(), s2.to_jsonl());
    }

    #[test]
    fn jsonl_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("aqp.x.n").add(3);
        reg.histogram_with("aqp.x.lat_ms", &[1.0]).record_ms(0.5);
        let j = reg.snapshot().to_jsonl();
        let lines: Vec<&str> = j.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"type\":\"counter\",\"name\":\"aqp.x.n\",\"value\":3}");
        assert!(lines[1].starts_with("{\"type\":\"histogram\",\"name\":\"aqp.x.lat_ms\",\"count\":1"));
        assert!(lines[1].contains("\"buckets\":[{\"le\":1,\"count\":1},{\"le\":null,\"count\":0}]"));
    }

    #[test]
    fn jsonl_escapes_hostile_metric_names() {
        let reg = MetricsRegistry::new();
        reg.counter("aqp.\"weird\\name\"\n.hits").add(1);
        reg.gauge("g\tauge").set(1.0);
        let j = reg.snapshot().to_jsonl();
        // One object per line: escaped newlines must not split a record.
        assert_eq!(j.lines().count(), 2);
        assert!(j.contains(r#""name":"aqp.\"weird\\name\"\n.hits""#), "{j}");
        assert!(j.contains(r#""name":"g\tauge""#), "{j}");
        assert!(
            j.chars().all(|c| c == '\n' || (c as u32) >= 0x20),
            "raw control characters leaked into JSONL"
        );
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn table_rendering_lists_all_sections() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.gauge("g").set(0.5);
        reg.histogram("h").record(Duration::from_millis(2));
        let t = reg.snapshot().render_table();
        assert!(t.contains("counters:"));
        assert!(t.contains("gauges:"));
        assert!(t.contains("histograms:"));
        assert!(t.contains("n=1"));
    }
}

//! Memory accounting: an opt-in counting global allocator.
//!
//! Built with the `count-alloc` cargo feature, this module installs a
//! [`std::alloc::System`]-backed global allocator that counts every
//! allocation (count, cumulative bytes, live bytes, peak live bytes)
//! into process-wide atomics. The counters feed the `aqp.mem.*` metric
//! family and the per-stage `mem_allocs`/`mem_bytes` trace attributes
//! the engine attaches when accounting is on.
//!
//! Without the feature (the default), nothing is installed and
//! [`stats`] returns zeros with [`enabled`] `false`: traces, metrics,
//! and answers stay byte-identical to a build without this module, and
//! no unsafe code is compiled. Allocator counts are inherently
//! platform- and schedule-dependent, so they are *observability*, never
//! inputs to answers or to bit-stable artifacts.

// The GlobalAlloc impl is the one sanctioned unsafe block in the
// workspace, compiled only under the opt-in feature; the crate-root
// deny(unsafe_code) stays in force for everything else.
#[cfg(feature = "count-alloc")]
#[allow(unsafe_code)]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
    pub static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
    pub static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

    fn on_alloc(bytes: u64) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
        let live = CURRENT_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(bytes: u64) {
        let _ = CURRENT_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(bytes))
        });
    }

    /// [`System`] with counting side effects on every call.
    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}

/// A snapshot of the counting allocator's process-wide counters. All
/// zeros when the `count-alloc` feature is off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Allocations since process start.
    pub allocs: u64,
    /// Cumulative bytes allocated since process start.
    pub alloc_bytes: u64,
    /// Live (not yet freed) heap bytes.
    pub current_bytes: u64,
    /// High-water mark of live heap bytes.
    pub peak_bytes: u64,
}

impl MemStats {
    /// Growth from `earlier` to `self`: allocation count and cumulative
    /// bytes are differenced (saturating); live and peak bytes keep
    /// `self`'s absolute values, since "live at stage end" and "peak so
    /// far" are the meaningful per-stage readings.
    pub fn delta_since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            current_bytes: self.current_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

/// Whether the counting allocator is compiled in (`count-alloc`
/// feature). `const`, so disabled call sites fold away entirely.
pub const fn enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// The current allocator counters; all zeros when [`enabled`] is
/// `false`.
pub fn stats() -> MemStats {
    #[cfg(feature = "count-alloc")]
    {
        use std::sync::atomic::Ordering;
        MemStats {
            allocs: counting::ALLOCS.load(Ordering::Relaxed),
            alloc_bytes: counting::ALLOC_BYTES.load(Ordering::Relaxed),
            current_bytes: counting::CURRENT_BYTES.load(Ordering::Relaxed),
            peak_bytes: counting::PEAK_BYTES.load(Ordering::Relaxed),
        }
    }
    #[cfg(not(feature = "count-alloc"))]
    MemStats::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_track_the_feature_gate() {
        let s = stats();
        if enabled() {
            // Any running test binary has allocated by now.
            assert!(s.allocs > 0);
            assert!(s.peak_bytes >= s.current_bytes);
        } else {
            assert_eq!(s, MemStats::default());
        }
    }

    #[test]
    fn delta_differences_cumulative_counters_only() {
        let a = MemStats { allocs: 10, alloc_bytes: 100, current_bytes: 40, peak_bytes: 80 };
        let b = MemStats { allocs: 25, alloc_bytes: 260, current_bytes: 55, peak_bytes: 90 };
        let d = b.delta_since(&a);
        assert_eq!(d.allocs, 15);
        assert_eq!(d.alloc_bytes, 160);
        assert_eq!(d.current_bytes, 55);
        assert_eq!(d.peak_bytes, 90);
        // Saturating: a stale "earlier" never underflows.
        assert_eq!(a.delta_since(&b).allocs, 0);
    }

    #[test]
    fn allocations_move_the_counters_when_enabled() {
        if !enabled() {
            return;
        }
        let before = stats();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let after = stats();
        drop(v);
        assert!(after.allocs > before.allocs);
        assert!(after.alloc_bytes >= before.alloc_bytes + (1 << 16));
    }
}

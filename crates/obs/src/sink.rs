//! Append-only, size-rotated JSONL sinks.
//!
//! The audit subsystem (and any other long-running producer) persists
//! one JSON object per line through a [`JsonlSink`]. The sink appends —
//! never rewrites — and rotates the live file to `<path>.1`,
//! `<path>.2`, … when it would grow past a byte budget, dropping the
//! oldest rotation. All I/O errors are surfaced as `io::Result`; the
//! sink never panics on the write path.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::metrics::Counter;

/// An append-only JSONL file with size-based rotation.
///
/// `append` writes one line per call (a trailing newline is added when
/// missing). When the live file would exceed `max_bytes`, it is rotated
/// to `<path>.1` first (existing rotations shift up, the oldest beyond
/// `max_rotations` is dropped), so a line is never split across files.
/// Destroyed lines are not silently lost: attach a counter with
/// [`JsonlSink::with_dropped_lines_counter`]
/// (`aqp.obs.sink_dropped_lines`) and every rotation counts the lines
/// of the file it is about to drop or truncate.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    max_bytes: u64,
    max_rotations: usize,
    file: File,
    written: u64,
    dropped: Option<Counter>,
}

impl JsonlSink {
    /// Open (or create) the sink at `path`, appending to any existing
    /// content. `max_bytes` bounds the live file (at least 1);
    /// `max_rotations` is how many rotated files to keep (0 truncates in
    /// place on overflow).
    pub fn open(
        path: impl Into<PathBuf>,
        max_bytes: u64,
        max_rotations: usize,
    ) -> io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(JsonlSink {
            path,
            max_bytes: max_bytes.max(1),
            max_rotations,
            file,
            written,
            dropped: None,
        })
    }

    /// Count lines destroyed by rotation (oldest rotation dropped, or
    /// the live file truncated in place when `max_rotations == 0`) into
    /// `counter` instead of discarding them silently.
    pub fn with_dropped_lines_counter(mut self, counter: Counter) -> Self {
        self.dropped = Some(counter);
        self
    }

    /// The live file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently in the live file.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Append one JSONL line, rotating first if it would overflow the
    /// live file. A non-empty live file always accepts at least one
    /// line after rotation, so oversized lines are written, not lost.
    pub fn append(&mut self, line: &str) -> io::Result<()> {
        let extra = u64::from(!line.ends_with('\n'));
        let n = line.len() as u64 + extra;
        if self.written > 0 && self.written + n > self.max_bytes {
            self.rotate()?;
        }
        self.file.write_all(line.as_bytes())?;
        if extra == 1 {
            self.file.write_all(b"\n")?;
        }
        self.written += n;
        Ok(())
    }

    /// Flush buffered bytes to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.file.flush()?;
        if self.max_rotations == 0 {
            self.count_destroyed_lines(&self.path);
            self.file = File::create(&self.path)?;
        } else {
            self.count_destroyed_lines(&rotated(&self.path, self.max_rotations));
            for i in (1..self.max_rotations).rev() {
                let from = rotated(&self.path, i);
                if from.exists() {
                    std::fs::rename(&from, rotated(&self.path, i + 1))?;
                }
            }
            std::fs::rename(&self.path, rotated(&self.path, 1))?;
            self.file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        }
        self.written = 0;
        Ok(())
    }

    /// Count the lines of a file rotation is about to destroy into the
    /// dropped-lines counter. A missing file (nothing to destroy) or an
    /// unreadable one counts nothing; the write path never fails on
    /// accounting.
    fn count_destroyed_lines(&self, path: &Path) {
        let Some(counter) = &self.dropped else {
            return;
        };
        let Ok(bytes) = std::fs::read(path) else {
            return;
        };
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count() as u64;
        // A trailing partial line (no final newline) is still a lost line.
        let partial = u64::from(bytes.last().is_some_and(|&b| b != b'\n'));
        let lost = newlines + partial;
        if lost > 0 {
            counter.add(lost);
        }
    }
}

/// `foo.jsonl` → `foo.jsonl.<i>`.
fn rotated(path: &Path, i: usize) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(format!(".{i}"));
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aqp-obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn appends_lines_with_newlines() {
        let p = tmp("append.jsonl");
        let _ = std::fs::remove_file(&p);
        let mut s = JsonlSink::open(&p, 1 << 20, 2).unwrap();
        s.append("{\"a\":1}").unwrap();
        s.append("{\"b\":2}\n").unwrap();
        s.flush().unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body, "{\"a\":1}\n{\"b\":2}\n");
        assert_eq!(s.written(), body.len() as u64);
    }

    #[test]
    fn reopen_appends_to_existing_content() {
        let p = tmp("reopen.jsonl");
        let _ = std::fs::remove_file(&p);
        {
            let mut s = JsonlSink::open(&p, 1 << 20, 2).unwrap();
            s.append("one").unwrap();
        }
        let mut s = JsonlSink::open(&p, 1 << 20, 2).unwrap();
        s.append("two").unwrap();
        s.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "one\ntwo\n");
    }

    #[test]
    fn rotates_at_the_byte_budget_and_drops_oldest() {
        let p = tmp("rotate.jsonl");
        for i in 0..4 {
            let _ = std::fs::remove_file(rotated(&p, i));
        }
        let _ = std::fs::remove_file(&p);
        // Each line is 8 bytes with newline; budget fits exactly one.
        let mut s = JsonlSink::open(&p, 8, 2).unwrap();
        for line in ["line001", "line002", "line003", "line004"] {
            s.append(line).unwrap();
        }
        s.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "line004\n");
        assert_eq!(std::fs::read_to_string(rotated(&p, 1)).unwrap(), "line003\n");
        assert_eq!(std::fs::read_to_string(rotated(&p, 2)).unwrap(), "line002\n");
        // line001's rotation fell off the end.
        assert!(!rotated(&p, 3).exists());
    }

    #[test]
    fn zero_rotations_truncates_in_place() {
        let p = tmp("truncate.jsonl");
        let _ = std::fs::remove_file(&p);
        let mut s = JsonlSink::open(&p, 8, 0).unwrap();
        s.append("line001").unwrap();
        s.append("line002").unwrap();
        s.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "line002\n");
        assert!(!rotated(&p, 1).exists());
    }

    #[test]
    fn rotation_counts_destroyed_lines() {
        let p = tmp("dropped.jsonl");
        for i in 1..4 {
            let _ = std::fs::remove_file(rotated(&p, i));
        }
        let _ = std::fs::remove_file(&p);
        let reg = crate::MetricsRegistry::new();
        let c = reg.counter(crate::name::OBS_SINK_DROPPED_LINES);
        // Budget fits exactly one 8-byte line; one rotation kept.
        let mut s = JsonlSink::open(&p, 8, 1).unwrap().with_dropped_lines_counter(c.clone());
        s.append("line001").unwrap(); // live
        s.append("line002").unwrap(); // rotates; .1 empty before → 0 dropped
        assert_eq!(c.get(), 0);
        s.append("line003").unwrap(); // rotates; old .1 (line001) destroyed
        assert_eq!(c.get(), 1);
        s.append("line004").unwrap();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn truncation_in_place_counts_destroyed_lines() {
        let p = tmp("dropped_trunc.jsonl");
        let _ = std::fs::remove_file(&p);
        let reg = crate::MetricsRegistry::new();
        let c = reg.counter(crate::name::OBS_SINK_DROPPED_LINES);
        let mut s = JsonlSink::open(&p, 16, 0).unwrap().with_dropped_lines_counter(c.clone());
        s.append("line001").unwrap();
        s.append("line002").unwrap(); // both fit (16 bytes)
        s.append("line003").unwrap(); // truncates in place: 2 lines lost
        assert_eq!(c.get(), 2);
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "line003\n");
    }

    #[test]
    fn rotation_counts_every_line_of_multiline_files() {
        let p = tmp("dropped_multi.jsonl");
        for i in 1..4 {
            let _ = std::fs::remove_file(rotated(&p, i));
        }
        let _ = std::fs::remove_file(&p);
        let reg = crate::MetricsRegistry::new();
        let c = reg.counter(crate::name::OBS_SINK_DROPPED_LINES);
        // Budget fits exactly two 8-byte lines per file; one rotation
        // kept, so each destroyed .1 carries TWO lines.
        let mut s = JsonlSink::open(&p, 16, 1).unwrap().with_dropped_lines_counter(c.clone());
        for i in 0..4 {
            s.append(&format!("line00{i}")).unwrap();
        }
        // Files: live = {2,3}, .1 = {0,1}; nothing destroyed yet.
        assert_eq!(c.get(), 0);
        s.append("line004").unwrap(); // rotation destroys .1's two lines
        assert_eq!(c.get(), 2);
        for i in 5..7 {
            s.append(&format!("line00{i}")).unwrap();
        }
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn partial_trailing_line_counts_as_lost() {
        let p = tmp("dropped_partial.jsonl");
        for i in 1..3 {
            let _ = std::fs::remove_file(rotated(&p, i));
        }
        let _ = std::fs::remove_file(&p);
        // A pre-existing oldest rotation holding one full line plus a
        // trailing partial (interrupted write): both are real data the
        // next rotation destroys.
        std::fs::write(rotated(&p, 1), "full-line\npartial-without-newline").unwrap();
        let reg = crate::MetricsRegistry::new();
        let c = reg.counter(crate::name::OBS_SINK_DROPPED_LINES);
        let mut s = JsonlSink::open(&p, 8, 1).unwrap().with_dropped_lines_counter(c.clone());
        s.append("line001").unwrap(); // live
        s.append("line002").unwrap(); // rotates: destroys the stale .1
        assert_eq!(c.get(), 2, "one full + one partial line destroyed");
    }

    #[test]
    fn oversized_line_accounting_under_truncation() {
        let p = tmp("dropped_oversize.jsonl");
        let _ = std::fs::remove_file(&p);
        let reg = crate::MetricsRegistry::new();
        let c = reg.counter(crate::name::OBS_SINK_DROPPED_LINES);
        let mut s = JsonlSink::open(&p, 8, 0).unwrap().with_dropped_lines_counter(c.clone());
        // The oversized line is written whole (never split, never lost
        // on the way in)...
        s.append("a-very-long-line-beyond-budget").unwrap();
        s.flush().unwrap();
        assert_eq!(c.get(), 0);
        assert_eq!(
            std::fs::read_to_string(&p).unwrap(),
            "a-very-long-line-beyond-budget\n"
        );
        // ...and counts exactly once when truncation later destroys it.
        s.append("next").unwrap();
        assert_eq!(c.get(), 1);
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "next\n");
    }

    #[test]
    fn no_counter_configured_means_silent_rotation() {
        let p = tmp("dropped_unwired.jsonl");
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(rotated(&p, 1));
        let reg = crate::MetricsRegistry::new();
        let mut s = JsonlSink::open(&p, 8, 0).unwrap();
        s.append("line001").unwrap();
        s.append("line002").unwrap(); // truncates; no counter attached
        drop(s);
        // Absence-is-data: the registry never saw the metric at all.
        let snap = reg.snapshot();
        assert!(snap.counter(crate::name::OBS_SINK_DROPPED_LINES).is_none());
    }

    #[test]
    fn oversized_line_is_still_written() {
        let p = tmp("oversize.jsonl");
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(rotated(&p, 1));
        let mut s = JsonlSink::open(&p, 4, 1).unwrap();
        s.append("a-very-long-line-beyond-budget").unwrap();
        s.flush().unwrap();
        assert_eq!(
            std::fs::read_to_string(&p).unwrap(),
            "a-very-long-line-beyond-budget\n"
        );
    }
}

//! Shared SQL-substring workload-class router.
//!
//! Three subsystems bucket queries into workload classes from the query
//! text: the SLO engine (objectives per class), the continuous profiler
//! (fleet profiles per class), and the introspection pipeline
//! (`_telemetry.*` rows tagged per class). They must slice the fleet
//! identically, so the routing lives here once: an ordered list of
//! case-sensitive substring rules, first match wins, everything else in
//! [`DEFAULT_CLASS`].

/// The class queries fall into when no [`ClassRule`] matches.
pub const DEFAULT_CLASS: &str = "default";

/// One routing rule: queries whose SQL contains `sql_contains` belong
/// to `class`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassRule {
    /// Class name (used in objective ids, profiles, and dashboards).
    pub class: String,
    /// Case-sensitive substring the query's SQL must contain.
    pub sql_contains: String,
}

/// An ordered set of [`ClassRule`]s; the first matching rule wins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassRouter {
    /// The rules, in priority order.
    pub rules: Vec<ClassRule>,
}

impl ClassRouter {
    /// An empty router: every query lands in [`DEFAULT_CLASS`].
    pub fn new() -> Self {
        ClassRouter::default()
    }

    /// Append a rule routing queries whose SQL contains `sql_contains`
    /// to `class`. Rules are tried in registration order.
    pub fn with_rule(mut self, class: &str, sql_contains: &str) -> Self {
        self.push_rule(class, sql_contains);
        self
    }

    /// In-place form of [`ClassRouter::with_rule`].
    pub fn push_rule(&mut self, class: &str, sql_contains: &str) {
        self.rules.push(ClassRule {
            class: class.to_string(),
            sql_contains: sql_contains.to_string(),
        });
    }

    /// The workload class for `sql`: the first matching rule's class,
    /// else [`DEFAULT_CLASS`].
    pub fn classify<'a>(&'a self, sql: &str) -> &'a str {
        self.rules
            .iter()
            .find(|r| sql.contains(r.sql_contains.as_str()))
            .map(|r| r.class.as_str())
            .unwrap_or(DEFAULT_CLASS)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_match_wins_with_default_fallback() {
        let r = ClassRouter::new()
            .with_rule("interactive", "AVG(")
            .with_rule("batch", "SUM(");
        assert_eq!(r.classify("SELECT AVG(time) FROM sessions"), "interactive");
        assert_eq!(r.classify("SELECT SUM(bytes) FROM sessions"), "batch");
        // Both rules match; registration order decides.
        assert_eq!(r.classify("SELECT AVG(a), SUM(b) FROM t"), "interactive");
        assert_eq!(r.classify("SELECT COUNT(*) FROM t"), DEFAULT_CLASS);
    }

    #[test]
    fn empty_router_routes_everything_to_default() {
        let r = ClassRouter::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.classify("anything"), DEFAULT_CLASS);
    }

    #[test]
    fn matching_is_case_sensitive() {
        let r = ClassRouter::new().with_rule("dash", "FROM sessions");
        assert_eq!(r.classify("SELECT 1 FROM SESSIONS"), DEFAULT_CLASS);
        assert_eq!(r.classify("SELECT 1 FROM sessions"), "dash");
    }

    #[test]
    fn overlapping_substrings_resolve_by_registration_order() {
        // "AVG(" is a strict substring of "AVG(time)": whichever rule is
        // registered first claims queries matching both. Pin both
        // orderings so a future "longest match wins" change cannot land
        // silently.
        let broad_first =
            ClassRouter::new().with_rule("broad", "AVG(").with_rule("narrow", "AVG(time)");
        assert_eq!(broad_first.classify("SELECT AVG(time) FROM s"), "broad");
        let narrow_first =
            ClassRouter::new().with_rule("narrow", "AVG(time)").with_rule("broad", "AVG(");
        assert_eq!(narrow_first.classify("SELECT AVG(time) FROM s"), "narrow");
        // A query matching only the broad pattern still falls through
        // the narrow rule to the broad one.
        assert_eq!(narrow_first.classify("SELECT AVG(bytes) FROM s"), "broad");
    }

    #[test]
    fn empty_substring_rule_matches_every_query() {
        // An empty needle is contained in every haystack: such a rule
        // is a catch-all and shadows everything registered after it.
        let r = ClassRouter::new().with_rule("all", "").with_rule("never", "SELECT");
        assert_eq!(r.classify("SELECT 1"), "all");
        assert_eq!(r.classify(""), "all");
    }

    #[test]
    fn duplicate_class_names_keep_first_match_semantics() {
        // Two rules may route to the same class; the router never
        // deduplicates or reorders.
        let r = ClassRouter::new()
            .with_rule("reports", "GROUP BY city")
            .with_rule("interactive", "AVG(")
            .with_rule("reports", "GROUP BY site");
        assert_eq!(r.classify("SELECT site, AVG(b) FROM s GROUP BY site"), "interactive");
        assert_eq!(r.classify("SELECT city, SUM(b) FROM s GROUP BY city"), "reports");
        assert_eq!(r.classify("SELECT site, SUM(b) FROM s GROUP BY site"), "reports");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn class_miss_routes_to_default_even_with_many_rules() {
        let mut r = ClassRouter::new();
        for i in 0..32 {
            r.push_rule(&format!("class{i}"), &format!("NEEDLE_{i}"));
        }
        assert!(!r.is_empty());
        assert_eq!(r.classify("SELECT COUNT(*) FROM t"), DEFAULT_CLASS);
        // A late rule still beats the default when nothing earlier
        // matches...
        assert_eq!(r.classify("SELECT NEEDLE_9"), "class9");
        // ...but substring semantics mean "NEEDLE_31" is claimed by the
        // earlier "NEEDLE_3" rule, not the exact "NEEDLE_31" one —
        // routing tables must order specific needles before their
        // prefixes (see overlapping_substrings_resolve_by_registration_order).
        assert_eq!(r.classify("SELECT NEEDLE_31"), "class3");
    }
}

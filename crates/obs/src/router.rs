//! Shared SQL-substring workload-class router.
//!
//! Three subsystems bucket queries into workload classes from the query
//! text: the SLO engine (objectives per class), the continuous profiler
//! (fleet profiles per class), and the introspection pipeline
//! (`_telemetry.*` rows tagged per class). They must slice the fleet
//! identically, so the routing lives here once: an ordered list of
//! case-sensitive substring rules, first match wins, everything else in
//! [`DEFAULT_CLASS`].

/// The class queries fall into when no [`ClassRule`] matches.
pub const DEFAULT_CLASS: &str = "default";

/// One routing rule: queries whose SQL contains `sql_contains` belong
/// to `class`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassRule {
    /// Class name (used in objective ids, profiles, and dashboards).
    pub class: String,
    /// Case-sensitive substring the query's SQL must contain.
    pub sql_contains: String,
}

/// An ordered set of [`ClassRule`]s; the first matching rule wins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassRouter {
    /// The rules, in priority order.
    pub rules: Vec<ClassRule>,
}

impl ClassRouter {
    /// An empty router: every query lands in [`DEFAULT_CLASS`].
    pub fn new() -> Self {
        ClassRouter::default()
    }

    /// Append a rule routing queries whose SQL contains `sql_contains`
    /// to `class`. Rules are tried in registration order.
    pub fn with_rule(mut self, class: &str, sql_contains: &str) -> Self {
        self.push_rule(class, sql_contains);
        self
    }

    /// In-place form of [`ClassRouter::with_rule`].
    pub fn push_rule(&mut self, class: &str, sql_contains: &str) {
        self.rules.push(ClassRule {
            class: class.to_string(),
            sql_contains: sql_contains.to_string(),
        });
    }

    /// The workload class for `sql`: the first matching rule's class,
    /// else [`DEFAULT_CLASS`].
    pub fn classify<'a>(&'a self, sql: &str) -> &'a str {
        self.rules
            .iter()
            .find(|r| sql.contains(r.sql_contains.as_str()))
            .map(|r| r.class.as_str())
            .unwrap_or(DEFAULT_CLASS)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_match_wins_with_default_fallback() {
        let r = ClassRouter::new()
            .with_rule("interactive", "AVG(")
            .with_rule("batch", "SUM(");
        assert_eq!(r.classify("SELECT AVG(time) FROM sessions"), "interactive");
        assert_eq!(r.classify("SELECT SUM(bytes) FROM sessions"), "batch");
        // Both rules match; registration order decides.
        assert_eq!(r.classify("SELECT AVG(a), SUM(b) FROM t"), "interactive");
        assert_eq!(r.classify("SELECT COUNT(*) FROM t"), DEFAULT_CLASS);
    }

    #[test]
    fn empty_router_routes_everything_to_default() {
        let r = ClassRouter::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.classify("anything"), DEFAULT_CLASS);
    }

    #[test]
    fn matching_is_case_sensitive() {
        let r = ClassRouter::new().with_rule("dash", "FROM sessions");
        assert_eq!(r.classify("SELECT 1 FROM SESSIONS"), DEFAULT_CLASS);
        assert_eq!(r.classify("SELECT 1 FROM sessions"), "dash");
    }
}

//! Time sources: a monotonic real clock and a deterministic mock.
//!
//! All timing in the workspace routes through [`Clock`] (enforced by the
//! `timing-discipline` lint rule): production code uses [`Clock::Real`],
//! tests use [`Clock::mock`] so latency-dependent assertions are exactly
//! reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A monotonic point in time, in nanoseconds since the clock's epoch.
///
/// For [`Clock::Real`] the epoch is the first observation made by any
/// real clock in the process; for mocks it is whatever the mock was
/// constructed at. Timestamps from different clocks are not comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Construct from raw nanoseconds since the clock epoch.
    pub fn from_nanos(nanos: u64) -> Self {
        Timestamp(nanos)
    }

    /// Nanoseconds since the clock epoch.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is
    /// in the future (which can only happen across distinct clocks).
    pub fn duration_since(self, earlier: Timestamp) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

/// The process-wide monotonic anchor for the real clock. All real
/// timestamps are measured relative to this single `Instant`, which
/// keeps them mutually comparable.
fn real_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// A time source: the real monotonic clock, or a manually-advanced mock.
///
/// Clones share the underlying source: advancing one mock handle is
/// visible through every clone.
#[derive(Debug, Clone, Default)]
pub enum Clock {
    /// The OS monotonic clock (process-wide epoch).
    #[default]
    Real,
    /// A deterministic clock that only moves when [`Clock::advance`] is
    /// called. Starts at the nanosecond count it was constructed with.
    Mock(Arc<AtomicU64>),
}

impl Clock {
    /// The real monotonic clock.
    pub fn real() -> Self {
        Clock::Real
    }

    /// A deterministic mock starting at t = 0.
    pub fn mock() -> Self {
        Clock::mock_at(0)
    }

    /// A deterministic mock starting at `nanos` since its epoch.
    pub fn mock_at(nanos: u64) -> Self {
        Clock::Mock(Arc::new(AtomicU64::new(nanos)))
    }

    /// Whether this is a mock (deterministic) clock.
    pub fn is_mock(&self) -> bool {
        matches!(self, Clock::Mock(_))
    }

    /// The current time on this clock.
    pub fn now(&self) -> Timestamp {
        match self {
            Clock::Real => {
                let anchor = real_anchor();
                Timestamp(anchor.elapsed().as_nanos() as u64)
            }
            Clock::Mock(t) => Timestamp(t.load(Ordering::SeqCst)),
        }
    }

    /// Advance a mock clock by `d`. On the real clock this is a no-op —
    /// real time cannot be steered.
    pub fn advance(&self, d: Duration) {
        if let Clock::Mock(t) = self {
            t.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
        }
    }

    /// Run `f` and return its result together with the elapsed time on
    /// this clock.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> (T, Duration) {
        let start = self.now();
        let out = f();
        (out, self.now().duration_since(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_is_deterministic_and_shared_across_clones() {
        let c = Clock::mock();
        assert!(c.is_mock());
        assert_eq!(c.now(), Timestamp::from_nanos(0));
        let c2 = c.clone();
        c.advance(Duration::from_micros(5));
        assert_eq!(c2.now().nanos(), 5_000);
        c2.advance(Duration::from_nanos(3));
        assert_eq!(c.now().nanos(), 5_003);
    }

    #[test]
    fn mock_time_measures_exactly_the_advance() {
        let c = Clock::mock_at(1_000);
        let (v, d) = c.time(|| {
            c.advance(Duration::from_millis(7));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(d, Duration::from_millis(7));
    }

    #[test]
    fn real_clock_is_monotone() {
        let c = Clock::real();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        // advance() on the real clock is a documented no-op.
        c.advance(Duration::from_secs(1_000_000));
        let d = c.now();
        assert!(d.duration_since(b) < Duration::from_secs(1_000));
    }

    #[test]
    fn duration_since_saturates() {
        let early = Timestamp::from_nanos(10);
        let late = Timestamp::from_nanos(30);
        assert_eq!(late.duration_since(early), Duration::from_nanos(20));
        assert_eq!(early.duration_since(late), Duration::ZERO);
    }
}

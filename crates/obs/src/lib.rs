//! `aqp-obs`: the observability substrate of the AQP pipeline.
//!
//! The paper's pitch is *knowing when you're wrong*; this crate makes
//! sure the system also knows *where time goes and how often the
//! diagnostic fires*. It is std-only and provides three pieces:
//!
//! * [`Clock`] — a monotonic time source with a deterministic mock, so
//!   every timing in the workspace is steerable in tests. The
//!   `timing-discipline` lint rule forbids raw `std::time::Instant` /
//!   `SystemTime` outside this crate.
//! * [`MetricsRegistry`] — lock-cheap counters, gauges, and
//!   fixed-bucket latency histograms with p50/p95/p99 snapshots,
//!   exported as JSONL or a human-readable table. Metric names follow
//!   `aqp.<crate>.<name>` (see [`name`]).
//! * [`QueryTrace`] / [`TraceRecorder`] — a span tree over the query
//!   lifecycle: parse → plan/rewrite → sample selection → scan/exec
//!   (per-operator, per-worker) → error estimation (closed-form vs
//!   bootstrap, resample count) → diagnostic verdict.
//!
//! # Wiring
//!
//! [`ObsHandle`] bundles a clock with a registry and rides inside
//! `ApproxOptions` / `SessionConfig`. Its default shares the
//! process-global registry; tests use [`ObsHandle::isolated`] with a
//! mock clock for full determinism. Leaf crates that have no handle in
//! scope (sql, stats, diagnostics, cluster) increment well-known
//! counters on the global registry directly.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod clock;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod router;
pub mod sink;
pub mod trace;

pub use alloc::MemStats;
pub use clock::{Clock, Timestamp};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use recorder::{FlightRecorder, FlightRecorderConfig};
pub use router::{ClassRouter, ClassRule};
pub use sink::JsonlSink;
pub use trace::{stage, QueryTrace, Span, SpanId, TraceRecorder};

use std::sync::Arc;
use std::time::Duration;

/// Well-known metric names (`aqp.<crate>.<name>`), so producers and
/// dashboards agree on spelling.
pub mod name {
    /// Queries executed through `AqpSession::execute`.
    pub const CORE_QUERIES: &str = "aqp.core.queries_executed";
    /// Full exact fallbacks after a rejected diagnostic.
    pub const CORE_FALLBACKS_EXACT: &str = "aqp.core.fallbacks_exact";
    /// Partial (per-group) fallbacks.
    pub const CORE_FALLBACKS_PARTIAL: &str = "aqp.core.fallbacks_partial";
    /// End-to-end session query latency histogram (ms).
    pub const CORE_QUERY_MS: &str = "aqp.core.query_ms";
    /// Queries parsed by `sql::parse_query`.
    pub const SQL_QUERIES_PARSED: &str = "aqp.sql.queries_parsed";
    /// Logical plans produced by `sql::plan_query`.
    pub const SQL_PLANS_BUILT: &str = "aqp.sql.plans_built";
    /// Plans rewritten for single-scan error estimation.
    pub const SQL_PLANS_REWRITTEN: &str = "aqp.sql.plans_rewritten";
    /// `execute_approx` invocations.
    pub const EXEC_APPROX_QUERIES: &str = "aqp.exec.approx_queries";
    /// Per-worker busy-time histogram (ms) from `exec::parallel`.
    pub const EXEC_WORKER_MS: &str = "aqp.exec.worker_ms";
    /// Workers whose busy time exceeded the straggler threshold.
    pub const EXEC_STRAGGLERS: &str = "aqp.exec.stragglers_detected";
    /// Bootstrap resamples drawn (replicates across all estimators).
    pub const STATS_BOOTSTRAP_RESAMPLES: &str = "aqp.stats.bootstrap_resamples";
    /// Diagnostic runs that accepted the error estimate.
    pub const DIAG_ACCEPTED: &str = "aqp.diagnostics.accepted";
    /// Diagnostic runs that rejected the error estimate.
    pub const DIAG_REJECTED: &str = "aqp.diagnostics.rejected";
    /// Per-level deviation checks that failed (|θ−θS| too large).
    pub const DIAG_DEVIATION_FAILURES: &str = "aqp.diagnostics.deviation_check_failures";
    /// Per-level spread checks that failed (ξ widths not shrinking).
    pub const DIAG_SPREAD_FAILURES: &str = "aqp.diagnostics.spread_check_failures";
    /// Final-proportion checks that failed (too few OK subsamples).
    pub const DIAG_PROPORTION_FAILURES: &str = "aqp.diagnostics.proportion_check_failures";
    /// Cluster-sim jobs simulated.
    pub const CLUSTER_JOBS: &str = "aqp.cluster.jobs_simulated";
    /// Cluster-sim tasks simulated.
    pub const CLUSTER_TASKS: &str = "aqp.cluster.tasks_simulated";
    /// Cluster-sim tasks that drew a straggler delay.
    pub const CLUSTER_STRAGGLER_TASKS: &str = "aqp.cluster.straggler_tasks";
    /// Approximate answers the accuracy auditor considered for sampling.
    pub const AUDIT_CONSIDERED: &str = "aqp.audit.queries_considered";
    /// Queries the auditor actually replayed at full data.
    pub const AUDIT_AUDITED: &str = "aqp.audit.queries_audited";
    /// Individual group-aggregate results scored by the auditor.
    pub const AUDIT_RESULTS_SCORED: &str = "aqp.audit.results_scored";
    /// Claimed confidence intervals that covered the replayed truth.
    pub const AUDIT_COVERAGE_HITS: &str = "aqp.audit.coverage_hits";
    /// Claimed confidence intervals that missed the replayed truth.
    pub const AUDIT_COVERAGE_MISSES: &str = "aqp.audit.coverage_misses";
    /// Audited results where the diagnostic accepted and the CI covered.
    pub const AUDIT_TRUE_ACCEPTS: &str = "aqp.audit.diag_true_accepts";
    /// Audited results where the diagnostic rejected and the CI missed.
    pub const AUDIT_TRUE_REJECTS: &str = "aqp.audit.diag_true_rejects";
    /// Audited results where the diagnostic accepted a missing CI (the
    /// dangerous cell).
    pub const AUDIT_FALSE_POSITIVES: &str = "aqp.audit.diag_false_positives";
    /// Audited results where the diagnostic rejected a covering CI (the
    /// wasteful cell).
    pub const AUDIT_FALSE_NEGATIVES: &str = "aqp.audit.diag_false_negatives";
    /// Threshold alerts fired by the auditor's sliding windows.
    pub const AUDIT_ALERTS_FIRED: &str = "aqp.audit.alerts_fired";
    /// Overall sliding-window CI coverage rate (gauge, 0..1).
    pub const AUDIT_WINDOW_COVERAGE: &str = "aqp.audit.window_coverage";
    /// Full-data replay latency per audited query (histogram, ms).
    pub const AUDIT_REPLAY_MS: &str = "aqp.audit.replay_ms";
    /// Audit-log lines that failed to write (sink I/O errors).
    pub const AUDIT_LOG_ERRORS: &str = "aqp.audit.log_write_errors";

    /// Fault events injected into scan tasks (all kinds).
    pub const FAULTS_INJECTED: &str = "aqp.faults.injected_total";
    /// Task attempts retried after an injected failure or timeout.
    pub const FAULTS_RETRIES: &str = "aqp.faults.retries";
    /// Task attempts abandoned by the per-task timeout.
    pub const FAULTS_TIMEOUTS: &str = "aqp.faults.task_timeouts";
    /// Speculative clones launched against straggling attempts.
    pub const FAULTS_SPECULATIVE_LAUNCHED: &str = "aqp.faults.speculative_launched";
    /// Speculative clones that beat their straggling primary.
    pub const FAULTS_SPECULATIVE_WINS: &str = "aqp.faults.speculative_wins";
    /// Sample partitions lost after recovery ran out.
    pub const FAULTS_PARTITIONS_LOST: &str = "aqp.faults.partitions_lost";
    /// Sample partitions abandoned early by blacklisting.
    pub const FAULTS_PARTITIONS_BLACKLISTED: &str = "aqp.faults.partitions_blacklisted";
    /// Sample rows missing from the effective sample (lost + truncated).
    pub const FAULTS_ROWS_LOST: &str = "aqp.faults.rows_lost";
    /// Queries that completed from a reduced sample with widened CIs.
    pub const FAULTS_DEGRADED_QUERIES: &str = "aqp.faults.degraded_queries";
    /// Queries that fell back to exact execution because fault losses
    /// exceeded the recovery policy's tolerance.
    pub const FAULTS_EXACT_FALLBACKS: &str = "aqp.faults.exact_fallbacks";
    /// Injected delay charged per scan (histogram, ms — straggler
    /// waits plus retry backoff).
    pub const FAULTS_INJECTED_DELAY_MS: &str = "aqp.faults.injected_delay_ms";

    /// Completed query traces currently retained by the flight
    /// recorder's ring buffer (gauge).
    pub const OBS_RECORDER_RETAINED: &str = "aqp.obs.recorder_traces_retained";
    /// Oldest traces evicted from the flight recorder's ring.
    pub const OBS_RECORDER_EVICTIONS: &str = "aqp.obs.recorder_evictions";
    /// Flight-recorder dump artifacts produced at alert time.
    pub const OBS_RECORDER_DUMPS: &str = "aqp.obs.recorder_dumps";
    /// Flight-recorder dump artifacts that failed to append to disk
    /// (sink I/O errors; the query path never fails on them).
    pub const OBS_RECORDER_DUMP_ERRORS: &str = "aqp.obs.recorder_dump_write_errors";
    /// JSONL lines destroyed by sink rotation (oldest rotation dropped,
    /// or the live file truncated in place) — absence-is-data: silent
    /// log loss becomes a visible counter.
    pub const OBS_SINK_DROPPED_LINES: &str = "aqp.obs.sink_dropped_lines";

    /// Per-query SLO events observed (one per objective per query).
    pub const SLO_EVENTS: &str = "aqp.slo.events_observed";
    /// SLO events that consumed error budget (latency over threshold or
    /// a CI-coverage miss).
    pub const SLO_EVENTS_BAD: &str = "aqp.slo.events_bad";
    /// Page-severity burn-rate alerts latched (fast 5m/1h windows).
    pub const SLO_PAGE_ALERTS: &str = "aqp.slo.page_alerts_fired";
    /// Warn-severity burn-rate alerts latched (slow 6h/3d windows).
    pub const SLO_WARN_ALERTS: &str = "aqp.slo.warn_alerts_fired";
    /// Worst burn rate across objectives over the fast window pair
    /// (gauge; 1.0 = spending budget exactly at the sustainable rate).
    pub const SLO_WORST_BURN_FAST: &str = "aqp.slo.worst_burn_fast";
    /// Worst burn rate across objectives over the slow window pair
    /// (gauge).
    pub const SLO_WORST_BURN_SLOW: &str = "aqp.slo.worst_burn_slow";
    /// Smallest remaining error-budget fraction across objectives over
    /// the slow 3d window (gauge, 0..1).
    pub const SLO_MIN_BUDGET_REMAINING: &str = "aqp.slo.min_budget_remaining";
    /// Online drift signals raised by the EWMA / Page-Hinkley detectors.
    pub const SLO_DRIFT_SIGNALS: &str = "aqp.slo.drift_signals";
    /// SLO-log lines that failed to write (sink I/O errors).
    pub const SLO_LOG_ERRORS: &str = "aqp.slo.log_write_errors";
    /// Wall-clock spent in SLO observation + evaluation per query
    /// (histogram, ms — the <5% overhead budget is enforced on it).
    pub const SLO_EVAL_MS: &str = "aqp.slo.eval_ms";

    /// Queries folded into the session's fleet-cumulative operator
    /// profile (contprof enabled only).
    pub const PROF_CONTPROF_QUERIES: &str = "aqp.prof.contprof_queries";
    /// Wall-clock spent folding a query's profile into the cumulative
    /// profile (histogram, ms — the <5% overhead budget is enforced on
    /// it; contprof enabled only).
    pub const PROF_CONTPROF_EVAL_MS: &str = "aqp.prof.contprof_eval_ms";

    /// Queries whose telemetry (spans, timings, faults, operator rows)
    /// was folded into the `_telemetry.*` tables (introspect enabled
    /// only).
    pub const INTROSPECT_QUERIES_FOLDED: &str = "aqp.introspect.queries_folded";
    /// Rows ingested across all `_telemetry.*` reservoir tables.
    pub const INTROSPECT_ROWS_INGESTED: &str = "aqp.introspect.rows_ingested";
    /// Rows rejected or evicted by the seeded reservoirs after a
    /// table's row budget filled (the downsampling drop count).
    pub const INTROSPECT_ROWS_DROPPED: &str = "aqp.introspect.rows_dropped";
    /// Introspection queries served over the `_telemetry` namespace.
    pub const INTROSPECT_QUERIES_SERVED: &str = "aqp.introspect.queries_served";
    /// Catalog refreshes that re-materialized dirty telemetry tables
    /// (and rebuilt their uniform samples).
    pub const INTROSPECT_SYNCS: &str = "aqp.introspect.catalog_syncs";
    /// Wall-clock spent folding telemetry per query (histogram, ms —
    /// the <5% overhead budget is enforced on it; introspect enabled
    /// only).
    pub const INTROSPECT_EVAL_MS: &str = "aqp.introspect.eval_ms";

    /// Heap allocations observed by the counting global allocator since
    /// process start (gauge; 0 unless the `count-alloc` feature is on).
    pub const MEM_ALLOCS: &str = "aqp.mem.allocs";
    /// Heap bytes allocated since process start (gauge; cumulative, not
    /// live; 0 unless the `count-alloc` feature is on).
    pub const MEM_ALLOC_BYTES: &str = "aqp.mem.alloc_bytes";
    /// Live heap bytes at the last contprof observation (gauge; 0
    /// unless the `count-alloc` feature is on).
    pub const MEM_CURRENT_BYTES: &str = "aqp.mem.current_bytes";
    /// High-water mark of live heap bytes (gauge; 0 unless the
    /// `count-alloc` feature is on).
    pub const MEM_PEAK_BYTES: &str = "aqp.mem.peak_bytes";
}

/// A clock plus a metrics registry: the observability context that
/// rides inside `SessionConfig` / `ApproxOptions`.
#[derive(Debug, Clone)]
pub struct ObsHandle {
    /// The time source for every stage/span measurement.
    pub clock: Clock,
    /// Where counters/gauges/histograms are registered.
    pub metrics: Arc<MetricsRegistry>,
}

impl Default for ObsHandle {
    fn default() -> Self {
        ObsHandle::global()
    }
}

impl ObsHandle {
    /// Real clock + the process-global registry (the production
    /// default).
    pub fn global() -> Self {
        ObsHandle {
            clock: Clock::Real,
            metrics: MetricsRegistry::global(),
        }
    }

    /// A fresh private registry with the given clock — used by tests
    /// that assert exact metric values.
    pub fn isolated(clock: Clock) -> Self {
        ObsHandle {
            clock,
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Same registry, different clock.
    pub fn with_clock(&self, clock: Clock) -> Self {
        ObsHandle {
            clock,
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// A trace recorder reading this handle's clock.
    pub fn recorder(&self) -> TraceRecorder {
        TraceRecorder::new(self.clock.clone())
    }
}

/// Count stragglers among per-worker busy times: workers slower than
/// `factor × median` (paper §5.4's straggler heuristic, applied to the
/// in-process worker pool). Returns 0 for fewer than two workers —
/// a lone worker cannot straggle relative to its peers.
pub fn count_stragglers(busy: &[Duration], factor: f64) -> usize {
    if busy.len() < 2 {
        return 0;
    }
    let mut sorted: Vec<Duration> = busy.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2].as_secs_f64();
    let threshold = median * factor;
    busy.iter().filter(|d| d.as_secs_f64() > threshold).count()
}

/// The straggler slowdown factor of a worker pool: slowest worker's busy
/// time over the median busy time. `None` when there are fewer than two
/// workers or the median is zero (a lone worker cannot straggle; a zero
/// median — e.g. an unadvanced mock clock — makes the ratio meaningless).
/// This is the factor the profiling layer (`aqp-prof`) annotates on the
/// operator that drove the pool.
pub fn slowdown_factor(busy: &[Duration]) -> Option<f64> {
    if busy.len() < 2 {
        return None;
    }
    let mut sorted: Vec<Duration> = busy.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2].as_secs_f64();
    let max = sorted[sorted.len() - 1].as_secs_f64();
    if median <= 0.0 {
        return None;
    }
    Some(max / median)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_handle_shares_the_global_registry() {
        let a = ObsHandle::default();
        let b = ObsHandle::global();
        a.metrics.counter("aqp.test.shared_handle").add(2);
        assert!(b.metrics.counter("aqp.test.shared_handle").get() >= 2);
        assert!(!a.clock.is_mock());
    }

    #[test]
    fn isolated_handles_do_not_leak_into_global() {
        let iso = ObsHandle::isolated(Clock::mock());
        iso.metrics.counter("aqp.test.isolated_only").inc();
        assert_eq!(
            MetricsRegistry::global().snapshot().counter("aqp.test.isolated_only"),
            None
        );
        assert_eq!(iso.metrics.snapshot().counter("aqp.test.isolated_only"), Some(1));
        assert!(iso.clock.is_mock());
    }

    #[test]
    fn straggler_count_uses_median_factor() {
        let ms = |n: u64| Duration::from_millis(n);
        // median 10ms; factor 2 → threshold 20ms.
        let busy = [ms(9), ms(10), ms(11), ms(50)];
        assert_eq!(count_stragglers(&busy, 2.0), 1);
        assert_eq!(count_stragglers(&busy, 10.0), 0);
        assert_eq!(count_stragglers(&[ms(100)], 0.5), 0);
        assert_eq!(count_stragglers(&[], 2.0), 0);
    }

    #[test]
    fn slowdown_factor_is_max_over_median() {
        let ms = |n: u64| Duration::from_millis(n);
        // median of [10, 10, 10, 50] (upper of the two middles) is 10ms.
        assert_eq!(slowdown_factor(&[ms(10), ms(10), ms(10), ms(50)]), Some(5.0));
        assert_eq!(slowdown_factor(&[ms(10), ms(10)]), Some(1.0));
        assert_eq!(slowdown_factor(&[ms(100)]), None); // lone worker
        assert_eq!(slowdown_factor(&[]), None);
        assert_eq!(slowdown_factor(&[ms(0), ms(0), ms(7)]), None); // zero median
    }
}

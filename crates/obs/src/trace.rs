//! Query-lifecycle traces: a span tree covering parse → plan/rewrite →
//! sample selection → scan/exec → error estimation → diagnostic verdict.
//!
//! [`TraceRecorder`] builds the tree while a query runs (thread-safe;
//! workers may attach leaf spans), then [`TraceRecorder::finish`] turns
//! it into an immutable [`QueryTrace`] that travels with the result and
//! can be exported as JSONL or a human-readable table.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::Duration;

use crate::clock::{Clock, Timestamp};
use crate::json::{push_f64, push_str_lit};

/// Canonical stage names used across the pipeline (session + engine).
pub mod stage {
    /// SQL text → AST.
    pub const PARSE: &str = "parse";
    /// AST → logical plan (incl. rewrite for error estimation).
    pub const PLAN: &str = "plan";
    /// Choosing which sample satisfies the error/time bound.
    pub const SAMPLE_SELECTION: &str = "sample_selection";
    /// Scanning the sample and collecting per-group data.
    pub const SCAN_COLLECT: &str = "scan_collect";
    /// Computing θ(S) point estimates.
    pub const POINT_ESTIMATE: &str = "point_estimate";
    /// Closed-form / bootstrap error estimation.
    pub const ERROR_ESTIMATION: &str = "error_estimation";
    /// The Kleiner et al. diagnostic.
    pub const DIAGNOSTICS: &str = "diagnostics";
    /// Assembling the final result rows.
    pub const ASSEMBLE: &str = "assemble";
    /// Exact execution (ground truth or fallback).
    pub const EXACT_EXECUTION: &str = "exact_execution";
    /// Post-exec reliability gate + fallback merging in the session.
    pub const RELIABILITY_GATE: &str = "reliability_gate";
    /// Full-data replay + scoring performed by the accuracy auditor.
    pub const AUDIT_REPLAY: &str = "audit_replay";
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Stage name (see [`stage`] for the canonical taxonomy).
    pub name: String,
    /// Index of the parent span in [`QueryTrace::spans`], if nested.
    pub parent: Option<usize>,
    /// Start, nanoseconds on the recording clock.
    pub start_ns: u64,
    /// End, nanoseconds on the recording clock.
    pub end_ns: u64,
    /// Free-form `(key, value)` attributes (e.g. `resamples = 100`).
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Wall-clock duration of the span.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_ns.saturating_sub(self.start_ns))
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An immutable, finished span tree for one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// All spans, in creation order; children carry the index of their
    /// parent.
    pub spans: Vec<Span>,
}

impl QueryTrace {
    /// Top-level stages in recording order: `(name, duration)` of every
    /// root span.
    pub fn stages(&self) -> Vec<(&str, Duration)> {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| (s.name.as_str(), s.duration()))
            .collect()
    }

    /// The first span (at any depth) with this name.
    pub fn find(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Duration of the first span with this name, if present.
    pub fn stage_duration(&self, name: &str) -> Option<Duration> {
        self.find(name).map(|s| s.duration())
    }

    /// End-to-end span of the trace (earliest start to latest end).
    pub fn total(&self) -> Duration {
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        Duration::from_nanos(end.saturating_sub(start))
    }

    /// Graft `child`'s spans into this trace underneath span `under`
    /// (or as additional roots when `under` is `None`). Used by the
    /// session to merge the engine's per-query trace into the full
    /// lifecycle trace. Timestamps are kept as-is: both traces are
    /// expected to come from the same clock.
    pub fn graft(&mut self, child: QueryTrace, under: Option<usize>) {
        let base = self.spans.len();
        for mut s in child.spans {
            s.parent = match s.parent {
                Some(p) => Some(base + p),
                None => under,
            };
            self.spans.push(s);
        }
    }

    /// Export as JSONL: one span object per line, in creation order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!("{{\"span\":{i},\"name\":"));
            push_str_lit(&mut out, &s.name);
            match s.parent {
                Some(p) => out.push_str(&format!(",\"parent\":{p}")),
                None => out.push_str(",\"parent\":null"),
            }
            out.push_str(&format!(",\"start_ns\":{},\"dur_ms\":", s.start_ns));
            push_f64(&mut out, s.duration().as_secs_f64() * 1e3);
            if !s.attrs.is_empty() {
                out.push_str(",\"attrs\":{");
                for (j, (k, v)) in s.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    push_str_lit(&mut out, k);
                    out.push(':');
                    push_str_lit(&mut out, v);
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }

    /// Render as an indented human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        // Depth of each span, derived from the parent chain.
        let mut depth = vec![0usize; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            if let Some(p) = s.parent {
                if p < i {
                    depth[i] = depth[p] + 1;
                }
            }
        }
        for (i, s) in self.spans.iter().enumerate() {
            let indent = "  ".repeat(depth[i]);
            let attrs = if s.attrs.is_empty() {
                String::new()
            } else {
                let kv: Vec<String> =
                    s.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("  [{}]", kv.join(" "))
            };
            out.push_str(&format!(
                "{indent}{:<24}  {:>10.3}ms{attrs}\n",
                s.name,
                s.duration().as_secs_f64() * 1e3,
            ));
        }
        out
    }
}

/// Opaque handle to an open span (index into the recorder's span list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Debug, Default)]
struct RecState {
    spans: Vec<Span>,
    /// Stack of open span indices; new spans nest under the top.
    open: Vec<usize>,
}

/// Builds a [`QueryTrace`] as a query executes.
///
/// The recording thread opens and closes stage spans with
/// [`start`](TraceRecorder::start)/[`end`](TraceRecorder::end); worker
/// threads may attach completed leaf spans with
/// [`record_span`](TraceRecorder::record_span).
#[derive(Debug)]
pub struct TraceRecorder {
    clock: Clock,
    state: Mutex<RecState>,
}

impl TraceRecorder {
    /// A recorder reading time from `clock`.
    pub fn new(clock: Clock) -> Self {
        TraceRecorder {
            clock,
            state: Mutex::new(RecState::default()),
        }
    }

    /// The clock this recorder reads.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Open a new span named `name`, nested under the currently open
    /// span (if any). Returns a handle for [`end`](TraceRecorder::end).
    pub fn start(&self, name: &str) -> SpanId {
        let now = self.clock.now().nanos();
        let mut st = self.lock();
        let parent = st.open.last().copied();
        let idx = st.spans.len();
        st.spans.push(Span {
            name: name.to_string(),
            parent,
            start_ns: now,
            end_ns: now,
            attrs: Vec::new(),
        });
        st.open.push(idx);
        SpanId(idx)
    }

    /// Close the span `id` (and any still-open spans nested inside it).
    pub fn end(&self, id: SpanId) {
        let now = self.clock.now().nanos();
        let mut st = self.lock();
        while let Some(&top) = st.open.last() {
            if top < id.0 {
                break;
            }
            st.spans[top].end_ns = now;
            st.open.pop();
            if top == id.0 {
                break;
            }
        }
    }

    /// Run `f` inside a span named `name`; the span closes when `f`
    /// returns.
    pub fn in_span<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let id = self.start(name);
        let out = f();
        self.end(id);
        out
    }

    /// Attach a completed leaf span (e.g. a worker's task timing)
    /// under the currently open span.
    pub fn record_span(&self, name: &str, start: Timestamp, end: Timestamp) -> SpanId {
        let mut st = self.lock();
        let parent = st.open.last().copied();
        let idx = st.spans.len();
        st.spans.push(Span {
            name: name.to_string(),
            parent,
            start_ns: start.nanos(),
            end_ns: end.nanos().max(start.nanos()),
            attrs: Vec::new(),
        });
        SpanId(idx)
    }

    /// Splice a finished child trace into the tree being recorded:
    /// the child's roots attach under the innermost open span (or
    /// become roots when none is open); nesting inside the child is
    /// preserved. Used by the session to merge the engine's per-query
    /// trace into the full lifecycle trace. Timestamps are kept as-is:
    /// both traces are expected to come from the same clock.
    pub fn graft(&self, child: QueryTrace) {
        let mut st = self.lock();
        let base = st.spans.len();
        let under = st.open.last().copied();
        for mut s in child.spans {
            s.parent = match s.parent {
                Some(p) => Some(base + p),
                None => under,
            };
            st.spans.push(s);
        }
    }

    /// Attach a `(key, value)` attribute to span `id`.
    pub fn attr(&self, id: SpanId, key: &str, value: impl Display) {
        let mut st = self.lock();
        if let Some(s) = st.spans.get_mut(id.0) {
            s.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Close any spans still open (at the current clock reading) and
    /// return the finished trace.
    pub fn finish(self) -> QueryTrace {
        let now = self.clock.now().nanos();
        let mut st = self.state.into_inner().unwrap_or_else(|p| p.into_inner());
        while let Some(top) = st.open.pop() {
            st.spans[top].end_ns = now;
        }
        QueryTrace { spans: st.spans }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adv(c: &Clock, ms: u64) {
        c.advance(Duration::from_millis(ms));
    }

    #[test]
    fn records_a_nested_stage_tree() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        let root = rec.start(stage::PARSE);
        adv(&clock, 2);
        rec.end(root);
        let exec = rec.start("execute");
        adv(&clock, 1);
        let inner = rec.start(stage::ERROR_ESTIMATION);
        adv(&clock, 5);
        rec.attr(inner, "resamples", 100);
        rec.end(inner);
        rec.end(exec);
        let t = rec.finish();
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.stages().len(), 2); // parse + execute are roots
        assert_eq!(t.stage_duration(stage::PARSE), Some(Duration::from_millis(2)));
        assert_eq!(
            t.stage_duration(stage::ERROR_ESTIMATION),
            Some(Duration::from_millis(5))
        );
        assert_eq!(t.find(stage::ERROR_ESTIMATION).and_then(|s| s.attr("resamples")), Some("100"));
        assert_eq!(t.spans[2].parent, Some(1));
        assert_eq!(t.total(), Duration::from_millis(8));
    }

    #[test]
    fn finish_closes_open_spans() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        rec.start("a");
        rec.start("b");
        adv(&clock, 3);
        let t = rec.finish();
        assert_eq!(t.spans[0].duration(), Duration::from_millis(3));
        assert_eq!(t.spans[1].duration(), Duration::from_millis(3));
    }

    #[test]
    fn end_closes_nested_leftovers() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        let outer = rec.start("outer");
        rec.start("inner-left-open");
        adv(&clock, 1);
        rec.end(outer);
        adv(&clock, 1);
        let t = rec.finish();
        assert_eq!(t.spans[0].duration(), Duration::from_millis(1));
        assert_eq!(t.spans[1].duration(), Duration::from_millis(1));
    }

    #[test]
    fn graft_reparents_child_roots() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        let root = rec.start("execute_approx");
        adv(&clock, 1);
        rec.end(root);
        let mut parent = rec.finish();

        let rec2 = TraceRecorder::new(clock.clone());
        let a = rec2.start(stage::SCAN_COLLECT);
        adv(&clock, 1);
        rec2.end(a);
        let b = rec2.start(stage::DIAGNOSTICS);
        adv(&clock, 1);
        rec2.end(b);
        let child = rec2.finish();

        parent.graft(child, Some(0));
        assert_eq!(parent.spans.len(), 3);
        assert_eq!(parent.spans[1].parent, Some(0));
        assert_eq!(parent.spans[2].parent, Some(0));
        // Only the original root remains a root.
        assert_eq!(parent.stages().len(), 1);
    }

    #[test]
    fn recorder_graft_nests_under_open_span() {
        let clock = Clock::mock();
        let rec2 = TraceRecorder::new(clock.clone());
        let a = rec2.start(stage::SCAN_COLLECT);
        adv(&clock, 1);
        let b = rec2.start("inner");
        adv(&clock, 1);
        rec2.end(b);
        rec2.end(a);
        let child = rec2.finish();

        let rec = TraceRecorder::new(clock.clone());
        let gate = rec.start(stage::RELIABILITY_GATE);
        rec.graft(child.clone());
        rec.end(gate);
        // With no open span, grafted roots stay roots.
        rec.graft(child);
        let t = rec.finish();
        assert_eq!(t.spans.len(), 5);
        assert_eq!(t.spans[1].parent, Some(0)); // scan_collect under gate
        assert_eq!(t.spans[2].parent, Some(1)); // inner nesting preserved
        assert_eq!(t.spans[3].parent, None);
        assert_eq!(t.spans[4].parent, Some(3));
        assert_eq!(t.stages().len(), 2);
    }

    #[test]
    fn worker_spans_attach_under_open_stage() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        let stage_id = rec.start(stage::ERROR_ESTIMATION);
        let s = clock.now();
        adv(&clock, 2);
        let e = clock.now();
        let w = rec.record_span("worker", s, e);
        rec.attr(w, "worker", 0);
        rec.end(stage_id);
        let t = rec.finish();
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.spans[1].duration(), Duration::from_millis(2));
    }

    #[test]
    fn jsonl_and_table_exporters() {
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        let root = rec.start("q");
        adv(&clock, 1);
        let inner = rec.start(stage::DIAGNOSTICS);
        rec.attr(inner, "verdict", "accepted");
        adv(&clock, 1);
        rec.end(inner);
        rec.end(root);
        let t = rec.finish();
        let j = t.to_jsonl();
        assert_eq!(j.lines().count(), 2);
        assert!(j.contains("\"name\":\"q\",\"parent\":null"));
        assert!(j.contains("\"parent\":0"));
        assert!(j.contains("\"attrs\":{\"verdict\":\"accepted\"}"));
        let tbl = t.render_table();
        assert!(tbl.contains("q"));
        assert!(tbl.contains("  diagnostics")); // indented child
        assert!(tbl.contains("verdict=accepted"));
    }
}

//! Always-on flight recorder: a bounded ring buffer of completed query
//! traces, dumped with a metrics snapshot whenever something fires.
//!
//! The paper's thesis is *knowing when you're wrong*; the flight
//! recorder makes sure every "we were wrong" moment ships with its own
//! post-hoc evidence. The session records every completed
//! [`QueryTrace`] into the ring (oldest evicted first, bounded memory),
//! and when an SLO alert, an audit alert, or a degraded execution
//! fires, [`FlightRecorder::dump`] freezes the retained traces plus the
//! caller's [`MetricsSnapshot`] into a bit-stable JSONL artifact —
//! appended to the configured file and kept in memory for dashboards.
//!
//! Determinism: the dump bytes are a pure function of the retained
//! traces, the snapshot, and the dump ordinal. Under the mock clock the
//! whole artifact is therefore bit-identical across processes for the
//! same seed, which CI verifies with a byte diff.

use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use crate::json::push_str_lit;
use crate::metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
use crate::name;
use crate::trace::QueryTrace;

/// Configuration for the always-on flight recorder.
#[derive(Debug, Clone)]
pub struct FlightRecorderConfig {
    /// How many completed traces to retain; the oldest is evicted when
    /// the ring is full.
    pub capacity: usize,
    /// Where dump artifacts are appended (one JSONL block per dump).
    /// `None` keeps dumps in memory only (see
    /// [`FlightRecorder::last_dump`]); write failures never fail the
    /// query — they are counted on `aqp.obs.recorder_dump_write_errors`.
    pub path: Option<PathBuf>,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig { capacity: 32, path: None }
    }
}

impl FlightRecorderConfig {
    /// A recorder of `capacity` traces that appends dumps to `path`.
    pub fn at(capacity: usize, path: impl Into<PathBuf>) -> Self {
        FlightRecorderConfig { capacity, path: Some(path.into()) }
    }
}

/// Meter handles registered once at construction.
#[derive(Debug)]
struct Meters {
    retained: Gauge,
    evictions: Counter,
    dumps: Counter,
    dump_errors: Counter,
}

/// State behind the ring lock.
#[derive(Debug)]
struct Inner {
    /// Sequence number assigned to the next recorded trace.
    next_seq: u64,
    /// Sequence number assigned to the next dump.
    next_dump: u64,
    /// Retained traces, oldest first.
    ring: VecDeque<(u64, QueryTrace)>,
    /// The artifact produced by the most recent dump.
    last_dump: Option<String>,
}

/// A bounded ring of the last N completed query traces, dumpable to a
/// bit-stable JSONL artifact at alert time.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    path: Option<PathBuf>,
    meters: Meters,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// Build a recorder and register its meters on `metrics`.
    pub fn new(cfg: FlightRecorderConfig, metrics: &MetricsRegistry) -> Self {
        FlightRecorder {
            capacity: cfg.capacity.max(1),
            path: cfg.path,
            meters: Meters {
                retained: metrics.gauge(name::OBS_RECORDER_RETAINED),
                evictions: metrics.counter(name::OBS_RECORDER_EVICTIONS),
                dumps: metrics.counter(name::OBS_RECORDER_DUMPS),
                dump_errors: metrics.counter(name::OBS_RECORDER_DUMP_ERRORS),
            },
            inner: Mutex::new(Inner {
                next_seq: 0,
                next_dump: 0,
                ring: VecDeque::new(),
                last_dump: None,
            }),
        }
    }

    /// The ring lock, recovering from poisoning: a panicking recorder
    /// thread must never wedge the query path.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record one completed trace, evicting the oldest when full.
    pub fn record(&self, trace: QueryTrace) {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.ring.push_back((seq, trace));
        while inner.ring.len() > self.capacity {
            inner.ring.pop_front();
            self.meters.evictions.inc();
        }
        self.meters.retained.set(inner.ring.len() as f64);
    }

    /// Number of traces currently retained.
    pub fn retained(&self) -> usize {
        self.lock().ring.len()
    }

    /// The artifact produced by the most recent [`FlightRecorder::dump`].
    pub fn last_dump(&self) -> Option<String> {
        self.lock().last_dump.clone()
    }

    /// Freeze the retained traces plus `snapshot` into a JSONL artifact
    /// for `reason`, append it to the configured path (if any), and
    /// return it. Never fails: I/O errors only increment
    /// `aqp.obs.recorder_dump_write_errors`.
    pub fn dump(&self, reason: &str, snapshot: &MetricsSnapshot) -> String {
        self.dump_with_context(reason, snapshot, &[])
    }

    /// [`dump`](FlightRecorder::dump) with alert context: the given
    /// key/value pairs are frozen into one `{"context":{...}}` line
    /// right after the header, so a dump carries *why* it fired
    /// (workload class, objective, the cumulative profile at alert
    /// time) alongside the evidence. An empty `context` emits no extra
    /// line, keeping pre-context dumps byte-identical.
    pub fn dump_with_context(
        &self,
        reason: &str,
        snapshot: &MetricsSnapshot,
        context: &[(&str, &str)],
    ) -> String {
        let mut inner = self.lock();
        let dump = inner.next_dump;
        inner.next_dump += 1;
        let mut out = String::new();
        out.push_str("{\"recorder\":\"aqp-flight-recorder/v1\",\"dump\":");
        out.push_str(&dump.to_string());
        out.push_str(",\"reason\":");
        push_str_lit(&mut out, reason);
        out.push_str(",\"retained\":");
        out.push_str(&inner.ring.len().to_string());
        out.push_str(",\"traces_recorded\":");
        out.push_str(&inner.next_seq.to_string());
        out.push_str("}\n");
        if !context.is_empty() {
            out.push_str("{\"context\":{");
            for (i, (k, v)) in context.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str_lit(&mut out, k);
                out.push(':');
                push_str_lit(&mut out, v);
            }
            out.push_str("}}\n");
        }
        out.push_str(&snapshot.to_jsonl());
        for (seq, trace) in &inner.ring {
            out.push_str("{\"trace_seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"spans\":");
            out.push_str(&trace.spans.len().to_string());
            out.push_str("}\n");
            out.push_str(&trace.to_jsonl());
        }
        inner.last_dump = Some(out.clone());
        drop(inner);
        self.meters.dumps.inc();
        if let Some(path) = &self.path {
            if let Err(_e) = append_artifact(path, &out) {
                self.meters.dump_errors.inc();
            }
        }
        out
    }
}

/// Append one dump artifact to `path`, creating parent directories.
fn append_artifact(path: &std::path::Path, artifact: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(artifact.as_bytes())?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::trace::TraceRecorder;

    fn trace(label: &str, clock: &Clock) -> QueryTrace {
        let rec = TraceRecorder::new(clock.clone());
        rec.in_span(label, || {
            clock.advance(std::time::Duration::from_millis(2));
        });
        rec.finish()
    }

    #[test]
    fn ring_evicts_oldest_and_stays_bounded() {
        let metrics = MetricsRegistry::new();
        let clock = Clock::mock();
        let fr = FlightRecorder::new(
            FlightRecorderConfig { capacity: 3, path: None },
            &metrics,
        );
        for i in 0..10 {
            fr.record(trace(&format!("q{i}"), &clock));
            assert!(fr.retained() <= 3, "ring grew past capacity at i={i}");
        }
        assert_eq!(fr.retained(), 3);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(name::OBS_RECORDER_EVICTIONS), Some(7));
        assert_eq!(snap.gauge(name::OBS_RECORDER_RETAINED), Some(3.0));
        // Oldest evicted first: the retained traces are q7, q8, q9.
        let dump = fr.dump("test", &snap);
        assert!(!dump.contains("\"name\":\"q6\""), "{dump}");
        assert!(dump.contains("\"name\":\"q7\""), "{dump}");
        assert!(dump.contains("\"name\":\"q9\""), "{dump}");
    }

    #[test]
    fn dump_is_bit_stable_and_ordered_oldest_first() {
        let build = || {
            let clock = Clock::mock();
            let metrics = MetricsRegistry::new();
            metrics.counter("aqp.test.recorder_dump").add(5);
            let fr = FlightRecorder::new(
                FlightRecorderConfig { capacity: 4, path: None },
                &metrics,
            );
            for i in 0..6 {
                fr.record(trace(&format!("q{i}"), &clock));
            }
            fr.dump("bit-stable", &metrics.snapshot())
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same inputs must yield byte-identical dumps");
        // trace_seq lines appear in ascending (oldest-first) order.
        let seqs: Vec<&str> = a
            .lines()
            .filter(|l| l.starts_with("{\"trace_seq\":"))
            .collect();
        assert_eq!(seqs.len(), 4);
        let order: Vec<u64> = seqs
            .iter()
            .map(|l| {
                l.trim_start_matches("{\"trace_seq\":")
                    .split(',')
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(order, vec![2, 3, 4, 5]);
        assert!(b.lines().next().unwrap().contains("\"dump\":0"));
    }

    #[test]
    fn dump_with_context_freezes_alert_context_after_the_header() {
        let metrics = MetricsRegistry::new();
        let clock = Clock::mock();
        let fr = FlightRecorder::new(
            FlightRecorderConfig { capacity: 2, path: None },
            &metrics,
        );
        fr.record(trace("q0", &clock));
        let plain = fr.dump("no-ctx", &metrics.snapshot());
        assert!(!plain.contains("\"context\""), "{plain}");
        let dump = fr.dump_with_context(
            "slo:page:latency",
            &metrics.snapshot(),
            &[("class", "dashboards"), ("objective", "latency_ms<500")],
        );
        let mut lines = dump.lines();
        assert!(lines.next().expect("header").starts_with("{\"recorder\":"));
        assert_eq!(
            lines.next().expect("context line"),
            "{\"context\":{\"class\":\"dashboards\",\"objective\":\"latency_ms<500\"}}"
        );
    }

    #[test]
    fn dump_appends_to_the_configured_path_and_counts_errors() {
        let metrics = MetricsRegistry::new();
        let clock = Clock::mock();
        let dir = std::env::temp_dir().join("aqp_obs_recorder_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("dumps.jsonl");
        let fr = FlightRecorder::new(FlightRecorderConfig::at(8, &path), &metrics);
        fr.record(trace("q0", &clock));
        let first = fr.dump("one", &metrics.snapshot());
        let second = fr.dump("two", &metrics.snapshot());
        let on_disk = std::fs::read_to_string(&path).expect("dump file");
        assert_eq!(on_disk, format!("{first}{second}"));
        assert_eq!(fr.last_dump().as_deref(), Some(second.as_str()));
        assert_eq!(metrics.snapshot().counter(name::OBS_RECORDER_DUMPS), Some(2));
        let _ = std::fs::remove_dir_all(&dir);

        // An unwritable path only bumps the error counter.
        let bad = FlightRecorder::new(
            FlightRecorderConfig::at(2, "/dev/null/not/a/dir/x.jsonl"),
            &metrics,
        );
        bad.record(trace("q1", &clock));
        bad.dump("fails", &metrics.snapshot());
        assert_eq!(
            metrics.snapshot().counter(name::OBS_RECORDER_DUMP_ERRORS),
            Some(1)
        );
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let metrics = MetricsRegistry::new();
        let clock = Clock::mock();
        let fr = FlightRecorder::new(
            FlightRecorderConfig { capacity: 0, path: None },
            &metrics,
        );
        fr.record(trace("a", &clock));
        fr.record(trace("b", &clock));
        assert_eq!(fr.retained(), 1);
    }
}

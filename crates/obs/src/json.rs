//! Minimal hand-rolled JSON emission helpers.
//!
//! The workspace's vendored `serde` is a no-op stub, so every exporter
//! (metrics/trace JSONL here, the audit log in `aqp-audit`) builds its
//! JSON by hand through these helpers.

/// Append `s` as a JSON string literal (with escaping) onto `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number for `v`; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn every_control_char_is_escaped() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let mut s = String::new();
            push_str_lit(&mut s, &c.to_string());
            // No raw control byte may survive into the literal...
            assert!(
                s.chars().all(|c| (c as u32) >= 0x20),
                "raw control char 0x{code:02x} leaked into {s:?}"
            );
            // ...and the escape must be one of the JSON short forms or \u00xx.
            let body = &s[1..s.len() - 1];
            let ok = matches!(body, "\\n" | "\\r" | "\\t")
                || body == format!("\\u{code:04x}");
            assert!(ok, "unexpected escape {body:?} for 0x{code:02x}");
        }
    }

    #[test]
    fn quotes_and_backslashes_round_trip_unambiguously() {
        let mut s = String::new();
        push_str_lit(&mut s, r#"a"b\c"#);
        assert_eq!(s, r#""a\"b\\c""#);
        // Already-escaped input is escaped again, not passed through.
        let mut s2 = String::new();
        push_str_lit(&mut s2, "\\n");
        assert_eq!(s2, "\"\\\\n\"");
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut s = String::new();
            push_f64(&mut s, v);
            assert_eq!(s, "null");
        }
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
    }
}

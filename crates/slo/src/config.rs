//! Declarative SLO configuration: workload classes, objectives,
//! burn-rate windows/thresholds, drift-detector knobs, and the JSONL
//! alert log.

use std::path::PathBuf;
use std::time::Duration;

use aqp_obs::FlightRecorderConfig;

// Class routing is the shared `aqp_obs::router` substring router, so
// SLO objectives, continuous profiles, and introspection rows slice
// the fleet identically.
pub use aqp_obs::router::{ClassRouter, ClassRule};

/// What one objective promises.
#[derive(Debug, Clone)]
pub enum ObjectiveKind {
    /// A latency quantile target: `quantile` (e.g. `0.95`) of queries
    /// complete within `threshold_ms`. Each query is one SLO event;
    /// the event is *bad* when its latency exceeds the threshold, and
    /// the error-budget allowance is `1 − quantile`.
    Latency {
        /// Target quantile in `(0, 1)` — `0.95` for p95, `0.99` for p99.
        quantile: f64,
        /// Per-query latency threshold in milliseconds.
        threshold_ms: f64,
    },
    /// A CI-coverage floor: at least `floor` of audited group-aggregates
    /// have confidence intervals that cover the replayed truth. Each
    /// audited aggregate with a coverage verdict is one SLO event; the
    /// event is *bad* on a miss, and the allowance is `1 − floor`.
    Coverage {
        /// Minimum acceptable coverage rate in `(0, 1)`, e.g. `0.9`.
        floor: f64,
    },
}

/// One declarative objective bound to a workload class.
#[derive(Debug, Clone)]
pub struct Objective {
    /// Workload class this objective applies to.
    pub class: String,
    /// The promise.
    pub kind: ObjectiveKind,
}

impl Objective {
    /// The error-budget allowance: the fraction of events allowed to be
    /// bad while still meeting the objective. Clamped away from zero so
    /// burn rates stay finite.
    pub fn allowance(&self) -> f64 {
        let a = match self.kind {
            ObjectiveKind::Latency { quantile, .. } => 1.0 - quantile,
            ObjectiveKind::Coverage { floor } => 1.0 - floor,
        };
        a.max(1e-6)
    }

    /// Deterministic id, e.g. `interactive/latency_p95_le_40ms` or
    /// `default/coverage_ge_90`.
    pub fn id(&self) -> String {
        match self.kind {
            ObjectiveKind::Latency { quantile, threshold_ms } => format!(
                "{}/latency_p{:.0}_le_{}ms",
                self.class,
                quantile * 100.0,
                threshold_ms
            ),
            ObjectiveKind::Coverage { floor } => {
                format!("{}/coverage_ge_{:.0}", self.class, floor * 100.0)
            }
        }
    }
}

/// Burn-rate thresholds for the two window pairs, following the
/// multiwindow multi-burn-rate recipe: page when the budget is burning
/// ~14× too fast on the fast pair, warn at ~6× on the slow pair, and
/// re-arm the latch once the burn drops below `clear_below`.
#[derive(Debug, Clone)]
pub struct BurnThresholds {
    /// Page when `min(burn_5m, burn_1h)` is at or above this.
    pub page: f64,
    /// Warn when `min(burn_6h, burn_3d)` is at or above this.
    pub warn: f64,
    /// Re-arm a latched alert once the pair burn drops below this.
    pub clear_below: f64,
    /// Events required in the 1h window before alerts may latch —
    /// burn rates over a near-empty window are meaningless.
    pub min_events: u64,
}

impl Default for BurnThresholds {
    fn default() -> Self {
        BurnThresholds { page: 14.4, warn: 6.0, clear_below: 1.0, min_events: 20 }
    }
}

/// Evaluation windows. All timestamps come from the session's
/// `aqp_obs::Clock`, so under the mock clock the whole evaluation is
/// deterministic.
#[derive(Debug, Clone)]
pub struct SloWindows {
    /// Short window of the fast (page) pair.
    pub fast_short: Duration,
    /// Long window of the fast (page) pair.
    pub fast_long: Duration,
    /// Short window of the slow (warn) pair.
    pub slow_short: Duration,
    /// Long window of the slow (warn) pair — also the error-budget
    /// accounting period.
    pub slow_long: Duration,
    /// Granularity of the good/bad event buckets.
    pub bucket: Duration,
}

impl Default for SloWindows {
    fn default() -> Self {
        SloWindows {
            fast_short: Duration::from_secs(5 * 60),
            fast_long: Duration::from_secs(60 * 60),
            slow_short: Duration::from_secs(6 * 60 * 60),
            slow_long: Duration::from_secs(3 * 24 * 60 * 60),
            bucket: Duration::from_secs(60),
        }
    }
}

/// Online drift-detector knobs (EWMA control chart + Page-Hinkley).
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// EWMA smoothing weight λ in `(0, 1]`.
    pub ewma_alpha: f64,
    /// EWMA control-limit width in baseline standard deviations.
    pub ewma_k: f64,
    /// Page-Hinkley tolerated magnitude δ (drift smaller than this is
    /// ignored).
    pub ph_delta: f64,
    /// Page-Hinkley alarm threshold λ on the accumulated excess.
    pub ph_lambda: f64,
    /// Events before either detector may signal (baseline warm-up).
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            ewma_alpha: 0.1,
            ewma_k: 4.0,
            ph_delta: 0.005,
            ph_lambda: 2.0,
            min_samples: 10,
        }
    }
}

/// Where (and how large) the rotating JSONL SLO log is.
#[derive(Debug, Clone)]
pub struct SloLogConfig {
    /// Live log file path (rotations get `.1`, `.2`, … suffixes).
    pub path: PathBuf,
    /// Byte budget of the live file before rotation.
    pub max_bytes: u64,
    /// Rotated files to keep (0 truncates in place).
    pub max_rotations: usize,
}

impl SloLogConfig {
    /// A log at `path` with the default 4 MiB budget and 3 rotations.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        SloLogConfig { path: path.into(), max_bytes: 4 << 20, max_rotations: 3 }
    }
}

/// Configuration of the fleet-level SLO engine.
///
/// Off by default at the session level (the session's `slo` field is
/// `None`). `Default`/[`SloConfig::new`] carries the recommended
/// windows, burn thresholds, and drift knobs but *no objectives*; add
/// them with the builder methods.
#[derive(Debug, Clone, Default)]
pub struct SloConfig {
    /// Class-assignment rules, checked in order (the shared
    /// [`ClassRouter`]).
    pub classes: ClassRouter,
    /// The declared objectives.
    pub objectives: Vec<Objective>,
    /// Burn-rate alert thresholds.
    pub thresholds: BurnThresholds,
    /// Evaluation windows.
    pub windows: SloWindows,
    /// Drift-detector knobs.
    pub drift: DriftConfig,
    /// Rotating JSONL log for alerts and drift signals (`None` = no log).
    pub log: Option<SloLogConfig>,
    /// Flight-recorder sizing and dump path.
    pub recorder: FlightRecorderConfig,
}

impl SloConfig {
    /// The class queries fall into when no [`ClassRule`] matches.
    pub const DEFAULT_CLASS: &'static str = aqp_obs::router::DEFAULT_CLASS;

    /// Recommended knobs, no objectives.
    pub fn new() -> Self {
        SloConfig::default()
    }

    /// Add a class rule: queries whose SQL contains `sql_contains` are
    /// assigned to `class` (first matching rule wins).
    pub fn with_class(mut self, class: &str, sql_contains: &str) -> Self {
        self.classes.push_rule(class, sql_contains);
        self
    }

    /// Add a latency-quantile objective for `class`.
    pub fn with_latency(mut self, class: &str, quantile: f64, threshold_ms: f64) -> Self {
        self.objectives.push(Objective {
            class: class.to_string(),
            kind: ObjectiveKind::Latency { quantile, threshold_ms },
        });
        self
    }

    /// Add a CI-coverage-floor objective for `class`.
    pub fn with_coverage(mut self, class: &str, floor: f64) -> Self {
        self.objectives.push(Objective {
            class: class.to_string(),
            kind: ObjectiveKind::Coverage { floor },
        });
        self
    }

    /// Route alerts and drift signals to a rotating JSONL log.
    pub fn with_log(mut self, log: SloLogConfig) -> Self {
        self.log = Some(log);
        self
    }

    /// Size the flight recorder and set its dump path.
    pub fn with_recorder(mut self, recorder: FlightRecorderConfig) -> Self {
        self.recorder = recorder;
        self
    }

    /// The workload class of `sql`: first matching rule, else
    /// [`SloConfig::DEFAULT_CLASS`].
    pub fn classify<'a>(&'a self, sql: &str) -> &'a str {
        self.classes.classify(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_first_match_with_default_fallback() {
        let cfg = SloConfig::new()
            .with_class("interactive", "AVG(")
            .with_class("batch", "SUM(");
        assert_eq!(cfg.classify("SELECT AVG(time) FROM sessions"), "interactive");
        assert_eq!(cfg.classify("SELECT SUM(bytes) FROM sessions"), "batch");
        // First rule wins even when both match.
        assert_eq!(cfg.classify("SELECT AVG(a), SUM(b) FROM t"), "interactive");
        assert_eq!(cfg.classify("SELECT COUNT(*) FROM t"), "default");
    }

    #[test]
    fn objective_ids_and_allowances() {
        let lat = Objective {
            class: "interactive".into(),
            kind: ObjectiveKind::Latency { quantile: 0.95, threshold_ms: 40.0 },
        };
        assert_eq!(lat.id(), "interactive/latency_p95_le_40ms");
        assert!((lat.allowance() - 0.05).abs() < 1e-12);
        let cov = Objective {
            class: "default".into(),
            kind: ObjectiveKind::Coverage { floor: 0.9 },
        };
        assert_eq!(cov.id(), "default/coverage_ge_90");
        assert!((cov.allowance() - 0.1).abs() < 1e-12);
        // A 100% target still yields a finite allowance.
        let strict = Objective {
            class: "x".into(),
            kind: ObjectiveKind::Coverage { floor: 1.0 },
        };
        assert!(strict.allowance() > 0.0);
    }

    #[test]
    fn default_windows_follow_the_multiwindow_recipe() {
        let w = SloWindows::default();
        assert_eq!(w.fast_short, Duration::from_secs(300));
        assert_eq!(w.fast_long, Duration::from_secs(3600));
        assert_eq!(w.slow_short, Duration::from_secs(21600));
        assert_eq!(w.slow_long, Duration::from_secs(259200));
        let t = BurnThresholds::default();
        assert!(t.page > t.warn && t.warn > t.clear_below);
    }
}

//! Online drift detection: an EWMA control chart and a Page-Hinkley
//! test streaming over per-query indicators (relative error, coverage
//! misses), so miscalibration fires *between* audit windows instead of
//! only after a full replay window latches.
//!
//! Both detectors are pure functions of the observed event sequence —
//! no randomness, no wall clock — so a seeded run signals at exactly
//! the same event ordinal every time.

use crate::config::DriftConfig;

/// Which detector raised a [`DriftSignal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// The EWMA control chart left its control limits.
    Ewma,
    /// The Page-Hinkley accumulated excess crossed its threshold.
    PageHinkley,
}

impl Detector {
    /// Stable lowercase name for logs and dashboards.
    pub fn as_str(self) -> &'static str {
        match self {
            Detector::Ewma => "ewma",
            Detector::PageHinkley => "page_hinkley",
        }
    }
}

/// One drift signal: stream `stream` drifted upward at event
/// `at_event` (1-based within the stream).
#[derive(Debug, Clone)]
pub struct DriftSignal {
    /// Stream name, e.g. `default/coverage_miss`.
    pub stream: String,
    /// Which detector fired.
    pub detector: Detector,
    /// 1-based ordinal of the observation that tripped the detector.
    pub at_event: u64,
    /// The detector statistic at signal time (EWMA deviation in σ
    /// units, or the Page-Hinkley accumulated excess).
    pub statistic: f64,
}

impl std::fmt::Display for DriftSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drift[{}] on {} at event {} (statistic {:.3})",
            self.detector.as_str(),
            self.stream,
            self.at_event,
            self.statistic
        )
    }
}

/// EWMA control chart for an upward mean shift: smooth the stream with
/// weight λ and signal when the smoothed value exceeds the running
/// baseline mean by `k` asymptotic EWMA standard deviations
/// (`σ·sqrt(λ/(2−λ))`), with baseline mean/variance tracked by
/// Welford's algorithm.
#[derive(Debug, Clone)]
struct Ewma {
    alpha: f64,
    k: f64,
    n: u64,
    mean: f64,
    m2: f64,
    z: f64,
}

impl Ewma {
    fn new(cfg: &DriftConfig) -> Self {
        Ewma { alpha: cfg.ewma_alpha, k: cfg.ewma_k, n: 0, mean: 0.0, m2: 0.0, z: 0.0 }
    }

    /// Observe `x`; returns the deviation in σ units when out of
    /// control (upward only).
    fn observe(&mut self, x: f64, min_samples: u64) -> Option<f64> {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.z = if self.n == 1 { x } else { self.alpha * x + (1.0 - self.alpha) * self.z };
        if self.n <= min_samples || self.n < 2 {
            return None;
        }
        let var = self.m2 / (self.n - 1) as f64;
        let sigma_z = (var * self.alpha / (2.0 - self.alpha)).sqrt();
        if sigma_z <= 0.0 {
            return None;
        }
        let dev = (self.z - self.mean) / sigma_z;
        (dev > self.k).then_some(dev)
    }
}

/// Page-Hinkley test for an upward mean shift: accumulate
/// `x_t − mean_t − δ` and signal when the accumulation exceeds its
/// running minimum by λ.
#[derive(Debug, Clone)]
struct PageHinkley {
    delta: f64,
    lambda: f64,
    n: u64,
    mean: f64,
    m: f64,
    m_min: f64,
}

impl PageHinkley {
    fn new(cfg: &DriftConfig) -> Self {
        PageHinkley {
            delta: cfg.ph_delta,
            lambda: cfg.ph_lambda,
            n: 0,
            mean: 0.0,
            m: 0.0,
            m_min: 0.0,
        }
    }

    /// Observe `x`; returns the accumulated excess when it crosses λ.
    fn observe(&mut self, x: f64, min_samples: u64) -> Option<f64> {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.m += x - self.mean - self.delta;
        self.m_min = self.m_min.min(self.m);
        if self.n <= min_samples {
            return None;
        }
        let excess = self.m - self.m_min;
        (excess > self.lambda).then_some(excess)
    }
}

/// Both detectors over one named stream. After a signal the detectors
/// re-baseline (fresh state) so a later, separate drift episode can
/// signal again.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    stream: String,
    ewma: Ewma,
    ph: PageHinkley,
    events: u64,
    signals: u64,
    last_signal_at: Option<u64>,
}

impl DriftDetector {
    /// A fresh detector pair for `stream`.
    pub fn new(stream: &str, cfg: &DriftConfig) -> Self {
        DriftDetector {
            cfg: cfg.clone(),
            stream: stream.to_string(),
            ewma: Ewma::new(cfg),
            ph: PageHinkley::new(cfg),
            events: 0,
            signals: 0,
            last_signal_at: None,
        }
    }

    /// Observe one value; at most one signal per observation (the
    /// Page-Hinkley verdict wins when both fire at once).
    pub fn observe(&mut self, x: f64) -> Option<DriftSignal> {
        self.events += 1;
        let min = self.cfg.min_samples;
        let ph = self.ph.observe(x, min);
        let ewma = self.ewma.observe(x, min);
        let (detector, statistic) = match (ph, ewma) {
            (Some(s), _) => (Detector::PageHinkley, s),
            (None, Some(s)) => (Detector::Ewma, s),
            (None, None) => return None,
        };
        self.signals += 1;
        self.last_signal_at = Some(self.events);
        // Re-baseline so the detector can flag a later episode.
        self.ewma = Ewma::new(&self.cfg);
        self.ph = PageHinkley::new(&self.cfg);
        Some(DriftSignal {
            stream: self.stream.clone(),
            detector,
            at_event: self.events,
            statistic,
        })
    }

    /// Deterministic status line for reports/dashboards.
    pub fn status(&self) -> DriftStatus {
        DriftStatus {
            stream: self.stream.clone(),
            events: self.events,
            signals: self.signals,
            last_signal_at: self.last_signal_at,
        }
    }
}

/// Snapshot of one stream's drift state.
#[derive(Debug, Clone)]
pub struct DriftStatus {
    /// Stream name.
    pub stream: String,
    /// Observations so far.
    pub events: u64,
    /// Signals raised so far.
    pub signals: u64,
    /// Ordinal of the most recent signal, if any.
    pub last_signal_at: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> DriftDetector {
        DriftDetector::new("t/stream", &DriftConfig::default())
    }

    #[test]
    fn stable_stream_never_signals() {
        let mut d = detector();
        for i in 0..500u64 {
            // Deterministic small oscillation around 0.05.
            let x = 0.05 + if i % 2 == 0 { 0.01 } else { -0.01 };
            assert!(d.observe(x).is_none(), "spurious signal at event {i}");
        }
        assert_eq!(d.status().signals, 0);
    }

    #[test]
    fn step_change_signals_quickly_and_deterministically() {
        let run = || {
            let mut d = detector();
            let mut fired = None;
            for i in 0..200u64 {
                let x = if i < 60 { 0.05 } else { 0.95 }; // drift at event 61
                if let Some(sig) = d.observe(x) {
                    fired = Some((sig.at_event, sig.detector));
                    break;
                }
            }
            fired
        };
        let a = run().expect("step change must signal");
        let b = run().expect("step change must signal");
        assert_eq!(a, b, "signal ordinal must be deterministic");
        // The 0.9 jump accumulates ~0.9/event of Page-Hinkley excess:
        // the signal lands within a handful of post-change events.
        assert!(a.0 > 60 && a.0 <= 70, "signaled at {}", a.0);
    }

    #[test]
    fn rebaselines_after_a_signal_and_can_fire_again() {
        let mut d = detector();
        let mut signals = Vec::new();
        for i in 0..400u64 {
            // Two separate drift episodes with a calm stretch between.
            let x = match i {
                0..=59 => 0.0,
                60..=99 => 1.0,
                100..=299 => 0.0,
                _ => 1.0,
            };
            if let Some(sig) = d.observe(x) {
                signals.push(sig.at_event);
            }
        }
        assert!(signals.len() >= 2, "expected both episodes to signal: {signals:?}");
        assert!(signals[0] > 60 && signals[0] <= 80, "{signals:?}");
        assert!(signals.iter().any(|&s| s > 300), "{signals:?}");
        let st = d.status();
        assert_eq!(st.signals as usize, signals.len());
        assert_eq!(st.last_signal_at, signals.last().copied());
    }

    #[test]
    fn constant_stream_has_zero_variance_and_stays_quiet() {
        let mut d = detector();
        for _ in 0..100 {
            assert!(d.observe(0.3).is_none());
        }
    }
}

//! `aqp-slo`: fleet-level service-level objectives for the AQP
//! pipeline.
//!
//! The paper answers *knowing when you're wrong* per query
//! (diagnostics) and per window (audit replay); this crate answers it
//! *over time*. It is std-only, depends only on `aqp-obs` and
//! `aqp-audit` types, and provides:
//!
//! * [`SloEngine`] — declarative objectives per workload class
//!   (latency quantile targets, CI-coverage floors from audit scores),
//!   multi-window burn-rate evaluation (fast 5m/1h + slow 6h/3d pairs
//!   on the session clock), error-budget accounting, and
//!   hysteresis-latched alerts emitted as `aqp.slo.*` metrics plus
//!   JSONL via `aqp_obs::JsonlSink`.
//! * [`DriftDetector`] — EWMA control chart + Page-Hinkley test
//!   streaming over per-query relative error and coverage indicators,
//!   so miscalibration fires *between* audit windows. Detector state
//!   is a pure function of (seed, event sequence).
//! * Configuration for the always-on flight recorder
//!   (`aqp_obs::FlightRecorder`), which the session dumps whenever an
//!   SLO alert, audit alert, or degraded execution fires.
//!
//! # Wiring
//!
//! The session owns an engine when `SessionConfig::slo` is `Some`: it
//! classifies each query's SQL, feeds latency events after execution
//! and audit scores after replay, records every completed trace into
//! the flight recorder, and dumps the recorder at alert time. With
//! `slo: None` nothing is constructed — the pipeline is bit-identical
//! to a build without this crate.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod drift;
pub mod engine;

pub use config::{
    BurnThresholds, ClassRouter, ClassRule, DriftConfig, Objective, ObjectiveKind, SloConfig,
    SloLogConfig,
    SloWindows,
};
pub use drift::{Detector, DriftDetector, DriftSignal, DriftStatus};
pub use engine::{
    ObjectiveStatus, Severity, SloAlert, SloEngine, SloReport, FLEET_STREAM_CLASS,
};

//! The SLO engine: multi-window burn-rate evaluation over good/bad
//! event streams, error-budget accounting, hysteresis-latched alerts,
//! and the drift-detector plumbing.
//!
//! Objectives are reduced to event streams: a latency objective turns
//! every query into a good/bad event (bad = over the threshold), a
//! coverage objective turns every audited group-aggregate into one
//! (bad = CI miss). With allowance `a = 1 − target`, the burn rate
//! over a window is `bad_fraction / a` — 1.0 means the error budget is
//! being spent exactly at the sustainable rate. Alerts follow the
//! multiwindow multi-burn-rate recipe: page when *both* fast windows
//! (5m and 1h) burn above the page threshold, warn when both slow
//! windows (6h and 3d) burn above the warn threshold, each latched
//! with a re-arm hysteresis so one sustained episode fires once.
//!
//! Everything is timestamped by the session's `aqp_obs::Clock`; under
//! the mock clock the full alert sequence is a pure function of
//! (seed, event sequence).

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use aqp_audit::AuditScore;
use aqp_obs::json::{push_f64, push_str_lit};
use aqp_obs::{name, Counter, Gauge, JsonlSink, ObsHandle, Timestamp};

use crate::config::{Objective, ObjectiveKind, SloConfig, SloLogConfig};
use crate::drift::{DriftDetector, DriftSignal, DriftStatus};

/// Pseudo-class prefixing the fleet-wide drift streams
/// (`fleet/coverage_miss`, `fleet/rel_error`): every audited indicator
/// feeds these in addition to its own class stream, so a drift that
/// rides in on a *new* workload class — whose class stream has no
/// healthy baseline to deviate from — is still caught.
pub const FLEET_STREAM_CLASS: &str = "fleet";

/// Alert severity, by window pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The fast (5m/1h) pair burned above the page threshold.
    Page,
    /// The slow (6h/3d) pair burned above the warn threshold.
    Warn,
}

impl Severity {
    /// Stable lowercase name for logs and dashboards.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Page => "page",
            Severity::Warn => "warn",
        }
    }
}

/// One latched burn-rate alert.
#[derive(Debug, Clone)]
pub struct SloAlert {
    /// Severity (which window pair latched).
    pub severity: Severity,
    /// Objective id, e.g. `interactive/latency_p95_le_40ms`.
    pub objective: String,
    /// Workload class of the objective.
    pub class: String,
    /// Burn rate over the pair's short window at latch time.
    pub burn_short: f64,
    /// Burn rate over the pair's long window at latch time.
    pub burn_long: f64,
    /// The threshold the pair crossed.
    pub threshold: f64,
    /// Remaining error-budget fraction over the 3d accounting window.
    pub budget_remaining: f64,
    /// 1-based SLO event ordinal (across all objectives) at latch time.
    pub at_event: u64,
}

impl std::fmt::Display for SloAlert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: burn {:.1}/{:.1} >= {:.1}, budget {:.0}% at event {}",
            self.severity.as_str().to_uppercase(),
            self.objective,
            self.burn_short,
            self.burn_long,
            self.threshold,
            self.budget_remaining * 100.0,
            self.at_event
        )
    }
}

/// One time bucket of good/bad event counts.
#[derive(Debug, Clone)]
struct Bucket {
    start_ns: u64,
    good: u64,
    bad: u64,
}

/// Live state of one objective.
#[derive(Debug)]
struct ObjectiveState {
    objective: Objective,
    id: String,
    allowance: f64,
    buckets: VecDeque<Bucket>,
    events: u64,
    bad: u64,
    page_armed: bool,
    warn_armed: bool,
    burn_fast: f64,
    burn_slow: f64,
    budget_remaining: f64,
}

impl ObjectiveState {
    fn new(objective: Objective) -> Self {
        let id = objective.id();
        let allowance = objective.allowance();
        ObjectiveState {
            objective,
            id,
            allowance,
            buckets: VecDeque::new(),
            events: 0,
            bad: 0,
            page_armed: true,
            warn_armed: true,
            burn_fast: 0.0,
            burn_slow: 0.0,
            budget_remaining: 1.0,
        }
    }

    /// Record one event into the bucket for `now_ns`, evicting buckets
    /// that fell out of the retention horizon.
    fn record(&mut self, bad: bool, now_ns: u64, bucket_ns: u64, retain_ns: u64) {
        self.events += 1;
        if bad {
            self.bad += 1;
        }
        let start_ns = now_ns - now_ns % bucket_ns.max(1);
        match self.buckets.back_mut() {
            Some(b) if b.start_ns == start_ns => {
                if bad {
                    b.bad += 1;
                } else {
                    b.good += 1;
                }
            }
            _ => self.buckets.push_back(Bucket {
                start_ns,
                good: u64::from(!bad),
                bad: u64::from(bad),
            }),
        }
        let horizon = now_ns.saturating_sub(retain_ns);
        while let Some(front) = self.buckets.front() {
            if front.start_ns.saturating_add(bucket_ns) <= horizon {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// `(bad, total)` event counts over the trailing `window_ns`.
    fn window_counts(&self, now_ns: u64, window_ns: u64, bucket_ns: u64) -> (u64, u64) {
        let horizon = now_ns.saturating_sub(window_ns);
        let mut bad = 0;
        let mut total = 0;
        for b in self.buckets.iter().rev() {
            if b.start_ns.saturating_add(bucket_ns) <= horizon {
                break;
            }
            bad += b.bad;
            total += b.good + b.bad;
        }
        (bad, total)
    }

    /// Burn rate over the trailing `window_ns`: `bad_fraction /
    /// allowance`, 0 when the window is empty.
    fn burn(&self, now_ns: u64, window_ns: u64, bucket_ns: u64) -> f64 {
        let (bad, total) = self.window_counts(now_ns, window_ns, bucket_ns);
        if total == 0 {
            0.0
        } else {
            (bad as f64 / total as f64) / self.allowance
        }
    }
}

/// The rotating JSONL log, opened lazily so an unwritable path only
/// disables logging (never the query path).
#[derive(Debug)]
enum SinkState {
    Disabled,
    Unopened(SloLogConfig),
    Open(JsonlSink),
    Failed,
}

/// Meter handles registered once at construction.
#[derive(Debug)]
struct Meters {
    events: Counter,
    bad: Counter,
    page_alerts: Counter,
    warn_alerts: Counter,
    worst_burn_fast: Gauge,
    worst_burn_slow: Gauge,
    min_budget: Gauge,
    drift_signals: Counter,
    log_errors: Counter,
    /// Registered only when a JSONL log is configured, so log-less
    /// engines keep their metric surface unchanged.
    sink_dropped: Option<Counter>,
}

/// State behind the engine lock.
#[derive(Debug)]
struct State {
    events: u64,
    objectives: Vec<ObjectiveState>,
    drift: BTreeMap<String, DriftDetector>,
    alerts: Vec<SloAlert>,
    sink: SinkState,
}

/// The fleet-level SLO engine. Thread-safe; the session calls it
/// inline after each query and each audit ingest.
#[derive(Debug)]
pub struct SloEngine {
    cfg: SloConfig,
    meters: Meters,
    state: Mutex<State>,
}

impl SloEngine {
    /// Build an engine from `cfg`, registering its meters on `obs`.
    pub fn new(cfg: SloConfig, obs: &ObsHandle) -> Self {
        let metrics = &obs.metrics;
        let sink = match cfg.log.clone() {
            Some(log) => SinkState::Unopened(log),
            None => SinkState::Disabled,
        };
        let objectives = cfg.objectives.iter().cloned().map(ObjectiveState::new).collect();
        SloEngine {
            meters: Meters {
                events: metrics.counter(name::SLO_EVENTS),
                bad: metrics.counter(name::SLO_EVENTS_BAD),
                page_alerts: metrics.counter(name::SLO_PAGE_ALERTS),
                warn_alerts: metrics.counter(name::SLO_WARN_ALERTS),
                worst_burn_fast: metrics.gauge(name::SLO_WORST_BURN_FAST),
                worst_burn_slow: metrics.gauge(name::SLO_WORST_BURN_SLOW),
                min_budget: metrics.gauge(name::SLO_MIN_BUDGET_REMAINING),
                drift_signals: metrics.counter(name::SLO_DRIFT_SIGNALS),
                log_errors: metrics.counter(name::SLO_LOG_ERRORS),
                sink_dropped: cfg
                    .log
                    .is_some()
                    .then(|| metrics.counter(name::OBS_SINK_DROPPED_LINES)),
            },
            state: Mutex::new(State {
                events: 0,
                objectives,
                drift: BTreeMap::new(),
                alerts: Vec::new(),
                sink,
            }),
            cfg,
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// The workload class of `sql` under this engine's class rules.
    pub fn classify<'a>(&'a self, sql: &str) -> &'a str {
        self.cfg.classify(sql)
    }

    /// The engine lock, recovering from poisoning: a panic elsewhere
    /// mid-update leaves the buckets structurally sound.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Observe one completed query's latency for every latency
    /// objective of `class`. Returns the alerts latched by this event.
    pub fn observe_latency(&self, class: &str, latency: Duration, now: Timestamp) -> Vec<SloAlert> {
        let ms = latency.as_secs_f64() * 1e3;
        let mut st = self.lock();
        let mut fired = Vec::new();
        let events: Vec<(usize, bool)> = st
            .objectives
            .iter()
            .enumerate()
            .filter_map(|(idx, o)| match o.objective.kind {
                ObjectiveKind::Latency { threshold_ms, .. } if o.objective.class == class => {
                    Some((idx, ms > threshold_ms))
                }
                _ => None,
            })
            .collect();
        for (idx, bad) in events {
            fired.extend(self.observe_event(&mut st, idx, bad, now));
        }
        self.finish(&mut st);
        fired
    }

    /// Observe one audited query's per-aggregate scores for every
    /// coverage objective of `class`, and feed the drift streams.
    /// Returns the latched alerts and any drift signals raised.
    ///
    /// Each indicator feeds two detectors: the per-class stream
    /// (`<class>/coverage_miss`, `<class>/rel_error`) and the
    /// fleet-wide stream (prefixed [`FLEET_STREAM_CLASS`]). The fleet
    /// stream is what catches a *routing* drift — a workload class that
    /// was healthy during its own baseline never re-baselines, but the
    /// fleet stream sees the healthy-to-miscalibrated transition across
    /// classes and fires between audit windows.
    pub fn observe_audit(
        &self,
        class: &str,
        scores: &[AuditScore],
        now: Timestamp,
    ) -> (Vec<SloAlert>, Vec<DriftSignal>) {
        let mut st = self.lock();
        let mut fired = Vec::new();
        let mut signals = Vec::new();
        let coverage_idxs: Vec<usize> = st
            .objectives
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                o.objective.class == class
                    && matches!(o.objective.kind, ObjectiveKind::Coverage { .. })
            })
            .map(|(idx, _)| idx)
            .collect();
        for score in scores {
            if let Some(covered) = score.covered {
                for &idx in &coverage_idxs {
                    fired.extend(self.observe_event(&mut st, idx, !covered, now));
                }
                let miss = if covered { 0.0 } else { 1.0 };
                signals.extend(self.observe_drift(&mut st, class, "coverage_miss", miss));
                if class != FLEET_STREAM_CLASS {
                    signals.extend(self.observe_drift(
                        &mut st,
                        FLEET_STREAM_CLASS,
                        "coverage_miss",
                        miss,
                    ));
                }
            }
            if let Some(rel_error) = score.rel_error {
                if rel_error.is_finite() {
                    signals.extend(self.observe_drift(&mut st, class, "rel_error", rel_error));
                    if class != FLEET_STREAM_CLASS {
                        signals.extend(self.observe_drift(
                            &mut st,
                            FLEET_STREAM_CLASS,
                            "rel_error",
                            rel_error,
                        ));
                    }
                }
            }
        }
        self.finish(&mut st);
        (fired, signals)
    }

    /// Feed one value to the `class/stream` drift detector, logging and
    /// counting any signal.
    fn observe_drift(
        &self,
        st: &mut State,
        class: &str,
        stream: &str,
        x: f64,
    ) -> Option<DriftSignal> {
        let key = format!("{class}/{stream}");
        let drift_cfg = &self.cfg.drift;
        let signal = st
            .drift
            .entry(key.clone())
            .or_insert_with(|| DriftDetector::new(&key, drift_cfg))
            .observe(x)?;
        self.meters.drift_signals.inc();
        let line = drift_line(&signal);
        write_line(&mut st.sink, &line, &self.meters.log_errors, self.meters.sink_dropped.as_ref());
        Some(signal)
    }

    /// Record one good/bad event for objective `idx` and evaluate its
    /// burn rates, latches, and budget.
    fn observe_event(&self, st: &mut State, idx: usize, bad: bool, now: Timestamp) -> Vec<SloAlert> {
        st.events += 1;
        let at_event = st.events;
        self.meters.events.inc();
        if bad {
            self.meters.bad.inc();
        }
        let now_ns = now.nanos();
        let w = &self.cfg.windows;
        let bucket_ns = w.bucket.as_nanos().min(u128::from(u64::MAX)) as u64;
        let retain_ns = w.slow_long.as_nanos().min(u128::from(u64::MAX)) as u64;
        let th = &self.cfg.thresholds;
        let mut fired = Vec::new();
        let Some(o) = st.objectives.get_mut(idx) else {
            return fired;
        };
        o.record(bad, now_ns, bucket_ns, retain_ns);
        let window_ns = |d: Duration| d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let fast_short = o.burn(now_ns, window_ns(w.fast_short), bucket_ns);
        let fast_long = o.burn(now_ns, window_ns(w.fast_long), bucket_ns);
        let slow_short = o.burn(now_ns, window_ns(w.slow_short), bucket_ns);
        let slow_long = o.burn(now_ns, window_ns(w.slow_long), bucket_ns);
        o.burn_fast = fast_short.min(fast_long);
        o.burn_slow = slow_short.min(slow_long);
        o.budget_remaining = (1.0 - slow_long).max(0.0);
        let (_, eligible) = o.window_counts(now_ns, window_ns(w.fast_long), bucket_ns);
        let enough = eligible >= th.min_events;
        if enough && o.burn_fast >= th.page {
            if o.page_armed {
                o.page_armed = false;
                fired.push(SloAlert {
                    severity: Severity::Page,
                    objective: o.id.clone(),
                    class: o.objective.class.clone(),
                    burn_short: fast_short,
                    burn_long: fast_long,
                    threshold: th.page,
                    budget_remaining: o.budget_remaining,
                    at_event,
                });
            }
        } else if o.burn_fast < th.clear_below {
            o.page_armed = true;
        }
        if enough && o.burn_slow >= th.warn {
            if o.warn_armed {
                o.warn_armed = false;
                fired.push(SloAlert {
                    severity: Severity::Warn,
                    objective: o.id.clone(),
                    class: o.objective.class.clone(),
                    burn_short: slow_short,
                    burn_long: slow_long,
                    threshold: th.warn,
                    budget_remaining: o.budget_remaining,
                    at_event,
                });
            }
        } else if o.burn_slow < th.clear_below {
            o.warn_armed = true;
        }
        for alert in &fired {
            match alert.severity {
                Severity::Page => self.meters.page_alerts.inc(),
                Severity::Warn => self.meters.warn_alerts.inc(),
            }
            let line = alert_line(alert);
            write_line(
                &mut st.sink,
                &line,
                &self.meters.log_errors,
                self.meters.sink_dropped.as_ref(),
            );
        }
        st.alerts.extend(fired.iter().cloned());
        fired
    }

    /// Refresh the fleet gauges and flush the log after a batch of
    /// observations.
    fn finish(&self, st: &mut State) {
        let mut worst_fast = 0.0f64;
        let mut worst_slow = 0.0f64;
        let mut min_budget = 1.0f64;
        for o in &st.objectives {
            worst_fast = worst_fast.max(o.burn_fast);
            worst_slow = worst_slow.max(o.burn_slow);
            min_budget = min_budget.min(o.budget_remaining);
        }
        self.meters.worst_burn_fast.set(worst_fast);
        self.meters.worst_burn_slow.set(worst_slow);
        self.meters.min_budget.set(min_budget);
        if let SinkState::Open(sink) = &mut st.sink {
            if sink.flush().is_err() {
                self.meters.log_errors.inc();
            }
        }
    }

    /// A deterministic snapshot of everything the engine knows:
    /// per-objective burns/budgets/latches, drift-stream states, and
    /// the alert history. Contains no wall-clock data beyond what the
    /// (mockable) session clock produced, so a seeded run renders
    /// bit-identically on repeat.
    pub fn report(&self) -> SloReport {
        let st = self.lock();
        SloReport {
            events: st.events,
            objectives: st
                .objectives
                .iter()
                .map(|o| ObjectiveStatus {
                    id: o.id.clone(),
                    class: o.objective.class.clone(),
                    events: o.events,
                    bad: o.bad,
                    burn_fast: o.burn_fast,
                    burn_slow: o.burn_slow,
                    budget_remaining: o.budget_remaining,
                    page_latched: !o.page_armed,
                    warn_latched: !o.warn_armed,
                })
                .collect(),
            drift: st.drift.values().map(|d| d.status()).collect(),
            alerts: st.alerts.clone(),
        }
    }
}

/// Per-objective summary inside an [`SloReport`].
#[derive(Debug, Clone)]
pub struct ObjectiveStatus {
    /// Objective id.
    pub id: String,
    /// Workload class.
    pub class: String,
    /// Events observed for this objective.
    pub events: u64,
    /// Events that consumed budget.
    pub bad: u64,
    /// `min(burn_5m, burn_1h)` at the last observation.
    pub burn_fast: f64,
    /// `min(burn_6h, burn_3d)` at the last observation.
    pub burn_slow: f64,
    /// Remaining budget fraction over the 3d window, floored at 0.
    pub budget_remaining: f64,
    /// Whether the page latch is currently held.
    pub page_latched: bool,
    /// Whether the warn latch is currently held.
    pub warn_latched: bool,
}

/// Snapshot of the engine's scorekeeping (see [`SloEngine::report`]).
#[derive(Debug, Clone)]
pub struct SloReport {
    /// SLO events observed across all objectives.
    pub events: u64,
    /// Per-objective status, in declaration order.
    pub objectives: Vec<ObjectiveStatus>,
    /// Per-stream drift status, stream-name-sorted.
    pub drift: Vec<DriftStatus>,
    /// Every alert latched, in firing order.
    pub alerts: Vec<SloAlert>,
}

impl SloReport {
    /// Render the burn/budget table, drift verdicts, and alert history.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "slo: events={} objectives={}\n",
            self.events,
            self.objectives.len()
        ));
        let width = self
            .objectives
            .iter()
            .map(|o| o.id.len())
            .chain(std::iter::once("objective".len()))
            .max()
            .unwrap_or(9);
        out.push_str(&format!(
            "{:<width$}  {:>6}  {:>6}  {:>10}  {:>10}  {:>6}  {:>7}\n",
            "objective", "n", "bad", "burn(fast)", "burn(slow)", "budget", "latched"
        ));
        for o in &self.objectives {
            let latched = match (o.page_latched, o.warn_latched) {
                (true, true) => "P+W",
                (true, false) => "P",
                (false, true) => "W",
                (false, false) => "-",
            };
            out.push_str(&format!(
                "{:<width$}  {:>6}  {:>6}  {:>10.2}  {:>10.2}  {:>5.0}%  {:>7}\n",
                o.id,
                o.events,
                o.bad,
                o.burn_fast,
                o.burn_slow,
                o.budget_remaining * 100.0,
                latched
            ));
        }
        if self.drift.is_empty() {
            out.push_str("drift: no streams\n");
        } else {
            out.push_str("drift streams:\n");
            for d in &self.drift {
                let last = match d.last_signal_at {
                    Some(at) => format!("event {at}"),
                    None => "-".to_string(),
                };
                out.push_str(&format!(
                    "  {:<28} events={:<6} signals={:<3} last={}\n",
                    d.stream, d.events, d.signals, last
                ));
            }
        }
        if self.alerts.is_empty() {
            out.push_str("alerts: none\n");
        } else {
            out.push_str(&format!("alerts ({}):\n", self.alerts.len()));
            for a in &self.alerts {
                out.push_str(&format!("  {a}\n"));
            }
        }
        out
    }
}

/// Write one line through the lazily-opened sink; failures only count.
fn write_line(sink: &mut SinkState, line: &str, errors: &Counter, dropped: Option<&Counter>) {
    loop {
        match sink {
            SinkState::Disabled | SinkState::Failed => return,
            SinkState::Unopened(cfg) => {
                match JsonlSink::open(&cfg.path, cfg.max_bytes, cfg.max_rotations) {
                    Ok(s) => {
                        *sink = SinkState::Open(match dropped {
                            Some(c) => s.with_dropped_lines_counter(c.clone()),
                            None => s,
                        })
                    }
                    Err(_) => {
                        errors.inc();
                        *sink = SinkState::Failed;
                        return;
                    }
                }
            }
            SinkState::Open(s) => {
                if s.append(line).is_err() {
                    errors.inc();
                    *sink = SinkState::Failed;
                }
                return;
            }
        }
    }
}

/// The JSONL record of one latched alert.
fn alert_line(a: &SloAlert) -> String {
    let mut out = String::from("{\"slo_alert\":{\"severity\":");
    push_str_lit(&mut out, a.severity.as_str());
    out.push_str(",\"objective\":");
    push_str_lit(&mut out, &a.objective);
    out.push_str(",\"class\":");
    push_str_lit(&mut out, &a.class);
    out.push_str(",\"burn_short\":");
    push_f64(&mut out, a.burn_short);
    out.push_str(",\"burn_long\":");
    push_f64(&mut out, a.burn_long);
    out.push_str(",\"threshold\":");
    push_f64(&mut out, a.threshold);
    out.push_str(",\"budget_remaining\":");
    push_f64(&mut out, a.budget_remaining);
    out.push_str(",\"at_event\":");
    out.push_str(&a.at_event.to_string());
    out.push_str("}}");
    out
}

/// The JSONL record of one drift signal.
fn drift_line(s: &DriftSignal) -> String {
    let mut out = String::from("{\"slo_drift\":{\"stream\":");
    push_str_lit(&mut out, &s.stream);
    out.push_str(",\"detector\":");
    push_str_lit(&mut out, s.detector.as_str());
    out.push_str(",\"at_event\":");
    out.push_str(&s.at_event.to_string());
    out.push_str(",\"statistic\":");
    push_f64(&mut out, s.statistic);
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_obs::Clock;

    fn obs() -> ObsHandle {
        ObsHandle::isolated(Clock::mock())
    }

    fn cfg() -> SloConfig {
        SloConfig::new().with_latency(SloConfig::DEFAULT_CLASS, 0.95, 10.0)
    }

    fn ts(secs: u64) -> Timestamp {
        Timestamp::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn healthy_stream_never_alerts_and_keeps_full_budget() {
        let obs = obs();
        let engine = SloEngine::new(cfg(), &obs);
        for i in 0..200 {
            let fired =
                engine.observe_latency("default", Duration::from_millis(5), ts(i));
            assert!(fired.is_empty(), "alert on a healthy stream at {i}");
        }
        let report = engine.report();
        assert_eq!(report.events, 200);
        assert_eq!(report.objectives[0].bad, 0);
        assert!((report.objectives[0].budget_remaining - 1.0).abs() < 1e-12);
        assert!(report.alerts.is_empty());
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter(name::SLO_EVENTS), Some(200));
        assert_eq!(snap.counter(name::SLO_EVENTS_BAD), Some(0));
        assert_eq!(snap.gauge(name::SLO_MIN_BUDGET_REMAINING), Some(1.0));
    }

    #[test]
    fn sustained_burn_pages_once_then_rearms_after_recovery() {
        let obs = obs();
        let engine = SloEngine::new(cfg(), &obs);
        // Warm up with good events, then a fully-bad episode: the bad
        // fraction climbs past 0.72, i.e. burn ≥ 14.4 at 5% allowance.
        let mut pages = 0;
        for i in 0..20 {
            pages += engine
                .observe_latency("default", Duration::from_millis(5), ts(i))
                .len();
        }
        for i in 20..140 {
            let fired = engine.observe_latency("default", Duration::from_millis(50), ts(i));
            pages += fired.iter().filter(|a| a.severity == Severity::Page).count();
        }
        assert_eq!(pages, 1, "a sustained episode must latch exactly one page");
        assert!(engine.report().objectives[0].page_latched);
        // Recovery: events far enough in the future that the bad
        // episode leaves every window → burn drops to 0 → re-arm.
        let far = 8 * 24 * 3600;
        for i in 0..10 {
            engine.observe_latency("default", Duration::from_millis(5), ts(far + i));
        }
        assert!(!engine.report().objectives[0].page_latched, "latch must re-arm");
        // A second episode fires a second page.
        let fired: usize = (0..60)
            .map(|i| {
                engine
                    .observe_latency("default", Duration::from_millis(50), ts(far + 10 + i))
                    .len()
            })
            .sum();
        assert!(fired >= 1, "second episode must page again");
        let snap = obs.metrics.snapshot();
        assert!(snap.counter(name::SLO_PAGE_ALERTS).unwrap_or(0) >= 2);
    }

    #[test]
    fn min_events_guard_suppresses_noisy_early_alerts() {
        let obs = obs();
        let engine = SloEngine::new(cfg(), &obs);
        // A handful of bad events right away: burn is 20 but the fast
        // window holds fewer than min_events events.
        for i in 0..10 {
            let fired = engine.observe_latency("default", Duration::from_millis(50), ts(i));
            assert!(fired.is_empty(), "alert with only {} events", i + 1);
        }
    }

    #[test]
    fn coverage_objective_consumes_budget_on_misses() {
        let obs = obs();
        let engine =
            SloEngine::new(SloConfig::new().with_coverage("default", 0.9), &obs);
        let hit = AuditScore {
            covered: Some(true),
            rel_error: Some(0.01),
            error_ratio: Some(0.5),
            outcome: None,
        };
        let miss = AuditScore {
            covered: Some(false),
            rel_error: Some(0.5),
            error_ratio: Some(3.0),
            outcome: None,
        };
        for i in 0..30 {
            engine.observe_audit("default", &[hit], ts(i));
        }
        let before = engine.report().objectives[0].budget_remaining;
        for i in 30..60 {
            engine.observe_audit("default", &[miss], ts(i));
        }
        let report = engine.report();
        let after = report.objectives[0].budget_remaining;
        assert!(after < before, "misses must consume budget ({before} -> {after})");
        assert_eq!(report.objectives[0].bad, 30);
        // The sustained 50% miss rate also trips the drift stream.
        assert!(report.drift.iter().any(|d| d.stream == "default/coverage_miss"));
        let snap = obs.metrics.snapshot();
        assert!(snap.counter(name::SLO_DRIFT_SIGNALS).unwrap_or(0) >= 1);
    }

    #[test]
    fn fleet_drift_stream_catches_a_miscalibrated_new_class() {
        let obs = obs();
        let engine = SloEngine::new(
            SloConfig::new().with_coverage("healthy", 0.95).with_coverage("tail", 0.95),
            &obs,
        );
        let hit = AuditScore {
            covered: Some(true),
            rel_error: Some(0.01),
            error_ratio: Some(0.5),
            outcome: None,
        };
        let miss = AuditScore {
            covered: Some(false),
            rel_error: Some(0.6),
            error_ratio: Some(8.0),
            outcome: None,
        };
        for i in 0..40 {
            let (_, signals) = engine.observe_audit("healthy", &[hit], ts(i));
            assert!(signals.is_empty(), "healthy baseline must not signal at {i}");
        }
        // The "tail" class is brand new: its own stream is constant-bad
        // from its first event (nothing to deviate from), but the fleet
        // stream carries the healthy baseline across classes and fires
        // within a handful of miscalibrated queries.
        let mut fleet_signal_at = None;
        for i in 40..60 {
            let (_, signals) = engine.observe_audit("tail", &[miss], ts(i));
            assert!(
                signals.iter().all(|s| s.stream.starts_with("fleet/")),
                "the baseline-free tail stream must stay quiet: {signals:?}"
            );
            if fleet_signal_at.is_none() && !signals.is_empty() {
                fleet_signal_at = Some(i);
            }
        }
        let at = fleet_signal_at.expect("fleet stream must flag the phase change");
        assert!(at < 50, "fleet drift too slow: fired at query {at}");
        let report = engine.report();
        assert!(report.drift.iter().any(|d| d.stream == "fleet/coverage_miss"));
        assert!(report.drift.iter().any(|d| d.stream == "tail/coverage_miss"));
    }

    #[test]
    fn alert_sequence_and_report_are_deterministic() {
        let run = || {
            let obs = obs();
            let engine = SloEngine::new(
                cfg().with_coverage(SloConfig::DEFAULT_CLASS, 0.9),
                &obs,
            );
            for i in 0..150u64 {
                let lat = if i % 3 == 0 { 50 } else { 5 };
                engine.observe_latency("default", Duration::from_millis(lat), ts(i));
                let covered = i % 4 != 0;
                engine.observe_audit(
                    "default",
                    &[AuditScore {
                        covered: Some(covered),
                        rel_error: Some(if covered { 0.02 } else { 0.4 }),
                        error_ratio: None,
                        outcome: None,
                    }],
                    ts(i),
                );
            }
            engine.report().render_table()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn alerts_and_drift_signals_reach_the_jsonl_log() {
        let dir = std::env::temp_dir().join("aqp_slo_engine_log_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create log dir");
        let path = dir.join("slo.jsonl");
        let obs = obs();
        let engine = SloEngine::new(
            cfg().with_log(SloLogConfig::at(&path)),
            &obs,
        );
        for i in 0..80 {
            engine.observe_latency("default", Duration::from_millis(50), ts(i));
        }
        let log = std::fs::read_to_string(&path).expect("slo log");
        assert!(log.contains("\"slo_alert\""), "{log}");
        assert!(log.contains("\"severity\":\"page\""), "{log}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_log_disables_itself_and_counts_errors() {
        let obs = obs();
        let engine = SloEngine::new(
            cfg().with_log(SloLogConfig::at("/dev/null/nope/slo.jsonl")),
            &obs,
        );
        for i in 0..80 {
            engine.observe_latency("default", Duration::from_millis(50), ts(i));
        }
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter(name::SLO_LOG_ERRORS), Some(1));
        assert!(snap.counter(name::SLO_PAGE_ALERTS).unwrap_or(0) >= 1);
    }

    #[test]
    fn classes_route_events_to_their_own_objectives() {
        let obs = obs();
        let engine = SloEngine::new(
            SloConfig::new()
                .with_class("interactive", "AVG(")
                .with_latency("interactive", 0.95, 10.0)
                .with_latency(SloConfig::DEFAULT_CLASS, 0.95, 100.0),
            &obs,
        );
        let class = engine.classify("SELECT AVG(time) FROM sessions");
        assert_eq!(class, "interactive");
        for i in 0..30 {
            engine.observe_latency(class, Duration::from_millis(50), ts(i));
        }
        let report = engine.report();
        let interactive = &report.objectives[0];
        let default = &report.objectives[1];
        assert_eq!(interactive.events, 30);
        assert_eq!(interactive.bad, 30, "50ms > 10ms threshold");
        assert_eq!(default.events, 0, "default class saw nothing");
    }
}

//! A lightweight item/expression index over the lexed workspace.
//!
//! The semantic rules (`semrules.rs`) need more than a token stream:
//! which `fn` a token belongs to, which functions call which, where
//! `Mutex`/`RwLock` guards are acquired and how long they are plausibly
//! held, and which bindings have hash-ordered types. This module builds
//! that index with name-based resolution — deliberately *not* a type
//! checker. The heuristics favour precision (few false positives) and
//! determinism (all containers are ordered), and every rule that
//! consumes the index has an allowlist escape hatch for the cases the
//! approximation gets wrong.

use crate::lexer::{cfg_test_line_ranges, lex, matching_close, SpannedTok};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One lexed file plus derived per-file facts.
pub struct FileTokens {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    /// The token stream.
    pub toks: Vec<SpannedTok>,
    /// 1-based inclusive line ranges of `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// The workspace crate this file belongs to (`"<name>"` for
    /// `crates/<name>/…`, `"root"` for the top-level `src/`, the first
    /// path component otherwise).
    pub krate: String,
    /// Whether this is library code (under a `src/` tree, not under
    /// `tests`/`benches`/`examples`).
    pub is_lib: bool,
}

impl FileTokens {
    /// Lex `src` as the file at repo-relative path `rel`.
    pub fn new(rel: &str, src: &str) -> FileTokens {
        let toks = lex(src);
        let test_ranges = cfg_test_line_ranges(&toks);
        let comps: Vec<&str> = Path::new(rel).iter().filter_map(|c| c.to_str()).collect();
        let krate = if comps.len() >= 2 && comps[0] == "crates" {
            comps[1].to_string()
        } else if comps.first() == Some(&"src") {
            "root".to_string()
        } else {
            comps.first().unwrap_or(&"").to_string()
        };
        let in_test_tree =
            comps.iter().any(|c| matches!(*c, "tests" | "benches" | "examples"));
        let is_lib = !in_test_tree
            && (comps.first() == Some(&"src")
                || (comps.len() >= 3 && comps[0] == "crates" && comps[2] == "src"));
        FileTokens { rel: rel.to_string(), toks, test_ranges, krate, is_lib }
    }

    /// Is `line` inside a `#[cfg(test)]` region?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(s, e)| line >= s && line <= e)
    }
}

/// A `fn` item: its name and the token range of its body.
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// Index into [`WorkspaceIndex::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body: `(open_brace, close_brace)` inclusive.
    pub body: (usize, usize),
    /// Inside a `#[cfg(test)]` region or a test tree.
    pub in_test: bool,
}

/// A call site inside some function body.
pub struct Call {
    /// Token index of the callee identifier (within its file).
    pub tok: usize,
    /// Callee name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// `true` for `.name(…)` method syntax.
    pub is_method: bool,
}

/// A `Mutex`/`RwLock` guard acquisition site.
pub struct LockAcq {
    /// Lock class: `(crate, field)` of the acquired lock.
    pub class: (String, String),
    /// Token index of the `lock`/`read`/`write` identifier.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Acquisition method (`lock`, `read`, or `write`).
    pub op: String,
    /// Token index (exclusive) up to which the guard is considered
    /// held: end of statement for temporaries, end of the enclosing
    /// block (or `drop(guard)`) for `let`-bound guards.
    pub held_until: usize,
}

/// Per-function derived facts.
#[derive(Default)]
pub struct FnFacts {
    /// Call sites in body order.
    pub calls: Vec<Call>,
    /// Lock acquisitions in body order.
    pub acquires: Vec<LockAcq>,
}

/// The whole-workspace index the semantic rules run on.
pub struct WorkspaceIndex {
    /// Every scanned source file.
    pub files: Vec<FileTokens>,
    /// Every `fn` item, in (file, token) order.
    pub fns: Vec<FnItem>,
    /// Facts for `fns[i]`.
    pub facts: Vec<FnFacts>,
    /// Function ids by name (ordered for deterministic iteration).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `(crate, field)` pairs declared as `Mutex<…>`/`RwLock<…>`
    /// (directly or behind `Arc`/`OnceLock`).
    #[cfg_attr(not(test), allow(dead_code))]
    pub lock_fields: BTreeSet<(String, String)>,
    /// Per-file sets of identifiers with hash-ordered types
    /// (`HashMap`/`HashSet` fields, params, and `let` bindings).
    pub hash_names: Vec<BTreeSet<String>>,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "let", "else",
    "break", "continue", "unsafe", "await", "ref", "mut", "box", "yield", "fn",
];

impl WorkspaceIndex {
    /// Build the index from `(rel_path, source)` pairs.
    pub fn build(sources: &[(String, String)]) -> WorkspaceIndex {
        let files: Vec<FileTokens> =
            sources.iter().map(|(rel, src)| FileTokens::new(rel, src)).collect();

        let mut lock_fields = BTreeSet::new();
        let mut hash_names = Vec::with_capacity(files.len());
        for f in &files {
            for field in lock_field_names(&f.toks) {
                lock_fields.insert((f.krate.clone(), field));
            }
            hash_names.push(hash_typed_names(&f.toks));
        }

        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            extract_fns(fi, f, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, item) in fns.iter().enumerate() {
            by_name.entry(item.name.clone()).or_default().push(i);
        }

        let mut facts: Vec<FnFacts> = (0..fns.len()).map(|_| FnFacts::default()).collect();
        for (fi, f) in files.iter().enumerate() {
            collect_facts(fi, f, &fns, &lock_fields, &mut facts);
        }

        WorkspaceIndex { files, fns, facts, by_name, lock_fields, hash_names }
    }

    /// The innermost function whose body contains token `tok` of file
    /// `file`, if any.
    pub fn innermost_fn(&self, file: usize, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.body.0 <= tok && tok <= f.body.1)
            .min_by_key(|(_, f)| f.body.1 - f.body.0)
            .map(|(i, _)| i)
    }

    /// Resolve a call site. Method calls (`x.name(…)`) only resolve to
    /// a definition in the same file: inherent methods in this codebase
    /// live beside their callers, and widening further would let std
    /// method names (`.collect()`, `.min()`, …) alias unrelated free
    /// fns in other crates — exactly the false edges a name-based call
    /// graph must not grow. Free calls use the full [`resolve`] chain.
    ///
    /// [`resolve`]: WorkspaceIndex::resolve
    pub fn resolve_call(&self, caller_file: usize, c: &Call) -> Option<usize> {
        if c.is_method {
            let ids = self.by_name.get(&c.name)?;
            let same_file: Vec<usize> =
                ids.iter().copied().filter(|&i| self.fns[i].file == caller_file).collect();
            return if same_file.len() == 1 { Some(same_file[0]) } else { None };
        }
        self.resolve(caller_file, &c.name)
    }

    /// Resolve a call by name: same file first, then same crate, then
    /// a globally unique definition. Ambiguity at a level falls through
    /// only when that level has *no* candidate; two same-file or
    /// same-crate candidates stay unresolved (precision over recall).
    pub fn resolve(&self, caller_file: usize, name: &str) -> Option<usize> {
        let ids = self.by_name.get(name)?;
        let krate = &self.files[caller_file].krate;
        let same_file: Vec<usize> =
            ids.iter().copied().filter(|&i| self.fns[i].file == caller_file).collect();
        match same_file.len() {
            1 => return Some(same_file[0]),
            0 => {}
            _ => return None,
        }
        let same_crate: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&i| &self.files[self.fns[i].file].krate == krate)
            .collect();
        match same_crate.len() {
            1 => return Some(same_crate[0]),
            0 => {}
            _ => return None,
        }
        if ids.len() == 1 {
            Some(ids[0])
        } else {
            None
        }
    }
}

/// Find struct fields / statics declared with a lock type: walks back
/// from every `Mutex<`/`RwLock<` to the `name :` that introduces it,
/// skipping `Arc`, `OnceLock`, path segments, and `<` nesting.
fn lock_field_names(toks: &[SpannedTok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if !matches!(id, "Mutex" | "RwLock") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('<')) {
            continue;
        }
        let mut k = i;
        while k > 0 {
            k -= 1;
            let skippable = toks[k].is_punct(':')
                || toks[k].is_punct('<')
                || matches!(
                    toks[k].ident(),
                    Some("Arc" | "OnceLock" | "std" | "sync" | "parking_lot" | "collections")
                );
            if !skippable {
                break;
            }
        }
        if let Some(name) = toks[k].ident() {
            // Must actually be `name :` — the token after the name is a
            // colon (the start of the type annotation we walked back
            // through).
            if toks.get(k + 1).is_some_and(|n| n.is_punct(':')) {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// Identifiers with hash-ordered types in this file: `name: HashMap<…>`
/// annotations (fields, params, lets) and `let [mut] name = HashMap::…`
/// initialisations.
fn hash_typed_names(toks: &[SpannedTok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if !matches!(id, "HashMap" | "HashSet") {
            continue;
        }
        // Annotation form: walk back over path segments / colons.
        let mut k = i;
        while k > 0 {
            k -= 1;
            let skippable = toks[k].is_punct(':')
                || matches!(toks[k].ident(), Some("std" | "collections"));
            if !skippable {
                break;
            }
        }
        if let Some(name) = toks[k].ident() {
            if toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !matches!(name, "std" | "collections")
            {
                out.insert(name.to_string());
                continue;
            }
        }
        // Initialisation form: `let [mut] name = [&]HashMap::new()` —
        // scan back a few tokens for `let`.
        let lo = i.saturating_sub(6);
        if let Some(let_at) = (lo..i).rev().find(|&k| toks[k].is_ident("let")) {
            let mut n = let_at + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            if let Some(name) = toks.get(n).and_then(|t| t.ident()) {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// Extract every `fn` item of file `fi` into `fns`.
fn extract_fns(fi: usize, f: &FileTokens, fns: &mut Vec<FnItem>) {
    let toks = &f.toks;
    let in_test_tree = !f.is_lib
        && Path::new(&f.rel)
            .iter()
            .filter_map(|c| c.to_str())
            .any(|c| matches!(c, "tests" | "benches" | "examples"));
    let mut i = 0;
    while i + 1 < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks[i + 1].ident() else {
            i += 1;
            continue;
        };
        let line = toks[i].line;
        // Find the body `{` (or `;` for bodyless trait/extern decls),
        // skipping the parenthesised parameter list.
        let mut j = i + 2;
        let mut paren = 0usize;
        let mut body_open = None;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                paren += 1;
            } else if toks[j].is_punct(')') {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && toks[j].is_punct('{') {
                body_open = Some(j);
                break;
            } else if paren == 0 && toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j.max(i + 2);
            continue;
        };
        let mut depth = 0usize;
        let mut close = toks.len() - 1;
        let mut k = open;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                depth += 1;
            } else if toks[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
            k += 1;
        }
        fns.push(FnItem {
            name: name.to_string(),
            file: fi,
            line,
            body: (open, close),
            in_test: in_test_tree || f.in_test(line),
        });
        // Continue scanning *inside* the body too: nested fns get their
        // own (inner) items and sites are attributed to the innermost.
        i += 2;
    }
}

/// Collect call sites and lock acquisitions for every fn of file `fi`.
fn collect_facts(
    fi: usize,
    f: &FileTokens,
    fns: &[FnItem],
    lock_fields: &BTreeSet<(String, String)>,
    facts: &mut [FnFacts],
) {
    let toks = &f.toks;
    let owner_of = |tok: usize| -> Option<usize> {
        fns.iter()
            .enumerate()
            .filter(|(_, it)| it.file == fi && it.body.0 <= tok && tok <= it.body.1)
            .min_by_key(|(_, it)| it.body.1 - it.body.0)
            .map(|(i, _)| i)
    };
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&id) {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        let Some(owner) = owner_of(i) else { continue };
        let is_method = i > 0 && toks[i - 1].is_punct('.');

        // Lock acquisition: `.lock()` / `.read()` / `.write()` with an
        // empty argument list on a receiver field declared as a lock.
        if is_method
            && matches!(id, "lock" | "read" | "write")
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(recv) = toks.get(i.wrapping_sub(2)).and_then(|t| t.ident()) {
                let class = (f.krate.clone(), recv.to_string());
                if lock_fields.contains(&class) {
                    let held_until = held_span(toks, i, fns[owner].body.1);
                    facts[owner].acquires.push(LockAcq {
                        class,
                        tok: i,
                        line: t.line,
                        op: id.to_string(),
                        held_until,
                    });
                    continue; // an acquisition is not also a call edge
                }
            }
        }

        facts[owner].calls.push(Call {
            tok: i,
            name: id.to_string(),
            line: t.line,
            is_method,
        });
    }
}

/// Guard-preserving adapters: the value after the call is still the
/// guard (e.g. `std`'s `lock().unwrap_or_else(|p| p.into_inner())`).
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// How far the guard acquired at `op_tok` (`.lock` etc.) is held.
///
/// * The guard is *consumed in place* (`self.x.lock().counters…`): held
///   until the end of the statement.
/// * The guard is bound (`let g = self.x.lock();`): held until the end
///   of the enclosing block, or an explicit `drop(g)`.
pub(crate) fn held_span(toks: &[SpannedTok], op_tok: usize, body_close: usize) -> usize {
    // End of this statement: the `;` at relative depth 0, or wherever
    // the enclosing expression closes.
    let mut depth = 0i32;
    let mut stmt_end = body_close;
    let mut k = op_tok;
    while k <= body_close {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                stmt_end = k;
                break;
            }
        } else if depth == 0 && t.is_punct(';') {
            stmt_end = k;
            break;
        }
        k += 1;
    }

    // Walk the method chain after `.lock()`'s closing paren. If the
    // chain continues past the guard-preserving adapters, the guard is
    // a consumed temporary.
    let mut n = match matching_close(toks, op_tok + 1) {
        Some(close) => close + 1,
        None => return stmt_end,
    };
    while n + 2 < toks.len() && toks[n].is_punct('.') {
        let Some(m) = toks[n + 1].ident() else { break };
        if GUARD_ADAPTERS.contains(&m) {
            match matching_close(toks, n + 2) {
                Some(close) => n = close + 1,
                None => return stmt_end,
            }
        } else {
            return stmt_end; // chain consumes the guard
        }
    }
    if n < stmt_end && !toks[n].is_punct(';') && !toks[n].is_punct('?') {
        // Something else follows the guard expression inside this
        // statement (an operator, a match, …): treat as statement-local.
        // Exception below handles `let g = …;`.
        if !toks[n].is_punct(')') && !toks[n].is_punct('}') {
            return stmt_end;
        }
    }

    // Is the statement a `let` binding of the guard? Find the statement
    // start and check its first tokens.
    let mut s = op_tok;
    let mut d = 0i32;
    while s > 0 {
        s -= 1;
        let t = &toks[s];
        if t.is_punct('}') {
            // At depth 0 a `}` going backwards ends a preceding block
            // statement: a statement boundary, not expression nesting.
            if d == 0 {
                s += 1;
                break;
            }
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            d += 1;
        } else if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
            if d == 0 {
                s += 1;
                break;
            }
            d -= 1;
        } else if d == 0 && t.is_punct(';') {
            s += 1;
            break;
        }
    }
    if !toks.get(s).is_some_and(|t| t.is_ident("let")) {
        return stmt_end;
    }
    let mut g = s + 1;
    if toks.get(g).is_some_and(|t| t.is_ident("mut")) {
        g += 1;
    }
    let guard_name = toks.get(g).and_then(|t| t.ident()).unwrap_or("");

    // Held until the enclosing block closes or `drop(guard)`.
    let mut depth = 0i32;
    let mut k = stmt_end;
    while k <= body_close {
        let t = &toks[k];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return k;
            }
        } else if depth == 0
            && t.is_ident("drop")
            && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(k + 2).is_some_and(|n| n.is_ident(guard_name))
        {
            return k;
        }
        k += 1;
    }
    body_close
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(files: &[(&str, &str)]) -> WorkspaceIndex {
        let sources: Vec<(String, String)> =
            files.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect();
        WorkspaceIndex::build(&sources)
    }

    #[test]
    fn finds_lock_fields_through_wrappers() {
        let idx = index_of(&[(
            "crates/obs/src/metrics.rs",
            "struct R { inner: Mutex<Inner> }\n\
             struct C { inner2: Arc<RwLock<CatalogInner>> }\n\
             static CACHE: OnceLock<Mutex<u32>> = OnceLock::new();\n",
        )]);
        let got: Vec<String> =
            idx.lock_fields.iter().map(|(_, f)| f.clone()).collect();
        assert_eq!(got, vec!["CACHE", "inner", "inner2"]);
    }

    #[test]
    fn extracts_fns_and_calls() {
        let idx = index_of(&[(
            "crates/core/src/a.rs",
            "fn outer() { helper(); x.method(); }\nfn helper() {}\n",
        )]);
        assert_eq!(idx.fns.len(), 2);
        let outer = &idx.facts[0];
        let names: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "method"]);
        assert!(!outer.calls[0].is_method);
        assert!(outer.calls[1].is_method);
        assert_eq!(idx.resolve(0, "helper"), Some(1));
    }

    #[test]
    fn resolution_prefers_same_file_then_same_crate() {
        let idx = index_of(&[
            ("crates/obs/src/metrics.rs", "fn lock() {}\nfn user() { s.lock2(); }"),
            ("crates/obs/src/trace.rs", "fn lock() {}"),
            ("crates/core/src/only.rs", "fn unique_fn() {}"),
        ]);
        // `lock` is defined in two obs files: same-file resolution wins
        // from metrics.rs, and stays unresolved from an unrelated file.
        assert_eq!(idx.resolve(0, "lock"), Some(0));
        assert_eq!(idx.resolve(2, "lock"), None);
        // A globally unique name resolves from anywhere.
        assert_eq!(idx.resolve(0, "unique_fn"), Some(3));
    }

    #[test]
    fn acquisition_held_spans() {
        let src = "\
struct S { inner: Mutex<u32> }
impl S {
    fn temp(&self) { self.inner.lock().unwrap(); after(); }
    fn bound(&self) { let g = self.inner.lock(); use_it(&g); }
    fn dropped(&self) { let g = self.inner.lock(); drop(g); after(); }
}";
        let idx = index_of(&[("crates/obs/src/m.rs", src)]);
        let all: Vec<&LockAcq> = idx.facts.iter().flat_map(|f| &f.acquires).collect();
        assert_eq!(all.len(), 3);
        let f = &idx.files[0];
        // Temporary: held only to the end of its statement (the `;`).
        assert!(f.toks[all[0].held_until].is_punct(';'));
        // Let-bound: held to the closing brace of the method body.
        assert!(f.toks[all[1].held_until].is_punct('}'));
        // Dropped: held until the `drop` call.
        assert!(f.toks[all[2].held_until].is_ident("drop"));
        // The call after the drop is outside the held span.
        let dropped_fn = idx
            .facts
            .iter()
            .find(|ff| ff.acquires.iter().any(|a| a.held_until < 1000 && f.toks[a.held_until].is_ident("drop")))
            .expect("dropped fn");
        let after = dropped_fn.calls.iter().find(|c| c.name == "after").expect("after call");
        assert!(after.tok > dropped_fn.acquires[0].held_until);
    }

    #[test]
    fn hash_typed_names_found() {
        let idx = index_of(&[(
            "crates/storage/src/c.rs",
            "struct I { tables: HashMap<String, u32>, names: Vec<String> }\n\
             fn f(m: std::collections::HashMap<u32, u32>) { let mut local = HashSet::new(); }\n",
        )]);
        let names: Vec<&String> = idx.hash_names[0].iter().collect();
        assert_eq!(names, vec!["local", "m", "tables"]);
    }

    #[test]
    fn test_regions_mark_fns() {
        let idx = index_of(&[(
            "crates/core/src/a.rs",
            "fn lib() {}\n#[cfg(test)]\nmod t {\n  fn inner() {}\n}\n",
        )]);
        assert_eq!(idx.fns.len(), 2);
        assert!(!idx.fns[0].in_test);
        assert!(idx.fns[1].in_test);
    }
}

//! The lint rules: each takes a scanned file and appends findings.
//!
//! Rule families (see `crates/xtask/lint.toml` for the allowlist and
//! README.md for the rationale):
//!
//! * `rng-discipline` — every random stream must derive from an explicit
//!   seed through `aqp_stats::rng`; entropy-based constructors and raw
//!   reseeding are forbidden.
//! * `nan-safety` — float comparisons must be total: no
//!   `partial_cmp(..).unwrap()/expect(..)` and no `sort_by`-family call
//!   built on `partial_cmp`; use `f64::total_cmp`.
//! * `panic-freedom` — library code of the AQP pipeline crates must not
//!   contain `panic!`, `unreachable!`, `todo!`, `unimplemented!`, or
//!   `.unwrap()`; return typed errors (or `.expect` with an invariant
//!   message where infallibility is provable).
//! * `crate-hygiene` — crate roots carry `#![deny(unsafe_code)]` and
//!   `#![warn(missing_docs)]`; manifests route every dependency through
//!   `[workspace.dependencies]`.
//! * `timing-discipline` — raw `std::time::Instant` / `SystemTime` are
//!   forbidden outside `crates/obs`; every measurement must read an
//!   `aqp_obs::Clock` so tests can steer time deterministically.
//! * `metric-naming` — string literals registered via
//!   `counter`/`gauge`/`histogram`/`histogram_with` must follow the
//!   `aqp.<crate>.<snake_case>` convention so dashboards can group
//!   series by crate; computed names and `#[cfg(test)]` modules are
//!   exempt.
//! * `fault-hygiene` — real sleeps (`thread::sleep`) and hand-rolled
//!   retry loops are forbidden outside `crates/faults`: delays must be
//!   charged through `aqp_obs::Clock` and retry policy must route
//!   through `aqp_faults::RecoveryPolicy`, or fault-injected runs stop
//!   being deterministic and mock-clock-fast.

use crate::scanner::{cfg_test_regions, line_of, mask, tokens, SpannedTok};
use std::path::Path;

/// Crates whose library code must be panic-free (the request path).
const PANIC_FREE_CRATES: &[&str] = &["exec", "core", "stats", "storage", "obs", "prof", "faults"];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule family name.
    pub rule: &'static str,
    /// The offending token or construct.
    pub token: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] `{}` — {}",
            self.file, self.line, self.rule, self.token, self.hint
        )
    }
}

/// Where a `.rs` file sits, which determines which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code of a panic-free crate (all rules).
    PanicFreeLib,
    /// Any other workspace source (all rules except panic-freedom).
    Other,
}

/// Classify a repo-relative `.rs` path.
pub fn classify(rel: &str) -> FileKind {
    let p = Path::new(rel);
    let comps: Vec<&str> = p.iter().filter_map(|c| c.to_str()).collect();
    let in_test_tree = comps
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples"));
    let lib_of_panic_free = comps.len() >= 3
        && comps[0] == "crates"
        && PANIC_FREE_CRATES.contains(&comps[1])
        && comps[2] == "src";
    if lib_of_panic_free && !in_test_tree {
        FileKind::PanicFreeLib
    } else {
        FileKind::Other
    }
}

/// Run all source rules on one file; returns its findings.
pub fn check_source(rel: &str, src: &str) -> Vec<Finding> {
    let masked = mask(src);
    let toks = tokens(&masked);
    let test_regions = cfg_test_regions(&masked);
    let test_lines: Vec<(u32, u32)> = test_regions
        .iter()
        .map(|&(s, e)| (line_of(&masked, s), line_of(&masked, e)))
        .collect();
    let in_test_mod = |line: u32| test_lines.iter().any(|&(s, e)| line >= s && line <= e);

    let mut out = Vec::new();
    rng_discipline(rel, &toks, &mut out);
    nan_safety(rel, &toks, &mut out);
    timing_discipline(rel, &toks, &mut out);
    metric_naming(rel, src, &masked, &in_test_mod, &mut out);
    fault_hygiene(rel, &toks, &in_test_mod, &mut out);
    if classify(rel) == FileKind::PanicFreeLib {
        panic_freedom(rel, &toks, &in_test_mod, &mut out);
    }
    if is_crate_root(rel) {
        crate_root_attrs(rel, &masked, &mut out);
    }
    out
}

/// `rng-discipline`: forbid entropy constructors everywhere and raw
/// `seed_from_u64` outside the sanctioned construction site (allowlisted).
fn rng_discipline(rel: &str, toks: &[SpannedTok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        match id {
            "thread_rng" | "from_entropy" | "from_os_rng" => out.push(Finding {
                file: rel.into(),
                line: t.line,
                rule: "rng-discipline",
                token: id.into(),
                hint: "entropy-based RNG construction breaks reproducibility; derive a \
                       stream from an explicit seed via aqp_stats::rng::SeedStream",
            }),
            "seed_from_u64" => out.push(Finding {
                file: rel.into(),
                line: t.line,
                rule: "rng-discipline",
                token: id.into(),
                hint: "raw reseeding outside crates/stats/src/rng.rs loses the seed \
                       provenance; use aqp_stats::rng::{rng_from_seed, SeedStream}",
            }),
            // `rand::rng()` — the rand 0.9+ name for thread_rng.
            "rand"
                if toks[i + 1..].len() >= 4
                    && toks[i + 1].is_punct(':')
                    && toks[i + 2].is_punct(':')
                    && toks[i + 3].ident() == Some("rng")
                    && toks[i + 4].is_punct('(') =>
            {
                out.push(Finding {
                    file: rel.into(),
                    line: t.line,
                    rule: "rng-discipline",
                    token: "rand::rng()".into(),
                    hint: "the thread-local generator is seeded from OS entropy; \
                           derive a stream from an explicit seed via aqp_stats::rng",
                });
            }
            _ => {}
        }
    }
}

/// `nan-safety`: `partial_cmp` chained into `unwrap`/`expect`, and
/// `sort_by`-family comparators built on `partial_cmp`.
fn nan_safety(rel: &str, toks: &[SpannedTok], out: &mut Vec<Finding>) {
    const SORT_FAMILY: &[&str] = &[
        "sort_by",
        "sort_unstable_by",
        "sort_by_cached_key",
        "min_by",
        "max_by",
        "binary_search_by",
    ];
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if id == "partial_cmp" {
            if let Some(j) = matching_close(toks, i + 1) {
                if j + 2 < toks.len()
                    && toks[j + 1].is_punct('.')
                    && matches!(toks[j + 2].ident(), Some("unwrap") | Some("expect"))
                {
                    out.push(Finding {
                        file: rel.into(),
                        line: t.line,
                        rule: "nan-safety",
                        token: format!(
                            "partial_cmp(..).{}",
                            toks[j + 2].ident().unwrap_or_default()
                        ),
                        hint: "panics on NaN; use f64::total_cmp (or handle the None arm)",
                    });
                }
            }
        } else if SORT_FAMILY.contains(&id) {
            if let Some(j) = matching_close(toks, i + 1) {
                let arg_has_partial_cmp = toks[i + 1..j]
                    .iter()
                    .any(|t| t.ident() == Some("partial_cmp"));
                // The chained-unwrap case above already reports inside the
                // comparator; only flag sorts that dodge it some other way
                // (unwrap_or, matches on Option, ...).
                let already_reported = toks[i + 1..j].iter().any(|t| {
                    matches!(t.ident(), Some("unwrap") | Some("expect"))
                });
                if arg_has_partial_cmp && !already_reported {
                    out.push(Finding {
                        file: rel.into(),
                        line: t.line,
                        rule: "nan-safety",
                        token: format!("{id}(.. partial_cmp ..)"),
                        hint: "float ordering via partial_cmp is not total under NaN; \
                               sort with f64::total_cmp",
                    });
                }
            }
        }
    }
}

/// `timing-discipline`: raw monotonic/wall clocks outside `crates/obs`.
///
/// `aqp_obs::Clock` is the only sanctioned time source: it has a
/// deterministic mock, so any measurement routed through it is
/// steerable in tests. A bare `Instant::now()` is not.
fn timing_discipline(rel: &str, toks: &[SpannedTok], out: &mut Vec<Finding>) {
    let comps: Vec<&str> = Path::new(rel).iter().filter_map(|c| c.to_str()).collect();
    if comps.len() >= 2 && comps[0] == "crates" && comps[1] == "obs" {
        return; // the Clock implementation itself
    }
    for t in toks {
        let Some(id) = t.ident() else { continue };
        if matches!(id, "Instant" | "SystemTime") {
            out.push(Finding {
                file: rel.into(),
                line: t.line,
                rule: "timing-discipline",
                token: id.into(),
                hint: "raw std::time clocks cannot be mocked; measure through \
                       aqp_obs::Clock (e.g. an ObsHandle's clock) instead",
            });
        }
    }
}

/// `metric-naming`: literal names passed to the metric registration
/// methods (`.counter(` / `.gauge(` / `.histogram(` / `.histogram_with(`)
/// must match `aqp.<crate>.<snake_case>`.
///
/// The masked source blanks string literals byte-for-byte, so a call
/// site found in the masked text shares its byte offsets with the raw
/// source; the literal itself is read back from the raw bytes. Computed
/// names (constants, `format!`) are skipped — the `aqp_obs::name`
/// constants are the sanctioned indirection — and `#[cfg(test)]`
/// modules may register throwaway names.
fn metric_naming(
    rel: &str,
    src: &str,
    masked: &str,
    in_test_mod: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    const REG_FNS: &[&str] = &["counter", "gauge", "histogram", "histogram_with"];
    let mb = masked.as_bytes();
    let rb = src.as_bytes();
    let mut i = 0;
    while i < mb.len() {
        if !(mb[i].is_ascii_alphabetic() || mb[i] == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < mb.len() && (mb[i].is_ascii_alphanumeric() || mb[i] == b'_') {
            i += 1;
        }
        let word = &masked[start..i];
        if !REG_FNS.contains(&word) {
            continue;
        }
        // Only method-call positions (`.counter(...)`): skip fn
        // definitions and unrelated identifiers.
        let prev = mb[..start].iter().rev().find(|c| !c.is_ascii_whitespace());
        if prev != Some(&b'.') {
            continue;
        }
        let mut j = i;
        while j < mb.len() && mb[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= mb.len() || mb[j] != b'(' {
            continue;
        }
        j += 1;
        // Advance over raw whitespace only: the masked text blanks the
        // literal itself to spaces, so skipping masked whitespace here
        // would swallow the very argument we came to inspect.
        while j < rb.len() && rb[j].is_ascii_whitespace() {
            j += 1;
        }
        // First argument must be a plain string literal to be judged;
        // anything else (a `name::*` constant, a variable) is exempt.
        if j >= rb.len() || rb[j] != b'"' {
            continue;
        }
        let line = line_of(masked, start);
        if in_test_mod(line) {
            continue;
        }
        let lit_start = j + 1;
        let mut k = lit_start;
        while k < rb.len() && rb[k] != b'"' {
            if rb[k] == b'\\' {
                k += 1;
            }
            k += 1;
        }
        let name = &src[lit_start..k.min(rb.len())];
        if !valid_metric_name(name) {
            out.push(Finding {
                file: rel.into(),
                line,
                rule: "metric-naming",
                token: format!("{word}(\"{name}\")"),
                hint: "metric names must be `aqp.<crate>.<snake_case>` (≥3 dot-separated \
                       lowercase segments); prefer the aqp_obs::name constants",
            });
        }
    }
}

/// `aqp.<crate>.<snake_case>`: at least three dot-separated segments,
/// the first literally `aqp`, the rest lowercase snake_case starting
/// with a letter.
fn valid_metric_name(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 3
        && segs[0] == "aqp"
        && segs[1..].iter().all(|s| {
            s.as_bytes().first().is_some_and(|c| c.is_ascii_lowercase())
                && s.bytes().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_')
        })
}

/// `panic-freedom` for library code of the pipeline crates.
fn panic_freedom(
    rel: &str,
    toks: &[SpannedTok],
    in_test_mod: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if in_test_mod(t.line) {
            continue;
        }
        let is_macro = i + 1 < toks.len() && toks[i + 1].is_punct('!');
        match id {
            "panic" | "unreachable" | "todo" | "unimplemented" if is_macro => {
                out.push(Finding {
                    file: rel.into(),
                    line: t.line,
                    rule: "panic-freedom",
                    token: format!("{id}!"),
                    hint: "library code on the query path must not abort; return a \
                           typed error (e.g. ExecError) instead",
                });
            }
            "unwrap"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && i + 2 < toks.len()
                    && toks[i + 1].is_punct('(')
                    && toks[i + 2].is_punct(')') =>
            {
                out.push(Finding {
                    file: rel.into(),
                    line: t.line,
                    rule: "panic-freedom",
                    token: ".unwrap()".into(),
                    hint: "propagate the error (`?`) or use .expect(\"<invariant>\") \
                           to document why this cannot fail",
                });
            }
            _ => {}
        }
    }
}

/// `fault-hygiene`: real sleeps and hand-rolled retry loops outside
/// `crates/faults`.
///
/// A `thread::sleep` stalls a worker for wall-clock time the mock clock
/// cannot steer, and an ad-hoc `for attempt in ..`/`while retries < ..`
/// loop scatters recovery policy across the codebase. Both belong in
/// `crates/faults`, where delays are charged via `Clock::advance` and
/// the single retry state machine (`aqp_faults::resolve`) lives. Test
/// trees and `#[cfg(test)]` modules are exempt — tests may sweep
/// attempts and seeds freely.
fn fault_hygiene(
    rel: &str,
    toks: &[SpannedTok],
    in_test_mod: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let comps: Vec<&str> = Path::new(rel).iter().filter_map(|c| c.to_str()).collect();
    if comps.len() >= 2 && comps[0] == "crates" && comps[1] == "faults" {
        return; // the one sanctioned home for fault timing and retries
    }
    if comps.iter().any(|c| matches!(*c, "tests" | "benches" | "examples")) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if in_test_mod(t.line) {
            continue;
        }
        match id {
            // `thread::sleep(..)` / `clock.sleep(..)` call sites.
            "sleep"
                if i > 0
                    && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'))
                    && i + 1 < toks.len()
                    && toks[i + 1].is_punct('(') =>
            {
                out.push(Finding {
                    file: rel.into(),
                    line: t.line,
                    rule: "fault-hygiene",
                    token: "sleep(..)".into(),
                    hint: "real sleeps stall workers for unsteerable wall-clock time; \
                           charge delays through aqp_obs::Clock::advance (see crates/faults)",
                });
            }
            // Loop headers that mention retries/attempts.
            "for" | "while" | "loop" => {
                let retryish = toks[i + 1..]
                    .iter()
                    .take(8)
                    .filter_map(|t| t.ident())
                    .any(|w| {
                        let w = w.to_ascii_lowercase();
                        w.contains("retry") || w.contains("retries") || w.contains("attempt")
                    });
                if retryish {
                    out.push(Finding {
                        file: rel.into(),
                        line: t.line,
                        rule: "fault-hygiene",
                        token: format!("{id} .. retry/attempt .."),
                        hint: "hand-rolled retry loops scatter recovery policy; route \
                               retries through aqp_faults::{RecoveryPolicy, resolve}",
                    });
                }
            }
            _ => {}
        }
    }
}

/// Crate roots: `src/lib.rs` of the repo or of any `crates/*` member.
pub fn is_crate_root(rel: &str) -> bool {
    let comps: Vec<&str> = Path::new(rel).iter().filter_map(|c| c.to_str()).collect();
    comps.as_slice() == ["src", "lib.rs"]
        || (comps.len() == 4 && comps[0] == "crates" && comps[2] == "src" && comps[3] == "lib.rs")
}

/// `crate-hygiene` (source half): required crate-root attributes.
fn crate_root_attrs(rel: &str, masked: &str, out: &mut Vec<Finding>) {
    let squashed: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
    for (attr, token) in [
        ("#![deny(unsafe_code)]", "deny(unsafe_code)"),
        ("#![warn(missing_docs)]", "warn(missing_docs)"),
    ] {
        let want: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
        if !squashed.contains(&want) {
            out.push(Finding {
                file: rel.into(),
                line: 1,
                rule: "crate-hygiene",
                token: token.into(),
                hint: "every crate root must carry #![deny(unsafe_code)] and \
                       #![warn(missing_docs)]",
            });
        }
    }
}

/// `crate-hygiene` (manifest half): every `[dependencies]` /
/// `[dev-dependencies]` / `[build-dependencies]` entry of a member crate
/// must route through `[workspace.dependencies]` (`workspace = true`).
pub fn check_manifest(rel: &str, src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_dep_section = matches!(
                line,
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
            );
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        let routed = key.ends_with(".workspace") && value == "true"
            || value.contains("workspace = true")
            || value.contains("workspace=true");
        if !routed {
            out.push(Finding {
                file: rel.into(),
                line: idx as u32 + 1,
                rule: "crate-hygiene",
                token: key.split('.').next().unwrap_or(key).into(),
                hint: "declare the version/path once under [workspace.dependencies] \
                       and use `<name>.workspace = true` here",
            });
        }
    }
    out
}

/// Index of the `)` matching the `(` expected at `toks[open]`; `None` if
/// `toks[open]` is not `(` or the parens never balance.
fn matching_close(toks: &[SpannedTok], open: usize) -> Option<usize> {
    if open >= toks.len() || !toks[open].is_punct('(') {
        return None;
    }
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_on(rel: &str, src: &str) -> Vec<Finding> {
        check_source(rel, src)
    }

    #[test]
    fn rng_rule_hits_entropy_constructors() {
        let f = rules_on("crates/workload/src/x.rs", "let mut r = thread_rng();");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "rng-discipline");
        let f = rules_on("crates/workload/src/x.rs", "let r = rand::rng();");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = rules_on("src/x.rs", "let r = StdRng::seed_from_u64(42);");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn rng_rule_ignores_comments_and_strings() {
        let f = rules_on(
            "src/x.rs",
            "// thread_rng is forbidden\nlet s = \"from_entropy\"; /* seed_from_u64 */",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn nan_rule_hits_chained_unwrap_and_sorts() {
        let f = rules_on("src/x.rs", "v.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nan-safety");
        assert!(f[0].token.contains("unwrap"));
        let f = rules_on(
            "src/x.rs",
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].token.starts_with("sort_by"));
        let f = rules_on("src/x.rs", "let o = x.partial_cmp(&y).expect(\"no NaN\");");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn nan_rule_allows_propagated_option() {
        let f = rules_on("src/x.rs", "let o = x.partial_cmp(&y)?; let p = a.partial_cmp(&b).map(flip);");
        assert!(f.is_empty(), "{f:?}");
        let f = rules_on("src/x.rs", "v.sort_by(f64::total_cmp);");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_rule_applies_only_to_pipeline_lib_code() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        assert_eq!(rules_on("crates/exec/src/engine.rs", src).len(), 1);
        assert_eq!(rules_on("crates/stats/src/ci.rs", "fn g() { panic!(\"x\") }").len(), 1);
        // Same code in a bench, a test tree, or a non-pipeline crate: clean.
        assert!(rules_on("crates/exec/benches/b.rs", src).is_empty());
        assert!(rules_on("tests/properties.rs", src).is_empty());
        assert!(rules_on("crates/bench/src/util.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_exempts_cfg_test_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); panic!(\"boom\") }\n}";
        let f = rules_on("crates/core/src/session.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_rule_allows_expect_with_message() {
        let f = rules_on(
            "crates/exec/src/parallel.rs",
            "let v = handle.join().expect(\"worker panicked\");",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn timing_rule_forbids_raw_clocks_outside_obs() {
        let f = rules_on("examples/quickstart.rs", "let t = std::time::Instant::now();");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "timing-discipline");
        let f = rules_on("crates/exec/src/engine.rs", "let t = SystemTime::now();");
        assert_eq!(f.len(), 1, "{f:?}");
        // The Clock implementation is the one sanctioned call site.
        let f = rules_on("crates/obs/src/clock.rs", "let a = Instant::now();");
        assert!(f.is_empty(), "{f:?}");
        // Comments and strings are masked out.
        let f = rules_on("src/x.rs", "// Instant is forbidden\nlet s = \"SystemTime\";");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn metric_rule_enforces_the_naming_convention() {
        // Conforming literals pass.
        let f = rules_on(
            "crates/exec/src/engine.rs",
            "let c = reg.counter(\"aqp.exec.rows_scanned\");\n\
             let h = m.histogram_with(\"aqp.exec.scan_ms\", &[1.0]);",
        );
        assert!(f.is_empty(), "{f:?}");
        // Wrong prefix, too few segments, or non-snake-case all fail.
        for bad in ["exec.rows", "aqp.rows", "aqp.Exec.rows", "aqp.exec.rowsScanned", "aqp.exec."] {
            let src = format!("let c = reg.counter(\"{bad}\");");
            let f = rules_on("crates/exec/src/engine.rs", &src);
            assert_eq!(f.len(), 1, "{bad}: {f:?}");
            assert_eq!(f[0].rule, "metric-naming");
            assert!(f[0].token.contains(bad));
        }
        // Gauges and plain histograms are covered too.
        let f = rules_on("src/x.rs", "reg.gauge(\"bad\"); reg.histogram(\"also_bad\");");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn metric_rule_skips_computed_names_and_test_modules() {
        // A constant or computed name is the sanctioned indirection.
        let f = rules_on(
            "crates/core/src/session.rs",
            "let c = m.counter(name::FALLBACKS); let h = m.histogram(&format!(\"aqp.core.{stage}_ms\"));",
        );
        assert!(f.is_empty(), "{f:?}");
        // cfg(test) modules may register throwaway names.
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { reg.counter(\"hits\"); }\n}";
        let f = rules_on("crates/obs/src/metrics.rs", src);
        assert!(f.is_empty(), "{f:?}");
        // `fn counter(...)` definitions are not call sites.
        let f = rules_on("src/x.rs", "fn counter(\"nonsense\") {}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fault_hygiene_forbids_sleeps_and_retry_loops() {
        let f = rules_on("crates/exec/src/parallel.rs", "std::thread::sleep(d);");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "fault-hygiene");
        assert!(f[0].token.contains("sleep"));
        let f = rules_on("src/x.rs", "for attempt in 0..3 { run(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "fault-hygiene");
        let f = rules_on("crates/core/src/helper.rs", "while n_retries < max { go(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = rules_on("crates/sql/src/parse.rs", "loop { if attempts > 3 { break; } }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn fault_hygiene_exempts_faults_crate_and_test_code() {
        // The faults crate is the sanctioned home for retry machinery.
        let f = rules_on(
            "crates/faults/src/recovery.rs",
            "for attempt in 0..=policy.max_retries { go(); }",
        );
        assert!(f.is_empty(), "{f:?}");
        // cfg(test) modules and test trees may sweep attempts freely.
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { for attempt in 0..3 {} }\n}";
        assert!(rules_on("crates/exec/src/engine.rs", src).is_empty());
        assert!(rules_on("tests/fault_matrix.rs", "for attempt in 0..3 {}").is_empty());
        // Ordinary loops and mentions in comments/strings don't trip it.
        assert!(rules_on("src/x.rs", "for row in rows { push(row); }").is_empty());
        assert!(rules_on("src/x.rs", "// retry loops are bad\nlet s = \"sleep(\";").is_empty());
    }

    #[test]
    fn hygiene_rule_requires_crate_root_attrs() {
        let f = rules_on("crates/exec/src/lib.rs", "//! Docs.\n#![deny(unsafe_code)]\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].token, "warn(missing_docs)");
        let f = rules_on(
            "src/lib.rs",
            "//! Docs.\n#![deny(unsafe_code)]\n#![warn(missing_docs)]\n",
        );
        assert!(f.is_empty(), "{f:?}");
        // Non-root files carry no attribute obligation.
        let f = rules_on("crates/exec/src/engine.rs", "fn ok() {}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn manifest_rule_requires_workspace_deps() {
        let bad = "[package]\nname = \"x\"\n[dependencies]\nrand = \"0.8\"\nserde = { version = \"1\", features = [\"derive\"] }\n";
        let f = check_manifest("crates/x/Cargo.toml", bad);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "crate-hygiene"));
        let good = "[dependencies]\nrand.workspace = true\nserde = { workspace = true, features = [\"derive\"] }\n";
        assert!(check_manifest("crates/x/Cargo.toml", good).is_empty());
    }
}

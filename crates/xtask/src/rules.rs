//! The token-level lint rules: each takes a lexed file and appends
//! findings. The semantic (index-backed) rules live in `semrules.rs`;
//! [`RULES`] catalogs both families for the generated `docs/LINTS.md`.
//!
//! Rule families (see `crates/xtask/lint.toml` for the allowlist and
//! README.md for the rationale):
//!
//! * `rng-discipline` — every random stream must derive from an explicit
//!   seed through `aqp_stats::rng`; entropy-based constructors and raw
//!   reseeding are forbidden.
//! * `nan-safety` — float comparisons must be total: no
//!   `partial_cmp(..).unwrap()/expect(..)` and no `sort_by`-family call
//!   built on `partial_cmp`; use `f64::total_cmp`.
//! * `panic-freedom` — library code of the AQP pipeline crates must not
//!   contain `panic!`, `unreachable!`, `todo!`, `unimplemented!`, or
//!   `.unwrap()`; return typed errors (or `.expect` with an invariant
//!   message where infallibility is provable).
//! * `crate-hygiene` — crate roots carry `#![deny(unsafe_code)]` and
//!   `#![warn(missing_docs)]`; manifests route every dependency through
//!   `[workspace.dependencies]`.
//! * `metric-naming` — string literals registered via
//!   `counter`/`gauge`/`histogram`/`histogram_with` must follow the
//!   `aqp.<crate>.<snake_case>` convention so dashboards can group
//!   series by crate; computed names and `#[cfg(test)]` modules are
//!   exempt.
//! * `fault-hygiene` — real sleeps (`thread::sleep`) and hand-rolled
//!   retry loops are forbidden outside `crates/faults`: delays must be
//!   charged through `aqp_obs::Clock` and retry policy must route
//!   through `aqp_faults::RecoveryPolicy`, or fault-injected runs stop
//!   being deterministic and mock-clock-fast.

use crate::index::FileTokens;
use crate::lexer::matching_close;
use std::path::Path;

/// Crates whose library code must be panic-free (the request path).
pub const PANIC_FREE_CRATES: &[&str] =
    &["exec", "core", "stats", "storage", "obs", "prof", "faults", "slo", "introspect"];

/// Sanctioned metric families: the `<family>` of `aqp.<family>.<name>`.
/// One entry per workspace crate that registers metrics, so a typo'd
/// family (`aqp.sol.*`) cannot silently fork a new series.
pub const METRIC_FAMILIES: &[&str] = &[
    "audit",
    "cluster",
    "core",
    "diagnostics",
    "exec",
    "faults",
    // Self-hosted telemetry analytics (crates/introspect): fold-in,
    // retention, and catalog-sync accounting for the `_telemetry.*`
    // tables.
    "introspect",
    // Memory-accounting gauges fed by the opt-in counting allocator
    // (crates/obs/src/alloc.rs); a family of its own so dashboards can
    // slice heap series apart from the obs substrate's bookkeeping.
    "mem",
    "obs",
    "prof",
    "slo",
    "sql",
    "stats",
    "storage",
    "workload",
    // The sanctioned family for throwaway series registered by tests
    // and doc examples (integration tests are not `#[cfg(test)]`).
    "test",
];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule family name.
    pub rule: &'static str,
    /// The offending token or construct.
    pub token: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] `{}` — {}",
            self.file, self.line, self.rule, self.token, self.hint
        )
    }
}

/// One entry of the rule catalog rendered into `docs/LINTS.md`.
pub struct RuleInfo {
    /// Rule family name as it appears in findings and `lint.toml`.
    pub name: &'static str,
    /// Analysis tier: `token`, `semantic`, `manifest`, or `docs`.
    pub tier: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// What it enforces and why.
    pub summary: &'static str,
}

/// Every rule the analyzer enforces, in catalog order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "rng-discipline",
        tier: "token",
        scope: "all sources",
        summary: "Random streams must derive from an explicit seed via \
                  `aqp_stats::rng`; entropy constructors (`thread_rng`, \
                  `from_entropy`, `rand::rng()`) and raw `seed_from_u64` \
                  reseeding are forbidden so every answer is reproducible \
                  from its recorded seed.",
    },
    RuleInfo {
        name: "nan-safety",
        tier: "token",
        scope: "all sources",
        summary: "Float comparisons must be total: no \
                  `partial_cmp(..).unwrap()/expect(..)` and no \
                  `sort_by`-family comparator built on `partial_cmp`; use \
                  `f64::total_cmp` so NaN cannot panic or destabilize an \
                  ordering.",
    },
    RuleInfo {
        name: "panic-freedom",
        tier: "token",
        scope: "library code of exec, core, stats, storage, obs, prof, faults, slo",
        summary: "Pipeline library code must not contain `panic!`, \
                  `unreachable!`, `todo!`, `unimplemented!`, or `.unwrap()`; \
                  return typed errors, or `.expect(\"<invariant>\")` where \
                  infallibility is provable.",
    },
    RuleInfo {
        name: "crate-hygiene",
        tier: "token + manifest",
        scope: "crate roots and member manifests",
        summary: "Crate roots carry `#![deny(unsafe_code)]` and \
                  `#![warn(missing_docs)]`; every member dependency routes \
                  through `[workspace.dependencies]` so versions are pinned \
                  in one place.",
    },
    RuleInfo {
        name: "metric-naming",
        tier: "token",
        scope: "all sources outside #[cfg(test)]",
        summary: "Literal metric names registered via `counter`/`gauge`/\
                  `histogram`/`histogram_with` must match \
                  `aqp.<family>.<snake_case>` with the family drawn from \
                  the sanctioned list (`aqp.slo.*`, `aqp.obs.*`, \
                  `aqp.mem.*`, …); computed names (the `aqp_obs::name` \
                  constants) are the sanctioned indirection.",
    },
    RuleInfo {
        name: "fault-hygiene",
        tier: "token",
        scope: "all sources outside crates/faults and test code",
        summary: "Real sleeps and hand-rolled retry loops are forbidden: \
                  delays are charged through `aqp_obs::Clock` and retry \
                  policy routes through `aqp_faults::RecoveryPolicy`, so \
                  fault-injected runs stay deterministic and mock-clock \
                  fast.",
    },
    RuleInfo {
        name: "lock-order",
        tier: "semantic",
        scope: "non-test fns of all workspace crates",
        summary: "Builds the lock acquisition graph over every \
                  `Mutex`/`RwLock` field and fails on a guard held across a \
                  call that can acquire another lock, same-lock re-entry, \
                  and acquisition-order cycles — the deadlock guard for the \
                  multi-tenant service.",
    },
    RuleInfo {
        name: "determinism-taint",
        tier: "semantic",
        scope: "clocks: everywhere outside crates/obs; thread ids and hash \
                iteration: library code outside #[cfg(test)]",
        summary: "Flags dataflow from non-seeded sources into exported \
                  values: raw `Instant`/`SystemTime` (subsumes the old \
                  `timing-discipline` rule), OS thread ids, and iteration \
                  over `HashMap`/`HashSet` unless the result is \
                  order-insensitive, collected into a BTree container, or \
                  re-sorted.",
    },
    RuleInfo {
        name: "widen-only-ci",
        tier: "semantic",
        scope: "library code of exec, stats, faults outside #[cfg(test)]",
        summary: "Assignments to half-width-like bindings (`half_width`, \
                  `ci_*`, `*margin*`, `hw`) and the half-width argument of \
                  `Ci::new` must be provably non-narrowing: fresh \
                  computations, `+`, `max`, or multiplication by a `widen` \
                  factor. Narrowing needs an allowlist entry with a \
                  justification.",
    },
    RuleInfo {
        name: "panic-reachability",
        tier: "semantic",
        scope: "library code of the panic-free crates outside #[cfg(test)]",
        summary: "Extends panic-freedom across the call graph: a pipeline \
                  library fn calling (transitively, by name resolution) a \
                  function that can panic is flagged even when the panic \
                  site lives in another crate.",
    },
    RuleInfo {
        name: "metrics-docs",
        tier: "docs",
        scope: "docs/METRICS.md",
        summary: "The generated metrics inventory must match the constants \
                  in `aqp_obs::name`; regenerate with `cargo run -p xtask \
                  -- metrics-inventory`.",
    },
    RuleInfo {
        name: "lints-docs",
        tier: "docs",
        scope: "docs/LINTS.md",
        summary: "The generated rule catalog must match this table; \
                  regenerate with `cargo run -p xtask -- lints-inventory`.",
    },
];

/// Run all token-level source rules on one lexed file.
pub fn check_file(f: &FileTokens) -> Vec<Finding> {
    let mut out = Vec::new();
    rng_discipline(f, &mut out);
    nan_safety(f, &mut out);
    metric_naming(f, &mut out);
    fault_hygiene(f, &mut out);
    if f.is_lib && PANIC_FREE_CRATES.contains(&f.krate.as_str()) {
        panic_freedom(f, &mut out);
    }
    if is_crate_root(&f.rel) {
        crate_root_attrs(f, &mut out);
    }
    out
}

/// Convenience for tests: lex + check in one step.
#[cfg(test)]
pub fn check_source(rel: &str, src: &str) -> Vec<Finding> {
    check_file(&FileTokens::new(rel, src))
}

/// `rng-discipline`: forbid entropy constructors everywhere and raw
/// `seed_from_u64` outside the sanctioned construction site (allowlisted).
fn rng_discipline(f: &FileTokens, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        match id {
            "thread_rng" | "from_entropy" | "from_os_rng" => out.push(Finding {
                file: f.rel.clone(),
                line: t.line,
                rule: "rng-discipline",
                token: id.into(),
                hint: "entropy-based RNG construction breaks reproducibility; derive a \
                       stream from an explicit seed via aqp_stats::rng::SeedStream",
            }),
            "seed_from_u64" => out.push(Finding {
                file: f.rel.clone(),
                line: t.line,
                rule: "rng-discipline",
                token: id.into(),
                hint: "raw reseeding outside crates/stats/src/rng.rs loses the seed \
                       provenance; use aqp_stats::rng::{rng_from_seed, SeedStream}",
            }),
            // `rand::rng()` — the rand 0.9+ name for thread_rng.
            "rand"
                if toks[i + 1..].len() >= 4
                    && toks[i + 1].is_punct(':')
                    && toks[i + 2].is_punct(':')
                    && toks[i + 3].ident() == Some("rng")
                    && toks[i + 4].is_punct('(') =>
            {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: t.line,
                    rule: "rng-discipline",
                    token: "rand::rng()".into(),
                    hint: "the thread-local generator is seeded from OS entropy; \
                           derive a stream from an explicit seed via aqp_stats::rng",
                });
            }
            _ => {}
        }
    }
}

/// `nan-safety`: `partial_cmp` chained into `unwrap`/`expect`, and
/// `sort_by`-family comparators built on `partial_cmp`.
fn nan_safety(f: &FileTokens, out: &mut Vec<Finding>) {
    const SORT_FAMILY: &[&str] = &[
        "sort_by",
        "sort_unstable_by",
        "sort_by_cached_key",
        "min_by",
        "max_by",
        "binary_search_by",
    ];
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if id == "partial_cmp" {
            if let Some(j) = matching_close(toks, i + 1) {
                if j + 2 < toks.len()
                    && toks[j + 1].is_punct('.')
                    && matches!(toks[j + 2].ident(), Some("unwrap") | Some("expect"))
                {
                    out.push(Finding {
                        file: f.rel.clone(),
                        line: t.line,
                        rule: "nan-safety",
                        token: format!(
                            "partial_cmp(..).{}",
                            toks[j + 2].ident().unwrap_or_default()
                        ),
                        hint: "panics on NaN; use f64::total_cmp (or handle the None arm)",
                    });
                }
            }
        } else if SORT_FAMILY.contains(&id) {
            if let Some(j) = matching_close(toks, i + 1) {
                let arg_has_partial_cmp = toks[i + 1..j]
                    .iter()
                    .any(|t| t.ident() == Some("partial_cmp"));
                // The chained-unwrap case above already reports inside the
                // comparator; only flag sorts that dodge it some other way
                // (unwrap_or, matches on Option, ...).
                let already_reported = toks[i + 1..j].iter().any(|t| {
                    matches!(t.ident(), Some("unwrap") | Some("expect"))
                });
                if arg_has_partial_cmp && !already_reported {
                    out.push(Finding {
                        file: f.rel.clone(),
                        line: t.line,
                        rule: "nan-safety",
                        token: format!("{id}(.. partial_cmp ..)"),
                        hint: "float ordering via partial_cmp is not total under NaN; \
                               sort with f64::total_cmp",
                    });
                }
            }
        }
    }
}

/// `metric-naming`: literal names passed to the metric registration
/// methods (`.counter(` / `.gauge(` / `.histogram(` / `.histogram_with(`)
/// must match `aqp.<crate>.<snake_case>`.
///
/// The lexer hands literal *values* straight to the rule, so a call
/// whose first argument is a [`crate::lexer::Tok::Str`] is judged;
/// computed names (constants, `format!`) are skipped — the
/// `aqp_obs::name` constants are the sanctioned indirection — and
/// `#[cfg(test)]` modules may register throwaway names.
fn metric_naming(f: &FileTokens, out: &mut Vec<Finding>) {
    const REG_FNS: &[&str] = &["counter", "gauge", "histogram", "histogram_with"];
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if !REG_FNS.contains(&id) {
            continue;
        }
        // Only method-call positions (`.counter("…")`) with a literal
        // first argument.
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let Some(name) = toks.get(i + 2).and_then(|n| n.str_lit()) else { continue };
        if f.in_test(t.line) {
            continue;
        }
        if !valid_metric_name(name) {
            out.push(Finding {
                file: f.rel.clone(),
                line: t.line,
                rule: "metric-naming",
                token: format!("{id}(\"{name}\")"),
                hint: "metric names must be `aqp.<crate>.<snake_case>` (≥3 dot-separated \
                       lowercase segments); prefer the aqp_obs::name constants",
            });
        }
    }
}

/// `aqp.<family>.<snake_case>`: at least three dot-separated segments,
/// the first literally `aqp`, the second a sanctioned
/// [`METRIC_FAMILIES`] entry (`aqp.slo.*`, `aqp.obs.*`, …), the rest
/// lowercase snake_case starting with a letter.
fn valid_metric_name(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 3
        && segs[0] == "aqp"
        && METRIC_FAMILIES.contains(&segs[1])
        && segs[1..].iter().all(|s| {
            s.as_bytes().first().is_some_and(|c| c.is_ascii_lowercase())
                && s.bytes().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_')
        })
}

/// `panic-freedom` for library code of the pipeline crates.
fn panic_freedom(f: &FileTokens, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if f.in_test(t.line) {
            continue;
        }
        let is_macro = i + 1 < toks.len() && toks[i + 1].is_punct('!');
        match id {
            "panic" | "unreachable" | "todo" | "unimplemented" if is_macro => {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: t.line,
                    rule: "panic-freedom",
                    token: format!("{id}!"),
                    hint: "library code on the query path must not abort; return a \
                           typed error (e.g. ExecError) instead",
                });
            }
            "unwrap"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && i + 2 < toks.len()
                    && toks[i + 1].is_punct('(')
                    && toks[i + 2].is_punct(')') =>
            {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: t.line,
                    rule: "panic-freedom",
                    token: ".unwrap()".into(),
                    hint: "propagate the error (`?`) or use .expect(\"<invariant>\") \
                           to document why this cannot fail",
                });
            }
            _ => {}
        }
    }
}

/// `fault-hygiene`: real sleeps and hand-rolled retry loops outside
/// `crates/faults`.
///
/// A `thread::sleep` stalls a worker for wall-clock time the mock clock
/// cannot steer, and an ad-hoc `for attempt in ..`/`while retries < ..`
/// loop scatters recovery policy across the codebase. Both belong in
/// `crates/faults`, where delays are charged via `Clock::advance` and
/// the single retry state machine (`aqp_faults::resolve`) lives. Test
/// trees and `#[cfg(test)]` modules are exempt — tests may sweep
/// attempts and seeds freely.
fn fault_hygiene(f: &FileTokens, out: &mut Vec<Finding>) {
    if f.krate == "faults" {
        return; // the one sanctioned home for fault timing and retries
    }
    let comps: Vec<&str> = Path::new(&f.rel).iter().filter_map(|c| c.to_str()).collect();
    if comps.iter().any(|c| matches!(*c, "tests" | "benches" | "examples")) {
        return;
    }
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if f.in_test(t.line) {
            continue;
        }
        match id {
            // `thread::sleep(..)` / `clock.sleep(..)` call sites.
            "sleep"
                if i > 0
                    && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'))
                    && i + 1 < toks.len()
                    && toks[i + 1].is_punct('(') =>
            {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: t.line,
                    rule: "fault-hygiene",
                    token: "sleep(..)".into(),
                    hint: "real sleeps stall workers for unsteerable wall-clock time; \
                           charge delays through aqp_obs::Clock::advance (see crates/faults)",
                });
            }
            // Loop headers that mention retries/attempts.
            "for" | "while" | "loop" => {
                let retryish = toks[i + 1..]
                    .iter()
                    .take(8)
                    .filter_map(|t| t.ident())
                    .any(|w| {
                        let w = w.to_ascii_lowercase();
                        w.contains("retry") || w.contains("retries") || w.contains("attempt")
                    });
                if retryish {
                    out.push(Finding {
                        file: f.rel.clone(),
                        line: t.line,
                        rule: "fault-hygiene",
                        token: format!("{id} .. retry/attempt .."),
                        hint: "hand-rolled retry loops scatter recovery policy; route \
                               retries through aqp_faults::{RecoveryPolicy, resolve}",
                    });
                }
            }
            _ => {}
        }
    }
}

/// Crate roots: `src/lib.rs` of the repo or of any `crates/*` member.
pub fn is_crate_root(rel: &str) -> bool {
    let comps: Vec<&str> = Path::new(rel).iter().filter_map(|c| c.to_str()).collect();
    comps.as_slice() == ["src", "lib.rs"]
        || (comps.len() == 4 && comps[0] == "crates" && comps[2] == "src" && comps[3] == "lib.rs")
}

/// `crate-hygiene` (source half): required crate-root attributes, found
/// as token sequences (`# ! [ deny ( unsafe_code ) ]`) so strings and
/// comments can never satisfy or fake them.
fn crate_root_attrs(f: &FileTokens, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    let has_inner_attr = |outer: &str, inner: &str| {
        toks.iter().enumerate().any(|(i, t)| {
            i >= 3
                && t.is_ident(outer)
                && toks[i - 3].is_punct('#')
                && toks[i - 2].is_punct('!')
                && toks[i - 1].is_punct('[')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.is_ident(inner))
                && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        })
    };
    for (outer, inner, token) in [
        ("deny", "unsafe_code", "deny(unsafe_code)"),
        ("warn", "missing_docs", "warn(missing_docs)"),
    ] {
        if !has_inner_attr(outer, inner) {
            out.push(Finding {
                file: f.rel.clone(),
                line: 1,
                rule: "crate-hygiene",
                token: token.into(),
                hint: "every crate root must carry #![deny(unsafe_code)] and \
                       #![warn(missing_docs)]",
            });
        }
    }
}

/// `crate-hygiene` (manifest half): every `[dependencies]` /
/// `[dev-dependencies]` / `[build-dependencies]` entry of a member crate
/// must route through `[workspace.dependencies]` (`workspace = true`).
pub fn check_manifest(rel: &str, src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_dep_section = matches!(
                line,
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
            );
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        let routed = key.ends_with(".workspace") && value == "true"
            || value.contains("workspace = true")
            || value.contains("workspace=true");
        if !routed {
            out.push(Finding {
                file: rel.into(),
                line: idx as u32 + 1,
                rule: "crate-hygiene",
                token: key.split('.').next().unwrap_or(key).into(),
                hint: "declare the version/path once under [workspace.dependencies] \
                       and use `<name>.workspace = true` here",
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_on(rel: &str, src: &str) -> Vec<Finding> {
        check_source(rel, src)
    }

    #[test]
    fn rng_rule_hits_entropy_constructors() {
        let f = rules_on("crates/workload/src/x.rs", "let mut r = thread_rng();");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "rng-discipline");
        let f = rules_on("crates/workload/src/x.rs", "let r = rand::rng();");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = rules_on("src/x.rs", "let r = StdRng::seed_from_u64(42);");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn rng_rule_ignores_comments_and_strings() {
        let f = rules_on(
            "src/x.rs",
            "// thread_rng is forbidden\nlet s = \"from_entropy\"; /* seed_from_u64 */",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // Regression for the retired scanner's blind spots: raw strings and
    // multi-line strings must behave exactly like plain literals.
    #[test]
    fn rng_rule_ignores_raw_and_multiline_strings() {
        let f = rules_on("src/x.rs", "let s = r#\"thread_rng() from_entropy\"#;");
        assert!(f.is_empty(), "{f:?}");
        let f = rules_on("src/x.rs", "let s = \"line one\nthread_rng()\nline three\";");
        assert!(f.is_empty(), "{f:?}");
        // `//` inside a string must not swallow real code after it.
        let f = rules_on("src/x.rs", "let u = \"https://x\"; let r = thread_rng();");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn nan_rule_hits_chained_unwrap_and_sorts() {
        let f = rules_on("src/x.rs", "v.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nan-safety");
        assert!(f[0].token.contains("unwrap"));
        let f = rules_on(
            "src/x.rs",
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].token.starts_with("sort_by"));
        let f = rules_on("src/x.rs", "let o = x.partial_cmp(&y).expect(\"no NaN\");");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn nan_rule_allows_propagated_option() {
        let f = rules_on("src/x.rs", "let o = x.partial_cmp(&y)?; let p = a.partial_cmp(&b).map(flip);");
        assert!(f.is_empty(), "{f:?}");
        let f = rules_on("src/x.rs", "v.sort_by(f64::total_cmp);");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_rule_applies_only_to_pipeline_lib_code() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        assert_eq!(rules_on("crates/exec/src/engine.rs", src).len(), 1);
        assert_eq!(rules_on("crates/stats/src/ci.rs", "fn g() { panic!(\"x\") }").len(), 1);
        // Same code in a bench, a test tree, or a non-pipeline crate: clean.
        assert!(rules_on("crates/exec/benches/b.rs", src).is_empty());
        assert!(rules_on("tests/properties.rs", src).is_empty());
        assert!(rules_on("crates/bench/src/util.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_exempts_cfg_test_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); panic!(\"boom\") }\n}";
        let f = rules_on("crates/core/src/session.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_rule_allows_expect_with_message() {
        let f = rules_on(
            "crates/exec/src/parallel.rs",
            "let v = handle.join().expect(\"worker panicked\");",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn metric_rule_enforces_the_naming_convention() {
        // Conforming literals pass.
        let f = rules_on(
            "crates/exec/src/engine.rs",
            "let c = reg.counter(\"aqp.exec.rows_scanned\");\n\
             let h = m.histogram_with(\"aqp.exec.scan_ms\", &[1.0]);",
        );
        assert!(f.is_empty(), "{f:?}");
        // The slo family is sanctioned.
        let f = rules_on(
            "crates/slo/src/engine.rs",
            "let g = m.gauge(\"aqp.slo.worst_burn_fast\");",
        );
        assert!(f.is_empty(), "{f:?}");
        // Wrong prefix, too few segments, non-snake-case, or an unknown
        // family (`aqp.sol.*` would silently fork a series) all fail.
        for bad in [
            "exec.rows",
            "aqp.rows",
            "aqp.Exec.rows",
            "aqp.exec.rowsScanned",
            "aqp.exec.",
            "aqp.sol.burn_rate",
        ] {
            let src = format!("let c = reg.counter(\"{bad}\");");
            let f = rules_on("crates/exec/src/engine.rs", &src);
            assert_eq!(f.len(), 1, "{bad}: {f:?}");
            assert_eq!(f[0].rule, "metric-naming");
            assert!(f[0].token.contains(bad));
        }
        // Gauges and plain histograms are covered too.
        let f = rules_on("src/x.rs", "reg.gauge(\"bad\"); reg.histogram(\"also_bad\");");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn metric_rule_skips_computed_names_and_test_modules() {
        // A constant or computed name is the sanctioned indirection.
        let f = rules_on(
            "crates/core/src/session.rs",
            "let c = m.counter(name::FALLBACKS); let h = m.histogram(&format!(\"aqp.core.{stage}_ms\"));",
        );
        assert!(f.is_empty(), "{f:?}");
        // cfg(test) modules may register throwaway names.
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { reg.counter(\"hits\"); }\n}";
        let f = rules_on("crates/obs/src/metrics.rs", src);
        assert!(f.is_empty(), "{f:?}");
        // `fn counter(...)` definitions are not call sites.
        let f = rules_on("src/x.rs", "fn counter(name: &str) {}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fault_hygiene_forbids_sleeps_and_retry_loops() {
        let f = rules_on("crates/exec/src/parallel.rs", "std::thread::sleep(d);");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "fault-hygiene");
        assert!(f[0].token.contains("sleep"));
        let f = rules_on("src/x.rs", "for attempt in 0..3 { run(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "fault-hygiene");
        let f = rules_on("crates/core/src/helper.rs", "while n_retries < max { go(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = rules_on("crates/sql/src/parse.rs", "loop { if attempts > 3 { break; } }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn fault_hygiene_exempts_faults_crate_and_test_code() {
        // The faults crate is the sanctioned home for retry machinery.
        let f = rules_on(
            "crates/faults/src/recovery.rs",
            "for attempt in 0..=policy.max_retries { go(); }",
        );
        assert!(f.is_empty(), "{f:?}");
        // cfg(test) modules and test trees may sweep attempts freely.
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { for attempt in 0..3 {} }\n}";
        assert!(rules_on("crates/exec/src/engine.rs", src).is_empty());
        assert!(rules_on("tests/fault_matrix.rs", "for attempt in 0..3 {}").is_empty());
        // Ordinary loops and mentions in comments/strings don't trip it.
        assert!(rules_on("src/x.rs", "for row in rows { push(row); }").is_empty());
        assert!(rules_on("src/x.rs", "// retry loops are bad\nlet s = \"sleep(\";").is_empty());
    }

    #[test]
    fn hygiene_rule_requires_crate_root_attrs() {
        let f = rules_on("crates/exec/src/lib.rs", "//! Docs.\n#![deny(unsafe_code)]\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].token, "warn(missing_docs)");
        let f = rules_on(
            "src/lib.rs",
            "//! Docs.\n#![deny(unsafe_code)]\n#![warn(missing_docs)]\n",
        );
        assert!(f.is_empty(), "{f:?}");
        // A string mentioning the attribute must not satisfy the rule.
        let f = rules_on("crates/x/src/lib.rs", "const S: &str = \"#![deny(unsafe_code)] #![warn(missing_docs)]\";");
        assert_eq!(f.len(), 2, "{f:?}");
        // Non-root files carry no attribute obligation.
        let f = rules_on("crates/exec/src/engine.rs", "fn ok() {}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn manifest_rule_requires_workspace_deps() {
        let bad = "[package]\nname = \"x\"\n[dependencies]\nrand = \"0.8\"\nserde = { version = \"1\", features = [\"derive\"] }\n";
        let f = check_manifest("crates/x/Cargo.toml", bad);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "crate-hygiene"));
        let good = "[dependencies]\nrand.workspace = true\nserde = { workspace = true, features = [\"derive\"] }\n";
        assert!(check_manifest("crates/x/Cargo.toml", good).is_empty());
    }

    #[test]
    fn rule_catalog_is_complete_and_unique() {
        let names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        for required in [
            "rng-discipline",
            "nan-safety",
            "panic-freedom",
            "crate-hygiene",
            "metric-naming",
            "fault-hygiene",
            "lock-order",
            "determinism-taint",
            "widen-only-ci",
            "panic-reachability",
            "metrics-docs",
            "lints-docs",
        ] {
            assert!(names.contains(&required), "catalog misses {required}");
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate rule names");
    }
}
